#include "core/discovery.hpp"

#include <algorithm>
#include <cstdio>
#include <random>

#include "chunnels/shard.hpp"
#include "core/wire.hpp"
#include "io/timer_wheel.hpp"
#include "util/log.hpp"

namespace bertha {

// --- Registry ---

Result<void> Registry::register_impl(ChunnelImplPtr impl) {
  if (!impl) return err(Errc::invalid_argument, "null chunnel impl");
  const ImplInfo& info = impl->info();
  if (info.type.empty() || info.name.empty())
    return err(Errc::invalid_argument, "chunnel impl missing type/name");
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& by_name = impls_[info.type];
    if (by_name.count(info.name))
      return err(Errc::already_exists, "impl already registered: " + info.name);
    by_name[info.name] = impl;
  }
  BERTHA_TRY(impl->init());
  BLOG(debug, "registry") << "registered " << info.name;
  return ok();
}

Result<void> Registry::unregister_impl(const std::string& type,
                                       const std::string& name) {
  ChunnelImplPtr removed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = impls_.find(type);
    if (it == impls_.end()) return err(Errc::not_found, "no such type: " + type);
    auto nit = it->second.find(name);
    if (nit == it->second.end())
      return err(Errc::not_found, "no such impl: " + name);
    removed = nit->second;
    it->second.erase(nit);
  }
  removed->teardown();
  return ok();
}

Result<ChunnelImplPtr> Registry::lookup(const std::string& type,
                                        const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = impls_.find(type);
  if (it == impls_.end()) return err(Errc::not_found, "no impls for " + type);
  auto nit = it->second.find(name);
  if (nit != it->second.end()) return nit->second;
  // Parameterized network offloads are advertised with an instance
  // suffix ("ordered_mcast/switch:sim://g:7"); the local factory is
  // registered under the base name ("ordered_mcast/switch").
  auto colon = name.find(':');
  if (colon != std::string::npos) {
    nit = it->second.find(name.substr(0, colon));
    if (nit != it->second.end()) return nit->second;
  }
  return err(Errc::not_found, "no local factory for " + name);
}

std::vector<ChunnelImplPtr> Registry::lookup_type(const std::string& type) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ChunnelImplPtr> out;
  auto it = impls_.find(type);
  if (it != impls_.end())
    for (const auto& [name, impl] : it->second) out.push_back(impl);
  return out;
}

std::vector<ImplInfo> Registry::infos_for(const std::string& type) const {
  std::vector<ImplInfo> out;
  for (const auto& impl : lookup_type(type)) out.push_back(impl->info());
  return out;
}

std::vector<std::string> Registry::types() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(impls_.size());
  for (const auto& [type, by_name] : impls_) out.push_back(type);
  return out;
}

bool Registry::has(const std::string& type, const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = impls_.find(type);
  return it != impls_.end() && it->second.count(name) > 0;
}

// --- DiscoveryWatcher ---

DiscoveryWatcher::DiscoveryWatcher(std::string type_filter, size_t capacity)
    : filter_(std::move(type_filter)), q_(capacity) {}

Result<WatchEvent> DiscoveryWatcher::next(Deadline deadline) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!buffer_.empty()) {
        WatchEvent ev = std::move(buffer_.front());
        buffer_.pop_front();
        return ev;
      }
    }
    BERTHA_TRY_ASSIGN(batch, q_.pop(deadline));
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& ev : batch) buffer_.push_back(std::move(ev));
  }
}

std::optional<WatchEvent> DiscoveryWatcher::try_next() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!buffer_.empty()) {
        WatchEvent ev = std::move(buffer_.front());
        buffer_.pop_front();
        return ev;
      }
    }
    auto batch = q_.try_pop();
    if (!batch) return std::nullopt;
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& ev : *batch) buffer_.push_back(std::move(ev));
  }
}

Result<std::vector<WatchEvent>> DiscoveryWatcher::next_batch(
    Deadline deadline) {
  {
    // A batch partially consumed through next() comes out first so no
    // consumer mix ever reorders events.
    std::lock_guard<std::mutex> lk(mu_);
    if (!buffer_.empty()) {
      std::vector<WatchEvent> out(std::make_move_iterator(buffer_.begin()),
                                  std::make_move_iterator(buffer_.end()));
      buffer_.clear();
      return out;
    }
  }
  return q_.pop(deadline);
}

std::optional<std::vector<WatchEvent>> DiscoveryWatcher::try_next_batch() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!buffer_.empty()) {
      std::vector<WatchEvent> out(std::make_move_iterator(buffer_.begin()),
                                  std::make_move_iterator(buffer_.end()));
      buffer_.clear();
      return out;
    }
  }
  return q_.try_pop();
}

uint64_t DiscoveryWatcher::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

bool DiscoveryWatcher::matches(const std::string& filter,
                               const WatchEvent& ev) {
  if (filter.empty()) return true;
  // Typed watchers see impl events for their type; pool capacity is not
  // owned by any one chunnel type, so pool events go to unfiltered
  // watchers only.
  return ev.kind != WatchKind::pool_freed && ev.type == filter;
}

void DiscoveryWatcher::deliver(const WatchEvent& ev) {
  deliver_batch(std::vector<WatchEvent>{ev});
}

void DiscoveryWatcher::deliver_batch(std::vector<WatchEvent> events) {
  if (events.empty()) return;
  size_t n = events.size();
  if (!q_.push(std::move(events)).ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    dropped_ += n;
  }
}

// --- DiscoveryState ---

DiscoveryState::~DiscoveryState() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
  // Watchers may outlive the state (e.g. the runtime shut down first);
  // wake them with cancelled instead of leaving next() blocked forever.
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    watchers.swap(watchers_);
  }
  for (auto& w : watchers)
    if (auto sp = w.lock()) sp->cancel();
}

void DiscoveryState::emit(WatchEvent ev) {
  ev.seq = ++watch_seq_;
  size_t live = 0;
  for (auto& w : watchers_) {
    auto sp = w.lock();
    if (!sp || sp->cancelled()) continue;
    watchers_[live++] = w;
    if (sp->wants(ev)) sp->deliver(ev);
  }
  watchers_.resize(live);
}

Result<WatcherPtr> DiscoveryState::watch(const std::string& type_filter) {
  auto w = std::make_shared<DiscoveryWatcher>(type_filter);
  std::lock_guard<std::mutex> lk(mu_);
  watchers_.push_back(w);
  return w;
}

Result<void> DiscoveryState::register_impl(const ImplInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  return register_impl_locked(info);
}

Result<void> DiscoveryState::register_impl_locked(const ImplInfo& info) {
  if (info.type.empty() || info.name.empty())
    return err(Errc::invalid_argument, "impl info missing type/name");
  auto& v = entries_[info.type];
  ImplInfo* slot = nullptr;
  for (auto& e : v) {
    if (e.name == info.name) {
      e = info;  // re-registration updates metadata
      slot = &e;
      break;
    }
  }
  if (!slot) {
    v.push_back(info);
    slot = &v.back();
  }
  WatchEvent ev;
  ev.kind = WatchKind::impl_registered;
  ev.type = info.type;
  ev.name = info.name;
  ev.info = *slot;
  emit(std::move(ev));
  return ok();
}

Result<void> DiscoveryState::unregister_impl(const std::string& type,
                                             const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return unregister_impl_locked(type, name);
}

Result<void> DiscoveryState::unregister_impl_locked(const std::string& type,
                                                    const std::string& name) {
  auto it = entries_.find(type);
  if (it == entries_.end()) return err(Errc::not_found, "no such type: " + type);
  auto& v = it->second;
  auto nit = std::find_if(v.begin(), v.end(),
                          [&](const ImplInfo& e) { return e.name == name; });
  if (nit == v.end()) return err(Errc::not_found, "no such impl: " + name);
  v.erase(nit);
  WatchEvent ev;
  ev.kind = WatchKind::impl_unregistered;
  ev.type = type;
  ev.name = name;
  emit(std::move(ev));
  return ok();
}

Result<std::vector<ImplInfo>> DiscoveryState::query(const std::string& type) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(type);
  if (it == entries_.end()) return std::vector<ImplInfo>{};
  return it->second;
}

Result<uint64_t> DiscoveryState::acquire(const std::vector<ResourceReq>& reqs) {
  std::lock_guard<std::mutex> lk(mu_);
  return acquire_locked(reqs);
}

Result<uint64_t> DiscoveryState::acquire_locked(
    const std::vector<ResourceReq>& reqs) {
  // Validate the whole set, then commit — all or nothing.
  for (const auto& r : reqs) {
    auto it = pools_.find(r.pool);
    if (it == pools_.end())
      return err(Errc::not_found, "no such resource pool: " + r.pool);
    if (it->second.used + r.amount > it->second.capacity)
      return err(Errc::resource_exhausted, "pool exhausted: " + r.pool);
  }
  for (const auto& r : reqs) pools_[r.pool].used += r.amount;
  uint64_t id = next_alloc_++;
  allocs_[id] = reqs;
  return id;
}

Result<void> DiscoveryState::release(uint64_t alloc_id) {
  std::lock_guard<std::mutex> lk(mu_);
  return release_locked(alloc_id);
}

Result<void> DiscoveryState::release_locked(uint64_t alloc_id) {
  auto it = allocs_.find(alloc_id);
  if (it == allocs_.end())
    return err(Errc::not_found, "unknown allocation id");
  for (const auto& r : it->second) {
    auto pit = pools_.find(r.pool);
    if (pit == pools_.end()) continue;
    pit->second.used -= std::min(pit->second.used, r.amount);
    WatchEvent ev;
    ev.kind = WatchKind::pool_freed;
    ev.pool = r.pool;
    ev.available = pit->second.capacity - pit->second.used;
    emit(std::move(ev));
  }
  allocs_.erase(it);
  return ok();
}

Result<void> DiscoveryState::set_pool(const std::string& pool, uint64_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& p = pools_[pool];
  uint64_t before_avail = p.capacity > p.used ? p.capacity - p.used : 0;
  p.capacity = capacity;
  uint64_t after_avail = p.capacity > p.used ? p.capacity - p.used : 0;
  if (after_avail > before_avail) {
    // Growing a pool frees capacity just like releasing an allocation.
    WatchEvent ev;
    ev.kind = WatchKind::pool_freed;
    ev.pool = pool;
    ev.available = after_avail;
    emit(std::move(ev));
  }
  return ok();
}

uint64_t DiscoveryState::pool_in_use(const std::string& pool) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(pool);
  return it == pools_.end() ? 0 : it->second.used;
}

uint64_t DiscoveryState::pool_capacity(const std::string& pool) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(pool);
  return it == pools_.end() ? 0 : it->second.capacity;
}

size_t DiscoveryState::live_allocs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return allocs_.size();
}

size_t DiscoveryState::lease_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return leases_.size();
}

void DiscoveryState::set_fault_stats(FaultStatsPtr stats) {
  std::lock_guard<std::mutex> lk(mu_);
  fault_stats_ = std::move(stats);
}

FaultStatsPtr DiscoveryState::fault_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fault_stats_;
}

std::pair<std::vector<ImplInfo>, uint64_t> DiscoveryState::catalogue_snapshot()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ImplInfo> all;
  for (const auto& [type, v] : entries_)
    all.insert(all.end(), v.begin(), v.end());
  return {std::move(all), watch_seq_};
}

DiscoverySnapshot DiscoveryState::export_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  DiscoverySnapshot snap;
  for (const auto& [type, v] : entries_)
    snap.impls.insert(snap.impls.end(), v.begin(), v.end());
  // Deterministic order (the maps are unordered): a snapshot's bytes
  // should not depend on which peer served it.
  std::sort(snap.impls.begin(), snap.impls.end(),
            [](const ImplInfo& a, const ImplInfo& b) {
              return std::tie(a.type, a.name) < std::tie(b.type, b.name);
            });
  for (const auto& [name, p] : pools_)
    snap.pools.push_back({name, p.capacity, p.used});
  std::sort(snap.pools.begin(), snap.pools.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  for (const auto& [id, reqs] : allocs_) snap.allocs.push_back({id, reqs});
  std::sort(snap.allocs.begin(), snap.allocs.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  snap.next_alloc = next_alloc_;
  for (const auto& [owner, l] : leases_) {
    DiscoverySnapshot::LeaseEntry e;
    e.owner = owner;
    e.ttl_ns = l.ttl.count();
    e.expires_ns = l.expires.time_since_epoch().count();
    e.impls = l.impls;
    e.allocs = l.allocs;
    snap.leases.push_back(std::move(e));
  }
  std::sort(snap.leases.begin(), snap.leases.end(),
            [](const auto& a, const auto& b) { return a.owner < b.owner; });
  snap.watch_seq = watch_seq_;
  return snap;
}

void DiscoveryState::install_snapshot(const DiscoverySnapshot& snap) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  for (const auto& info : snap.impls) entries_[info.type].push_back(info);
  pools_.clear();
  for (const auto& p : snap.pools) pools_[p.name] = Pool{p.capacity, p.used};
  allocs_.clear();
  for (const auto& a : snap.allocs) allocs_[a.id] = a.reqs;
  next_alloc_ = snap.next_alloc;
  leases_.clear();
  for (const auto& e : snap.leases) {
    Lease l;
    l.ttl = Duration(e.ttl_ns);
    l.expires = TimePoint(
        std::chrono::duration_cast<TimePoint::duration>(Duration(e.expires_ns)));
    l.impls = e.impls;
    l.allocs = e.allocs;
    leases_[e.owner] = std::move(l);
  }
  // Adopt the peer's event history position verbatim; no events are
  // emitted, so watchers resume by seq against the installed log.
  watch_seq_ = snap.watch_seq;
}

DiscoverySnapshot DiscoveryState::extract_range(uint64_t modulo,
                                                uint64_t range) {
  auto in_range = [&](const std::string& key) {
    return shard_pick(BytesView(reinterpret_cast<const uint8_t*>(key.data()),
                                key.size()),
                      static_cast<size_t>(modulo)) == range;
  };
  std::lock_guard<std::mutex> lk(mu_);
  DiscoverySnapshot snap;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (in_range(it->first)) {
      snap.impls.insert(snap.impls.end(), it->second.begin(), it->second.end());
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(snap.impls.begin(), snap.impls.end(),
            [](const ImplInfo& a, const ImplInfo& b) {
              return std::tie(a.type, a.name) < std::tie(b.type, b.name);
            });
  for (auto it = pools_.begin(); it != pools_.end();) {
    if (in_range(it->first)) {
      snap.pools.push_back({it->first, it->second.capacity, it->second.used});
      it = pools_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(snap.pools.begin(), snap.pools.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  // An allocation migrates with its pools — all of them must be in the
  // range (a multi-pool alloc straddling buckets stays put; see the
  // DESIGN.md §12 caveat — its namespaced id still routes to this
  // partition, which keeps releases consistent).
  std::vector<uint64_t> moved_ids;
  for (auto it = allocs_.begin(); it != allocs_.end();) {
    bool all = !it->second.empty();
    for (const auto& r : it->second) all = all && in_range(r.pool);
    if (all) {
      snap.allocs.push_back({it->first, it->second});
      moved_ids.push_back(it->first);
      it = allocs_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(snap.allocs.begin(), snap.allocs.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  std::sort(moved_ids.begin(), moved_ids.end());
  // next_alloc stays: the destination mints under its own namespace.
  snap.next_alloc = next_alloc_;
  // Lease rows split per key: the owner keeps a row on both sides, each
  // covering the impls/allocs that live there (heartbeats fan out to
  // every partition, so both rows stay refreshed).
  for (auto it = leases_.begin(); it != leases_.end();) {
    Lease& l = it->second;
    DiscoverySnapshot::LeaseEntry e;
    e.owner = it->first;
    e.ttl_ns = l.ttl.count();
    e.expires_ns = l.expires.time_since_epoch().count();
    for (const auto& im : l.impls)
      if (in_range(im.first)) e.impls.push_back(im);
    for (uint64_t id : l.allocs)
      if (std::binary_search(moved_ids.begin(), moved_ids.end(), id))
        e.allocs.push_back(id);
    if (!e.impls.empty() || !e.allocs.empty()) {
      l.impls.erase(std::remove_if(l.impls.begin(), l.impls.end(),
                                   [&](const auto& im) {
                                     return in_range(im.first);
                                   }),
                    l.impls.end());
      l.allocs.erase(
          std::remove_if(l.allocs.begin(), l.allocs.end(),
                         [&](uint64_t id) {
                           return std::binary_search(moved_ids.begin(),
                                                     moved_ids.end(), id);
                         }),
          l.allocs.end());
      snap.leases.push_back(std::move(e));
    }
    if (l.impls.empty() && l.allocs.empty())
      it = leases_.erase(it);
    else
      ++it;
  }
  std::sort(snap.leases.begin(), snap.leases.end(),
            [](const auto& a, const auto& b) { return a.owner < b.owner; });
  snap.watch_seq = watch_seq_;
  return snap;
}

void DiscoveryState::ingest_snapshot(const DiscoverySnapshot& snap,
                                     bool emit_events) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ImplInfo> added;
  for (const auto& info : snap.impls) {
    auto& v = entries_[info.type];
    bool dup = false;
    for (const auto& e : v) dup = dup || e.name == info.name;
    if (!dup) {
      v.push_back(info);
      if (emit_events) added.push_back(info);
    }
  }
  for (const auto& p : snap.pools) pools_[p.name] = Pool{p.capacity, p.used};
  for (const auto& a : snap.allocs) allocs_[a.id] = a.reqs;
  // Keep our own next_alloc_: ids stay namespaced by the minting bucket.
  for (const auto& e : snap.leases) {
    Lease& l = leases_[e.owner];
    Duration ttl(e.ttl_ns);
    TimePoint expires(
        std::chrono::duration_cast<TimePoint::duration>(Duration(e.expires_ns)));
    if (l.ttl == Duration::zero() || expires > l.expires) {
      if (l.ttl == Duration::zero()) l.ttl = ttl;
      l.expires = std::max(l.expires, expires);
    }
    for (const auto& im : e.impls)
      if (std::find(l.impls.begin(), l.impls.end(), im) == l.impls.end())
        l.impls.push_back(im);
    for (uint64_t id : e.allocs)
      if (std::find(l.allocs.begin(), l.allocs.end(), id) == l.allocs.end())
        l.allocs.push_back(id);
  }
  // A fresh destination (nothing ever published) adopts the source's
  // seq so its event-log fork resumes the same domain; an established
  // one keeps the max so neither side's subscribers see a rewind.
  watch_seq_ = std::max(watch_seq_, snap.watch_seq);
  // Merge into an established domain: surface the migrated impls as
  // ordinary register events. Emitting AFTER the max-seq bump puts them
  // above every seq a re-homing source subscriber can carry, so both the
  // destination's own subscribers (per-sub prev_seq chains across the
  // jump) and re-homed ones (replay of events > their last_seq) get them
  // without a gap. Deterministic across replicas: snap.impls order.
  for (auto& info : added) {
    WatchEvent ev;
    ev.kind = WatchKind::impl_registered;
    ev.type = info.type;
    ev.name = info.name;
    ev.info = std::move(info);
    emit(std::move(ev));
  }
}

// --- Leases ---

Result<void> DiscoveryState::register_impl_leased(const ImplInfo& info,
                                                 const std::string& owner,
                                                 Duration ttl) {
  return register_impl_leased_at(info, owner, ttl, now());
}

Result<void> DiscoveryState::register_impl_leased_at(const ImplInfo& info,
                                                     const std::string& owner,
                                                     Duration ttl,
                                                     TimePoint at) {
  if (owner.empty() || ttl <= Duration::zero())
    return err(Errc::invalid_argument, "lease requires owner and positive ttl");
  std::lock_guard<std::mutex> lk(mu_);
  BERTHA_TRY(register_impl_locked(info));
  auto [it, fresh] = leases_.try_emplace(owner);
  Lease& l = it->second;
  l.ttl = ttl;
  l.expires = at + ttl;
  auto key = std::make_pair(info.type, info.name);
  if (std::find(l.impls.begin(), l.impls.end(), key) == l.impls.end())
    l.impls.push_back(std::move(key));
  if (fresh && fault_stats_) fault_stats_->lease_grants++;
  ensure_sweeper_locked();
  sweep_cv_.notify_all();
  return ok();
}

Result<uint64_t> DiscoveryState::acquire_leased(
    const std::vector<ResourceReq>& reqs, const std::string& owner,
    Duration ttl) {
  return acquire_leased_at(reqs, owner, ttl, now());
}

Result<uint64_t> DiscoveryState::acquire_leased_at(
    const std::vector<ResourceReq>& reqs, const std::string& owner,
    Duration ttl, TimePoint at) {
  if (owner.empty() || ttl <= Duration::zero())
    return err(Errc::invalid_argument, "lease requires owner and positive ttl");
  std::lock_guard<std::mutex> lk(mu_);
  BERTHA_TRY_ASSIGN(id, acquire_locked(reqs));
  auto [it, fresh] = leases_.try_emplace(owner);
  Lease& l = it->second;
  l.ttl = ttl;
  l.expires = at + ttl;
  l.allocs.push_back(id);
  if (fresh && fault_stats_) fault_stats_->lease_grants++;
  ensure_sweeper_locked();
  sweep_cv_.notify_all();
  return id;
}

Result<void> DiscoveryState::heartbeat(const std::string& owner) {
  return heartbeat_at(owner, now());
}

Result<void> DiscoveryState::heartbeat_at(const std::string& owner,
                                          TimePoint at) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(owner);
  if (it == leases_.end())
    return err(Errc::not_found, "no lease held by " + owner);
  it->second.expires = at + it->second.ttl;
  if (fault_stats_) fault_stats_->lease_renewals++;
  return ok();
}

size_t DiscoveryState::expire_leases() {
  std::lock_guard<std::mutex> lk(mu_);
  return expire_leases_locked(now());
}

size_t DiscoveryState::expire_leases_at(TimePoint when) {
  std::lock_guard<std::mutex> lk(mu_);
  return expire_leases_locked(when);
}

void DiscoveryState::set_alloc_namespace(uint64_t ns) {
  std::lock_guard<std::mutex> lk(mu_);
  next_alloc_ = (ns << kAllocNamespaceShift) | 1;
}

void DiscoveryState::set_manual_sweep(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  manual_sweep_ = on;
}

size_t DiscoveryState::expire_leases_locked(TimePoint when) {
  size_t reaped = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    Lease& l = it->second;
    if (l.expires > when) {
      ++it;
      continue;
    }
    BLOG(warn, "discovery") << "lease expired for " << it->first << ": "
                            << l.impls.size() << " impls, " << l.allocs.size()
                            << " allocs reclaimed";
    // Entries the owner already removed explicitly come back not_found —
    // that's fine, the lease just tracks what it *may* still own.
    for (const auto& [type, name] : l.impls)
      (void)unregister_impl_locked(type, name);
    for (uint64_t id : l.allocs) (void)release_locked(id);
    it = leases_.erase(it);
    reaped++;
    if (fault_stats_) fault_stats_->lease_expiries++;
  }
  return reaped;
}

void DiscoveryState::ensure_sweeper_locked() {
  // Manual-sweep (replicated) states expire only via expire_leases_at():
  // a local timer firing on one replica but not its peers would diverge
  // the replicated catalogue.
  if (manual_sweep_ || sweeper_running_ || stopping_) return;
  sweeper_running_ = true;
  sweeper_ = std::thread([this] { sweeper_loop(); });
}

void DiscoveryState::sweeper_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    if (leases_.empty()) {
      sweep_cv_.wait(lk);
      continue;
    }
    TimePoint earliest = TimePoint::max();
    for (const auto& [owner, l] : leases_)
      earliest = std::min(earliest, l.expires);
    if (now() < earliest) {
      sweep_cv_.wait_until(lk, earliest);
      continue;
    }
    expire_leases_locked(now());
  }
}

// --- Wire protocol ---
//
// Request/response codec and execute_request live in discovery_wire.cpp,
// shared with the replicated control plane (src/control/).
// --- Watch subscription messages ---

Bytes encode_subscribe(const SubscribeMsg& m) {
  Writer w;
  w.put_varint(m.sub_id);
  w.put_string(m.client_id);
  w.put_string(m.filter);
  w.put_varint(m.last_seq);
  w.put_bool(m.resume);
  return std::move(w).take();
}

Result<SubscribeMsg> decode_subscribe(BytesView b) {
  Reader r(b);
  SubscribeMsg m;
  BERTHA_TRY_ASSIGN(sub_id, r.get_varint());
  BERTHA_TRY_ASSIGN(client, r.get_string());
  BERTHA_TRY_ASSIGN(filter, r.get_string());
  BERTHA_TRY_ASSIGN(last, r.get_varint());
  BERTHA_TRY_ASSIGN(resume, r.get_bool());
  if (sub_id == 0) return err(Errc::protocol_error, "zero subscription id");
  if (client.empty())
    return err(Errc::protocol_error, "subscribe missing client id");
  m.sub_id = sub_id;
  m.client_id = std::move(client);
  m.filter = std::move(filter);
  m.last_seq = last;
  m.resume = resume;
  return m;
}

Bytes encode_unsubscribe(const UnsubscribeMsg& m) {
  Writer w;
  w.put_varint(m.sub_id);
  w.put_string(m.client_id);
  return std::move(w).take();
}

Result<UnsubscribeMsg> decode_unsubscribe(BytesView b) {
  Reader r(b);
  UnsubscribeMsg m;
  BERTHA_TRY_ASSIGN(sub_id, r.get_varint());
  BERTHA_TRY_ASSIGN(client, r.get_string());
  if (sub_id == 0) return err(Errc::protocol_error, "zero subscription id");
  if (client.empty())
    return err(Errc::protocol_error, "unsubscribe missing client id");
  m.sub_id = sub_id;
  m.client_id = std::move(client);
  return m;
}

Bytes encode_event_batch(const EventBatchMsg& m) {
  Writer w;
  w.put_varint(m.prev_seq);
  w.put_varint(m.last_seq);
  w.put_bool(m.snapshot);
  serde_put(w, m.events);
  return std::move(w).take();
}

Result<EventBatchMsg> decode_event_batch(BytesView b) {
  Reader r(b);
  EventBatchMsg m;
  BERTHA_TRY_ASSIGN(prev, r.get_varint());
  BERTHA_TRY_ASSIGN(last, r.get_varint());
  BERTHA_TRY_ASSIGN(snapshot, r.get_bool());
  BERTHA_TRY_ASSIGN(events, serde_get<std::vector<WatchEvent>>(r));
  // Seq sanity: the batch must cover a forward range and its events must
  // fit inside it — an incremental batch strictly ordered within
  // (prev_seq, last_seq], a snapshot pinned at last_seq. Anything else
  // is a corrupt or forged frame, not a recoverable gap.
  if (last < prev)
    return err(Errc::protocol_error, "event batch seq regression");
  if (snapshot && prev != 0)
    return err(Errc::protocol_error, "snapshot batch with prev seq");
  uint64_t floor = prev;
  for (const auto& ev : events) {
    if (snapshot) {
      if (ev.seq != last)
        return err(Errc::protocol_error, "snapshot event seq mismatch");
      continue;
    }
    if (ev.seq <= floor || ev.seq > last)
      return err(Errc::protocol_error, "event seq outside batch range");
    floor = ev.seq;
  }
  m.prev_seq = prev;
  m.last_seq = last;
  m.snapshot = snapshot;
  m.events = std::move(events);
  return m;
}

DiscoveryServer::DiscoveryServer(TransportPtr transport,
                                 std::shared_ptr<DiscoveryState> state,
                                 Options opts)
    : transport_(std::move(transport)),
      state_(std::move(state)),
      opts_(opts),
      addr_(transport_->local_addr()) {
  // The push watcher is unfiltered and generously sized; if it still
  // overflows, the seq gap in the event log downgrades every subscriber
  // to a snapshot rather than silently losing events.
  auto w = state_->watch("");
  if (w.ok()) {
    push_watch_ = std::move(w).value();
    auto [unused, seq] = state_->catalogue_snapshot();
    (void)unused;
    pruned_through_ = seq;  // events before the server existed are gone
    observed_through_ = seq;
    push_thread_ = std::thread([this] { push_loop(); });
  }
  thread_ = std::thread([this] { serve_loop(); });
}

DiscoveryServer::~DiscoveryServer() {
  transport_->close();
  if (push_watch_) push_watch_->cancel();
  if (thread_.joinable()) thread_.join();
  if (push_thread_.joinable()) push_thread_.join();
}

uint64_t DiscoveryServer::requests_served() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requests_;
}

uint64_t DiscoveryServer::dedup_hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dedup_hits_;
}

uint64_t DiscoveryServer::subscribes_served() const {
  std::lock_guard<std::mutex> lk(push_mu_);
  return subscribes_;
}

uint64_t DiscoveryServer::batches_pushed() const {
  std::lock_guard<std::mutex> lk(push_mu_);
  return batches_pushed_;
}

uint64_t DiscoveryServer::events_pushed() const {
  std::lock_guard<std::mutex> lk(push_mu_);
  return events_pushed_;
}

uint64_t DiscoveryServer::snapshots_served() const {
  std::lock_guard<std::mutex> lk(push_mu_);
  return snapshots_;
}

size_t DiscoveryServer::subscriber_count() const {
  std::lock_guard<std::mutex> lk(push_mu_);
  return subs_.size();
}

EventLogSnapshot DiscoveryServer::export_event_log(uint64_t through_seq,
                                                   Deadline deadline) const {
  // The push loop observes state events asynchronously; wait for it to
  // absorb everything up to the state snapshot's seq so the exported
  // log and snapshot describe the same instant.
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(push_mu_);
      if (observed_through_ >= through_seq) {
        EventLogSnapshot log;
        log.events.assign(event_log_.begin(), event_log_.end());
        // Trim events past the snapshot's cut; the joiner regenerates
        // those by replaying the sequenced suffix.
        while (!log.events.empty() && log.events.back().seq > through_seq)
          log.events.pop_back();
        log.pruned_through = pruned_through_;
        log.observed_through = through_seq;
        return log;
      }
    }
    if (deadline.expired() || !push_watch_) break;
    sleep_for(ms(2));
  }
  // Could not observe the cut in time: hand over an empty, fully-pruned
  // log. Resuming subscribers on the joiner get a snapshot batch.
  EventLogSnapshot log;
  log.pruned_through = through_seq;
  log.observed_through = through_seq;
  return log;
}

void DiscoveryServer::install_event_log(const EventLogSnapshot& log,
                                        uint64_t state_seq) {
  std::lock_guard<std::mutex> lk(push_mu_);
  event_log_.assign(log.events.begin(), log.events.end());
  pruned_through_ = log.pruned_through;
  observed_through_ = std::max(log.observed_through, state_seq);
  if (log.observed_through < state_seq) {
    // The exported log stopped short of the installed state; anything
    // between is unreplayable.
    event_log_.clear();
    pruned_through_ = state_seq;
  }
}

namespace {

std::string sub_key(const std::string& client_id, uint64_t sub_id) {
  std::string key = client_id;
  key += '#';
  key += std::to_string(sub_id);
  return key;
}

}  // namespace

void DiscoveryServer::push_to_locked(Sub& sub,
                                     const std::vector<WatchEvent>& events,
                                     uint64_t round_max_seq) {
  if (round_max_seq <= sub.last_sent_seq) return;  // already covered
  EventBatchMsg batch;
  batch.prev_seq = sub.last_sent_seq;
  batch.last_seq = round_max_seq;
  for (const auto& ev : events) {
    if (ev.seq <= sub.last_sent_seq) continue;
    if (DiscoveryWatcher::matches(sub.filter, ev)) batch.events.push_back(ev);
  }
  sub.last_sent_seq = round_max_seq;
  batches_pushed_++;
  events_pushed_ += batch.events.size();
  send_to_sub_locked(sub, encode_frame(MsgKind::event_batch, sub.sub_id,
                                       encode_event_batch(batch)));
}

void DiscoveryServer::send_to_sub_locked(Sub& sub, Bytes frame) {
  Datagram d;
  d.dst = sub.addr;
  d.payload.assign(frame);
  fanout_buf_.push_back(std::move(d));
  fanout_subs_.push_back(&sub);
}

void DiscoveryServer::flush_fanout_locked() {
  if (fanout_buf_.empty()) return;
  // One batched send covers the whole round; datagrams [0, sent) were
  // handed to the transport, the tail was not (batch sends stop at the
  // first hard error).
  auto r = send_batch(*transport_, fanout_buf_);
  size_t sent = r.ok() ? r.value() : 0;
  for (size_t i = 0; i < fanout_subs_.size(); i++) {
    if (i < sent)
      fanout_subs_[i]->send_failures = 0;
    else
      fanout_subs_[i]->send_failures++;
  }
  fanout_buf_.clear();
  fanout_subs_.clear();
}

void DiscoveryServer::evict_dead_subs_locked() {
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.send_failures > kSubFailureLimit) {
      BLOG(info, "discovery") << "evicting unreachable watch subscriber "
                              << it->first;
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void DiscoveryServer::send_snapshot_locked(Sub& sub) {
  auto [impls, seq] = state_->catalogue_snapshot();
  EventBatchMsg batch;
  batch.snapshot = true;
  batch.last_seq = seq;
  for (const auto& info : impls) {
    WatchEvent ev;
    ev.kind = WatchKind::impl_registered;
    ev.seq = seq;
    ev.type = info.type;
    ev.name = info.name;
    ev.info = info;
    if (DiscoveryWatcher::matches(sub.filter, ev))
      batch.events.push_back(std::move(ev));
  }
  sub.last_sent_seq = seq;
  snapshots_++;
  batches_pushed_++;
  events_pushed_ += batch.events.size();
  send_to_sub_locked(sub, encode_frame(MsgKind::event_batch, sub.sub_id,
                                       encode_event_batch(batch)));
}

void DiscoveryServer::handle_subscribe(const Addr& src, uint64_t sub_id,
                                       BytesView body) {
  auto msg_r = decode_subscribe(body);
  if (!msg_r.ok()) {
    BLOG(debug, "discovery") << "bad subscribe from " << src.to_string()
                             << ": " << msg_r.error().to_string();
    return;  // no response channel to complain on; the client times out
  }
  const SubscribeMsg& msg = msg_r.value();
  if (msg.sub_id != sub_id) return;  // token/body mismatch: forged frame
  std::lock_guard<std::mutex> lk(push_mu_);
  subscribes_++;
  Sub& sub = subs_[sub_key(msg.client_id, msg.sub_id)];
  sub.addr = src;  // re-subscribe from a new address moves the stream
  sub.sub_id = msg.sub_id;
  sub.filter = msg.filter;
  sub.send_failures = 0;  // the client is demonstrably alive
  // Catch-up: replay from the event log when the client's seq is still
  // inside the resume window, else send a full snapshot. The first
  // batch doubles as the subscribe ack.
  if (msg.last_seq < pruned_through_) {
    send_snapshot_locked(sub);
    flush_fanout_locked();
    return;
  }
  sub.last_sent_seq = msg.last_seq;
  std::vector<WatchEvent> replay;
  for (const auto& ev : event_log_)
    if (ev.seq > msg.last_seq) replay.push_back(ev);
  uint64_t covered = std::max(observed_through_, msg.last_seq);
  if (!replay.empty() || covered > msg.last_seq || !msg.resume) {
    // Forced even when empty: a fresh subscribe needs its ack batch.
    EventBatchMsg batch;
    batch.prev_seq = msg.last_seq;
    batch.last_seq = covered;
    for (auto& ev : replay)
      if (DiscoveryWatcher::matches(sub.filter, ev))
        batch.events.push_back(std::move(ev));
    sub.last_sent_seq = covered;
    batches_pushed_++;
    events_pushed_ += batch.events.size();
    send_to_sub_locked(sub, encode_frame(MsgKind::event_batch, sub.sub_id,
                                         encode_event_batch(batch)));
    flush_fanout_locked();
  }
}

void DiscoveryServer::handle_unsubscribe(BytesView body) {
  auto msg_r = decode_unsubscribe(body);
  if (!msg_r.ok()) return;
  std::lock_guard<std::mutex> lk(push_mu_);
  subs_.erase(sub_key(msg_r.value().client_id, msg_r.value().sub_id));
}

void DiscoveryServer::push_loop() {
  Deadline keepalive = opts_.keepalive > Duration::zero()
                           ? Deadline::after(opts_.keepalive)
                           : Deadline::never();
  for (;;) {
    auto first = push_watch_->next_batch(keepalive);
    if (!first.ok()) {
      if (first.error().code == Errc::cancelled) return;  // shutting down
      // Keepalive tick: an empty batch advances nothing but lets clients
      // that missed pushes during a partition notice the seq gap.
      std::lock_guard<std::mutex> lk(push_mu_);
      for (auto& [key, sub] : subs_) {
        EventBatchMsg batch;
        batch.prev_seq = sub.last_sent_seq;
        batch.last_seq = sub.last_sent_seq;
        send_to_sub_locked(sub, encode_frame(MsgKind::event_batch, sub.sub_id,
                                             encode_event_batch(batch)));
      }
      flush_fanout_locked();
      evict_dead_subs_locked();
      keepalive = opts_.keepalive > Duration::zero()
                      ? Deadline::after(opts_.keepalive)
                      : Deadline::never();
      continue;
    }
    // Coalesce the burst: fold in everything arriving inside the window.
    std::vector<WatchEvent> round = std::move(first).value();
    Deadline window = Deadline::after(opts_.coalesce_window);
    while (!window.expired()) {
      auto more = push_watch_->next_batch(window);
      if (!more.ok()) break;
      round.insert(round.end(), std::make_move_iterator(more.value().begin()),
                   std::make_move_iterator(more.value().end()));
    }
    if (round.empty()) continue;

    std::lock_guard<std::mutex> lk(push_mu_);
    bool lost = false;
    for (auto& ev : round) {
      // Pre-baseline stragglers, and — after an install_event_log() —
      // events the installed log already covers.
      if (ev.seq <= observed_through_) continue;
      // A gap against the log tail means our own watcher overflowed;
      // resume past it is impossible, so snapshot everyone.
      if (observed_through_ != 0 && ev.seq != observed_through_ + 1)
        lost = true;
      observed_through_ = ev.seq;
      event_log_.push_back(ev);
    }
    while (event_log_.size() > opts_.event_log_cap) {
      pruned_through_ = event_log_.front().seq;
      event_log_.pop_front();
    }
    if (lost) {
      pruned_through_ = observed_through_;
      event_log_.clear();
      for (auto& [key, sub] : subs_) send_snapshot_locked(sub);
    } else {
      for (auto& [key, sub] : subs_)
        push_to_locked(sub, round, observed_through_);
    }
    flush_fanout_locked();
    evict_dead_subs_locked();
    keepalive = opts_.keepalive > Duration::zero()
                    ? Deadline::after(opts_.keepalive)
                    : Deadline::never();
  }
}

void DiscoveryServer::serve_loop() {
  for (;;) {
    auto pkt_r = transport_->recv();
    if (!pkt_r.ok()) return;  // closed
    const Packet& pkt = pkt_r.value();

    auto frame_r = decode_frame(pkt.payload);
    if (!frame_r.ok()) {
      BLOG(debug, "discovery") << "ignoring undecodable datagram from "
                               << pkt.src.to_string();
      continue;
    }
    if (frame_r.value().kind == MsgKind::subscribe && push_watch_) {
      handle_subscribe(pkt.src, frame_r.value().token,
                       frame_r.value().payload);
      continue;
    }
    if (frame_r.value().kind == MsgKind::unsubscribe && push_watch_) {
      handle_unsubscribe(frame_r.value().payload);
      continue;
    }
    if (frame_r.value().kind != MsgKind::discovery) {
      BLOG(debug, "discovery") << "ignoring non-discovery datagram from "
                               << pkt.src.to_string();
      continue;
    }
    uint64_t req_id = frame_r.value().token;

    DiscResponse rsp;
    std::string dedup_key;
    auto req_r = decode_request(frame_r.value().payload);
    if (!req_r.ok()) {
      rsp = error_response(req_r.error());
    } else {
      const DiscRequest& req = req_r.value();
      // A fencing/forwarding interceptor (reshard) owns the request
      // outright: no local dedup (the authoritative cache travelled with
      // the migrated range) and no local execution.
      std::optional<DiscResponse> icpt;
      if (opts_.request_interceptor) icpt = opts_.request_interceptor(req);
      // Retried mutation we already executed? Replay the recorded answer
      // so the effect stays exactly-once (a lost acquire response must
      // not allocate twice).
      if (!icpt && req.idem_key != 0 && !req.client_id.empty() &&
          is_mutation(req.op)) {
        dedup_key = req.client_id;
        dedup_key += '#';
        dedup_key += std::to_string(req.idem_key);
        bool replayed = false;
        {
          std::lock_guard<std::mutex> lk(mu_);
          auto it = dedup_.find(dedup_key);
          if (it != dedup_.end()) {
            requests_++;
            dedup_hits_++;
            Bytes out = encode_frame(MsgKind::discovery, req_id, it->second);
            (void)transport_->send_to(pkt.src, out);
            replayed = true;
          }
        }
        if (replayed) {
          if (auto st = state_->fault_stats()) st->dedup_hits++;
          // The retry shares the original request's trace context, so
          // this span lands in the same trace as the first execution.
          Span s = trace_span(opts_.tracer, serve_span_name(req.op), req.trace);
          s.tag("dedup_hit", "1");
          continue;
        }
      }
      Span serve_span = trace_span(opts_.tracer, serve_span_name(req.op),
                                   req.trace);
      if (icpt) {
        serve_span.tag("intercepted", "1");
        rsp = std::move(*icpt);
      } else if (opts_.mutation_executor && is_mutation(req.op)) {
        serve_span.tag("replicated", "1");
        rsp = opts_.mutation_executor(req);
      } else {
        rsp = execute_request(*state_, req, now());
      }
      if (!rsp.success) serve_span.tag("error", rsp.error);
    }

    // Transient failures (the replica group unreachable, a sequencer
    // timeout) must not be recorded: the whole point of the client's
    // retry is to try again, not to be handed the outage verbatim.
    bool transient = !rsp.success &&
                     (rsp.errc == static_cast<uint8_t>(Errc::unavailable) ||
                      rsp.errc == static_cast<uint8_t>(Errc::timed_out));
    Bytes body = encode_response(rsp);
    {
      std::lock_guard<std::mutex> lk(mu_);
      requests_++;
      if (!dedup_key.empty() && !transient &&
          dedup_.emplace(dedup_key, body).second) {
        dedup_order_.push_back(std::move(dedup_key));
        while (dedup_order_.size() > kDedupCacheCap) {
          dedup_.erase(dedup_order_.front());
          dedup_order_.pop_front();
        }
      }
    }
    Bytes out = encode_frame(MsgKind::discovery, req_id, body);
    (void)transport_->send_to(pkt.src, out);
  }
}

// --- RemoteDiscovery ---

struct RemoteDiscovery::Rsp : DiscResponse {};

// A caller blocked in rpc() waiting for the reader thread to hand it the
// matching response.
struct RemoteDiscovery::Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<DiscResponse> result = err(Errc::internal, "pending");
  // Fire-and-forget completion (wheel-mode heartbeats): invoked exactly
  // once, outside `mu`, by whichever path completes the request — the
  // reader thread on a response, or the orphan sweep when the transport
  // dies. When set, the completer also erases the pending_ entry, since
  // no blocked rpc() caller exists to do it.
  std::function<void(const Result<DiscResponse>&)> on_done;
};

// A server-push watch subscription. The reader thread applies pushed
// batches; `last_seq` is the newest catalogue seq applied, the anchor
// for duplicate suppression and gap detection.
struct RemoteDiscovery::Sub {
  uint64_t id = 0;
  std::string filter;
  WatcherPtr watcher;
  std::mutex mu;
  uint64_t last_seq = 0;
  bool acked = false;  // first batch arrived (the subscribe ack)
  std::condition_variable cv;
};

namespace {

std::string random_client_id() {
  std::random_device rd;
  uint64_t v = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "c%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t lease_ttl_ms(const RemoteDiscovery::Options& opts) {
  if (opts.lease_ttl <= Duration::zero()) return 0;
  auto v = std::chrono::duration_cast<std::chrono::milliseconds>(
               opts.lease_ttl)
               .count();
  return v > 0 ? static_cast<uint64_t>(v) : 1;
}

}  // namespace

RemoteDiscovery::RemoteDiscovery(TransportPtr transport,
                                 std::vector<Addr> servers, Options opts)
    : transport_(std::move(transport)),
      servers_(std::move(servers)),
      opts_(opts),
      client_id_(random_client_id()) {
  // Per-client jitter seed: a fleet of clients whose RPCs time out
  // together (a replica just died) must not retry in lockstep.
  backoff_seed_ = opts_.backoff_seed != 0
                      ? opts_.backoff_seed
                      : (std::hash<std::string>{}(client_id_) | 1);
  retry_backoff_.emplace(opts_.backoff, backoff_seed_);
}

Duration RemoteDiscovery::backoff_step() const {
  std::lock_guard<std::mutex> lk(bo_mu_);
  return retry_backoff_->current_step();
}

RemoteDiscovery::RemoteDiscovery(TransportPtr transport, Addr server,
                                 Options opts)
    : RemoteDiscovery(std::move(transport),
                      std::vector<Addr>{std::move(server)}, std::move(opts)) {}

Addr RemoteDiscovery::active_server() const {
  std::lock_guard<std::mutex> lk(srv_mu_);
  return servers_[active_];
}

size_t RemoteDiscovery::server_count() const {
  std::lock_guard<std::mutex> lk(srv_mu_);
  return servers_.size();
}

void RemoteDiscovery::update_servers(std::vector<Addr> servers) {
  if (servers.empty()) return;
  std::lock_guard<std::mutex> lk(srv_mu_);
  Addr cur = servers_[active_];
  servers_ = std::move(servers);
  active_ = 0;
  for (size_t i = 0; i < servers_.size(); i++) {
    if (servers_[i].to_string() == cur.to_string()) {
      active_ = i;  // keep the live server; only removal forces a move
      break;
    }
  }
}

RemoteDiscovery::~RemoteDiscovery() {
  // Wheel-mode heartbeat first: cancel_sync waits out a beat that is
  // mid-callback, so nothing races the teardown below. If the wheel
  // itself already stopped, the entry is still kArmed and the cancel
  // succeeds without waiting.
  {
    uint64_t hb_timer = 0;
    std::shared_ptr<TimerWheel> hb_wheel;
    {
      std::lock_guard<std::mutex> lk(hb_mu_);
      hb_stop_ = true;
      hb_timer = hb_timer_;
      hb_wheel = std::move(hb_wheel_);
    }
    if (hb_wheel && hb_timer) hb_wheel->cancel_sync(hb_timer);
  }
  std::vector<std::pair<WatcherPtr, std::thread>> pollers;
  std::unordered_map<uint64_t, std::shared_ptr<Sub>> subs;
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    stopping_ = true;
    pollers.swap(pollers_);
    subs.swap(subs_);
  }
  for (auto& [w, t] : pollers) w->cancel();
  for (auto& [id, sub] : subs) {
    // Best-effort: a lost unsubscribe just leaves the server pushing to a
    // dead address until it notices.
    UnsubscribeMsg m;
    m.sub_id = id;
    m.client_id = client_id_;
    (void)transport_->send_to(
        active_server(),
        encode_frame(MsgKind::unsubscribe, id, encode_unsubscribe(m)));
    sub->watcher->cancel();
  }
  {
    std::lock_guard<std::mutex> lk(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  watchdog_cv_.notify_all();
  transport_->close();
  if (hb_thread_.joinable()) hb_thread_.join();
  if (watchdog_.joinable()) watchdog_.join();
  if (reader_.joinable()) reader_.join();
  // After the reader joins, nobody can spawn a new replay; an in-flight
  // one fails fast (reader_dead_ short-circuits its RPCs).
  if (hb_replay_.joinable()) hb_replay_.join();
  for (auto& [w, t] : pollers)
    if (t.joinable()) t.join();
}

void RemoteDiscovery::ensure_reader_locked() {
  if (reader_started_) return;
  reader_started_ = true;
  reader_ = std::thread([this] { reader_loop(); });
}

void RemoteDiscovery::reader_loop() {
  for (;;) {
    auto pkt_r = transport_->recv();
    if (!pkt_r.ok()) break;  // transport closed
    auto frame_r = decode_frame(pkt_r.value().payload);
    if (!frame_r.ok()) continue;
    if (frame_r.value().kind == MsgKind::event_batch) {
      handle_event_batch(frame_r.value().token, frame_r.value().payload);
      continue;
    }
    if (frame_r.value().kind != MsgKind::discovery) continue;
    std::shared_ptr<Pending> p;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto it = pending_.find(frame_r.value().token);
      if (it == pending_.end()) continue;  // a timed-out request's response
      p = it->second;
    }
    auto rsp_r = decode_response(frame_r.value().payload);
    std::function<void(const Result<DiscResponse>&)> on_done;
    {
      std::lock_guard<std::mutex> lk(p->mu);
      if (p->done) continue;  // duplicate response
      if (rsp_r.ok()) p->result = std::move(rsp_r).value();
      else p->result = rsp_r.error();
      p->done = true;
      on_done = std::move(p->on_done);
    }
    p->cv.notify_all();
    if (on_done) {
      {
        std::lock_guard<std::mutex> lk(pending_mu_);
        pending_.erase(frame_r.value().token);
      }
      // `result` is stable once done is set (duplicates are suppressed
      // above), so reading it without p->mu here is fine.
      on_done(p->result);
    }
  }
  // Fail everything still waiting so callers don't block on a dead link.
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    reader_dead_ = true;
    orphans.swap(pending_);
  }
  for (auto& [id, p] : orphans) {
    std::function<void(const Result<DiscResponse>&)> on_done;
    {
      std::lock_guard<std::mutex> lk(p->mu);
      if (p->done) continue;
      p->result = err(Errc::cancelled, "discovery client closed");
      p->done = true;
      on_done = std::move(p->on_done);
    }
    p->cv.notify_all();
    if (on_done) on_done(p->result);
  }
}

Result<WatcherPtr> RemoteDiscovery::watch(const std::string& type_filter) {
  auto w = std::make_shared<DiscoveryWatcher>(type_filter);
  auto sub = subscribe_watch(w, type_filter);
  if (sub.ok()) return w;
  if (sub.error().code == Errc::cancelled) return sub.error();
  // The server never acked the subscribe — it predates server-push watch
  // streams. Emulate with poll-and-diff (impl events only, so a type
  // filter is required).
  if (type_filter.empty())
    return err(Errc::invalid_argument,
               "remote watch without server push requires a chunnel type "
               "filter");
  BLOG(info, "discovery") << "watch subscription unanswered ("
                          << sub.error().to_string()
                          << "); falling back to poll-and-diff";
  std::lock_guard<std::mutex> lk(watch_mu_);
  if (stopping_) return err(Errc::cancelled, "discovery client closing");
  pollers_.emplace_back(w, std::thread([this, w] { poll_watch(w); }));
  return w;
}

void RemoteDiscovery::send_subscribe(const Sub& sub, uint64_t last_seq,
                                     bool resume) {
  SubscribeMsg m;
  m.sub_id = sub.id;
  m.client_id = client_id_;
  m.filter = sub.filter;
  m.last_seq = last_seq;
  m.resume = resume;
  (void)transport_->send_to(
      active_server(),
      encode_frame(MsgKind::subscribe, sub.id, encode_subscribe(m)));
}

void RemoteDiscovery::rotate_server(size_t observed) {
  {
    std::lock_guard<std::mutex> lk(srv_mu_);
    if (servers_.size() < 2) return;
    if (observed != active_) return;  // a concurrent caller already rotated
    active_ = (active_ + 1) % servers_.size();
  }
  failovers_.fetch_add(1);
  if (opts_.stats) opts_.stats->server_failovers++;
  Span span = trace_span(opts_.tracer, "ctrl.failover");
  Addr next = active_server();
  span.tag("server", next.to_string());
  BLOG(warn, "discovery") << "failing over to discovery server "
                          << next.to_string();
  // Re-subscribe every live watch stream on the new server with resume:
  // the replicated catalogue carries the identical watch seq on every
  // replica, so the new server replays exactly the missed suffix (no
  // snapshot fallback unless the gap outran its event log).
  std::vector<std::shared_ptr<Sub>> subs;
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    for (auto& [id, sub] : subs_) subs.push_back(sub);
  }
  for (auto& sub : subs) {
    uint64_t last;
    {
      std::lock_guard<std::mutex> lk(sub->mu);
      last = sub->last_seq;
    }
    if (opts_.stats) opts_.stats->watch_resubscribes++;
    send_subscribe(*sub, last, /*resume=*/true);
  }
  last_push_ns_.store(now().time_since_epoch().count(),
                      std::memory_order_relaxed);
}

void RemoteDiscovery::ensure_watchdog() {
  if (opts_.watch_failover_timeout <= Duration::zero() || server_count() < 2)
    return;
  std::lock_guard<std::mutex> lk(watch_mu_);
  if (watchdog_started_ || stopping_) return;
  watchdog_started_ = true;
  last_push_ns_.store(now().time_since_epoch().count(),
                      std::memory_order_relaxed);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void RemoteDiscovery::watchdog_loop() {
  // A live subscription receives at least the server's keepalive batches;
  // silence past watch_failover_timeout means the active server stopped
  // pushing (died, or we're partitioned from it) even though no RPC has
  // timed out to notice — so rotate proactively.
  const Duration limit = opts_.watch_failover_timeout;
  // The poll period bounds detection latency past the timeout; it was a
  // hardcoded limit/2, now an operator knob (RuntimeConfig control
  // tuning plumbs it through).
  const Duration tick =
      opts_.watchdog_interval > Duration::zero() ? opts_.watchdog_interval
                                                 : limit / 2;
  std::unique_lock<std::mutex> lk(watch_mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lk, tick);
    if (stopping_) break;
    if (subs_.empty()) continue;
    int64_t last = last_push_ns_.load(std::memory_order_relaxed);
    int64_t silent = now().time_since_epoch().count() - last;
    if (silent < limit.count()) continue;
    size_t observed;
    {
      std::lock_guard<std::mutex> lk2(srv_mu_);
      observed = active_;
    }
    lk.unlock();
    rotate_server(observed);
    lk.lock();
  }
}

Result<void> RemoteDiscovery::subscribe_watch(WatcherPtr w,
                                              const std::string& filter) {
  auto sub = std::make_shared<Sub>();
  sub->id = next_req_.fetch_add(1);
  sub->filter = filter;
  sub->watcher = std::move(w);
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (reader_dead_) return err(Errc::cancelled, "discovery client closed");
    ensure_reader_locked();
  }
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    if (stopping_) return err(Errc::cancelled, "discovery client closing");
    subs_[sub->id] = sub;
  }
  ensure_watchdog();
  // The first event_batch on our token is the subscribe ack; retry the
  // handshake like any RPC. An old server ignores the frame entirely, so
  // exhausting retries means "no push support", not "service down".
  ExponentialBackoff backoff(opts_.backoff,
                             backoff_seed_ ^ (sub->id * 0x9e3779b9ull));
  for (int attempt = 0; attempt <= opts_.retries; attempt++) {
    if (attempt > 0 && opts_.stats) opts_.stats->rpc_retries++;
    uint64_t last_seq;
    {
      std::lock_guard<std::mutex> lk(sub->mu);
      if (sub->acked) return ok();
      last_seq = sub->last_seq;
    }
    send_subscribe(*sub, last_seq, /*resume=*/false);
    std::unique_lock<std::mutex> lk(sub->mu);
    if (sub->cv.wait_for(lk, opts_.rpc_timeout, [&] { return sub->acked; }))
      return ok();
    lk.unlock();
    if (attempt < opts_.retries) sleep_for(backoff.next());
  }
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    subs_.erase(sub->id);
  }
  if (opts_.stats) opts_.stats->rpc_failures++;
  return err(Errc::unavailable,
             "discovery service did not ack the watch subscription");
}

void RemoteDiscovery::handle_event_batch(uint64_t token, BytesView payload) {
  std::shared_ptr<Sub> sub;
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    auto it = subs_.find(token);
    if (it == subs_.end()) return;  // unknown/closed stream
    sub = it->second;
  }
  last_push_ns_.store(now().time_since_epoch().count(),
                      std::memory_order_relaxed);
  if (sub->watcher->cancelled()) {
    // The consumer dropped its handle; close the stream server-side too.
    {
      std::lock_guard<std::mutex> lk(watch_mu_);
      subs_.erase(token);
    }
    UnsubscribeMsg m;
    m.sub_id = token;
    m.client_id = client_id_;
    (void)transport_->send_to(
        active_server(),
        encode_frame(MsgKind::unsubscribe, token, encode_unsubscribe(m)));
    return;
  }
  auto batch_r = decode_event_batch(payload);
  if (!batch_r.ok()) return;  // corrupt push; the next keepalive re-syncs us
  EventBatchMsg batch = std::move(batch_r).value();

  std::vector<WatchEvent> apply;
  bool applied = false;
  bool need_resume = false;
  uint64_t resume_from = 0;
  {
    std::lock_guard<std::mutex> lk(sub->mu);
    if (batch.last_seq < sub->last_seq) return;  // stale duplicate/reorder
    if (batch.snapshot) {
      if (batch.last_seq == sub->last_seq && sub->acked)
        return;  // we already hold this state
      apply = std::move(batch.events);
      sub->last_seq = batch.last_seq;
      applied = true;
      if (opts_.stats) opts_.stats->watch_snapshots++;
    } else if (batch.prev_seq > sub->last_seq) {
      // Gap: batches between prev_seq and our seq were lost (partition,
      // drop, or server-side overflow). Don't apply — ask the server to
      // replay from where we actually are; the replay covers this batch.
      need_resume = true;
      resume_from = sub->last_seq;
    } else {
      // Contiguous or overlapping: apply only what we haven't seen, so a
      // duplicated or partially re-sent batch never double-applies.
      for (auto& ev : batch.events)
        if (ev.seq > sub->last_seq) apply.push_back(std::move(ev));
      sub->last_seq = batch.last_seq;
      applied = true;
    }
    if (!need_resume) sub->acked = true;
  }
  if (need_resume) {
    if (opts_.stats) opts_.stats->watch_resubscribes++;
    send_subscribe(*sub, resume_from, /*resume=*/true);
    return;
  }
  sub->cv.notify_all();
  if (!applied) return;
  if (opts_.stats && !apply.empty()) opts_.stats->watch_batches++;
  std::vector<WatchEvent> filtered;
  for (auto& ev : apply)
    if (sub->watcher->wants(ev)) filtered.push_back(std::move(ev));
  if (!filtered.empty()) sub->watcher->deliver_batch(std::move(filtered));
}

void RemoteDiscovery::poll_watch(WatcherPtr w) {
  // Poll-and-diff emulation of the in-process watch channel: impl events
  // only, with per-watcher sequence numbers. Comparison is by name +
  // metadata so a re-registration that changes an advertisement still
  // surfaces as impl_registered. The initial snapshot is delivered as
  // impl_registered events too: a subscriber that races its first poll
  // against a registration sees the impl either way.
  std::unordered_map<std::string, ImplInfo> known;
  uint64_t seq = 0;
  while (!w->cancelled()) {
    auto q = query(w->filter());
    if (q.ok()) {
      std::unordered_map<std::string, ImplInfo> now;
      for (auto& e : q.value()) now.emplace(e.name, e);
      for (auto& [name, info] : now) {
        auto it = known.find(name);
        bool changed =
            it == known.end() ||
            serialize_to_bytes(it->second) != serialize_to_bytes(info);
        if (!changed) continue;
        WatchEvent ev;
        ev.kind = WatchKind::impl_registered;
        ev.seq = ++seq;
        ev.type = info.type;
        ev.name = name;
        ev.info = info;
        w->deliver(ev);
      }
      for (auto& [name, info] : known) {
        if (now.count(name)) continue;
        WatchEvent ev;
        ev.kind = WatchKind::impl_unregistered;
        ev.seq = ++seq;
        ev.type = info.type;
        ev.name = name;
        w->deliver(ev);
      }
      known = std::move(now);
    } else if (q.error().code == Errc::cancelled) {
      break;  // transport closed under us
    }
    // Sleep in small steps so cancel() is honored promptly.
    Deadline next_poll = Deadline::after(opts_.watch_poll);
    while (!next_poll.expired() && !w->cancelled())
      sleep_for(std::min(ms(10), next_poll.remaining()));
  }
  w->cancel();
}

Result<RemoteDiscovery::Rsp> RemoteDiscovery::rpc(const Bytes& request_body,
                                                  Span* span) {
  uint64_t req_id = next_req_.fetch_add(1);
  Bytes frame = encode_frame(MsgKind::discovery, req_id, request_body);
  auto p = std::make_shared<Pending>();
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (reader_dead_) return err(Errc::cancelled, "discovery client closed");
    ensure_reader_locked();
    pending_[req_id] = p;
  }

  // The retry backoff is per-*client*, not per-call: escalation from one
  // outage carries into the next RPC, and the first success resets it —
  // a recovered server is charged nothing for its history.
  auto backoff_delay = [this] {
    std::lock_guard<std::mutex> lk(bo_mu_);
    return retry_backoff_->next();
  };
  Result<DiscResponse> outcome =
      err(Errc::unavailable, "discovery service unreachable at " +
                                 active_server().to_string());
  bool exhausted = true;
  int attempts_used = 0;
  for (int attempt = 0; attempt <= opts_.retries; attempt++) {
    if (attempt > 0 && opts_.stats) opts_.stats->rpc_retries++;
    attempts_used = attempt + 1;
    // One child span per resend: retries of a logical RPC share its
    // trace id, which is what the fault-propagation tests assert.
    Span att = span ? trace_span(opts_.tracer, "rpc.attempt", span->context())
                    : Span{};
    att.tag_u64("attempt", static_cast<uint64_t>(attempt));
    size_t observed;
    Addr target;
    {
      std::lock_guard<std::mutex> lk(srv_mu_);
      observed = active_;
      target = servers_[active_];
    }
    att.tag("server", target.to_string());
    auto sent = transport_->send_to(target, frame);
    if (!sent.ok()) {
      outcome = sent.error();
      exhausted = false;
      break;
    }
    std::unique_lock<std::mutex> lk(p->mu);
    if (p->cv.wait_for(lk, opts_.rpc_timeout, [&] { return p->done; })) {
      outcome = std::move(p->result);
      exhausted = false;
      // An `unavailable` *response* is the server saying "try again
      // shortly" — a fenced key range mid-reshard, a sequencer timeout.
      // The server is alive (it answered), so retry in place without
      // rotating; idempotency keys make the resend exactly-once.
      bool retry_rsp = outcome.ok() && !outcome.value().success &&
                       outcome.value().errc ==
                           static_cast<uint8_t>(Errc::unavailable) &&
                       attempt < opts_.retries;
      if (!retry_rsp) break;
      lk.unlock();
      att.tag("unavailable", "1");
      auto fresh = std::make_shared<Pending>();
      {
        std::lock_guard<std::mutex> plk(pending_mu_);
        if (reader_dead_) break;
        pending_[req_id] = fresh;
      }
      p = std::move(fresh);
      sleep_for(backoff_delay());
      continue;
    }
    lk.unlock();
    att.tag("timeout", "1");
    // The active server let an RPC time out: assume it died and try the
    // next replica on the following attempt (no-op with one server).
    rotate_server(observed);
    if (attempt < opts_.retries) sleep_for(backoff_delay());
  }
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_.erase(req_id);
  }

  if (span && span->active()) {
    span->tag_u64("attempts", static_cast<uint64_t>(attempts_used));
    if (attempts_used > 1) span->tag("retried", "1");
    if (exhausted) span->tag("exhausted", "1");
  }
  if (exhausted && opts_.stats) opts_.stats->rpc_failures++;
  if (!outcome.ok()) return outcome.error();
  DiscResponse raw = std::move(outcome).value();
  if (raw.success) {
    std::lock_guard<std::mutex> blk(bo_mu_);
    retry_backoff_->reset();
  }
  if (!raw.success) {
    Errc code = raw.errc <= static_cast<uint8_t>(Errc::internal)
                    ? static_cast<Errc>(raw.errc)
                    : Errc::internal;
    return err(code, raw.error);
  }
  Rsp rsp;
  static_cast<DiscResponse&>(rsp) = std::move(raw);
  return rsp;
}

void RemoteDiscovery::ensure_heartbeat() {
  if (opts_.lease_ttl <= Duration::zero()) return;
  std::lock_guard<std::mutex> lk(hb_mu_);
  if (hb_started_ || hb_stop_) return;
  if (opts_.wheel_source && !hb_wheel_) hb_wheel_ = opts_.wheel_source();
  hb_started_ = true;
  if (hb_wheel_) {
    // Wheel mode: lease renewal is one periodic wheel entry and the RPC
    // is fire-and-forget (the reader thread completes it), so N leased
    // clients in a process cost zero heartbeat threads. The period gets
    // the same ±12.5% per-client jitter as the thread path, fixed once
    // at arm time — wheel entries re-arm at a constant period.
    Duration period = opts_.heartbeat_period > Duration::zero()
                          ? opts_.heartbeat_period
                          : opts_.lease_ttl / 4;
    if (period <= Duration::zero()) period = ms(10);
    Rng jitter(backoff_seed_ ^ 0x48454152544a4954ull);
    int64_t half_spread = std::max<int64_t>(period.count() / 8, 1);
    period += Duration(jitter.next_in(-half_spread, half_spread));
    hb_timer_ = hb_wheel_->schedule_periodic(period, [this] { beat_async(); });
    return;
  }
  hb_thread_ = std::thread([this] { heartbeat_loop(); });
}

void RemoteDiscovery::beat_async() {
  // Wheel tick thread: register the pending, send, return. Never waits —
  // the tick thread beats every connection in the process.
  uint64_t req_id = next_req_.fetch_add(1);
  uint64_t stale = 0;
  {
    std::lock_guard<std::mutex> lk(hb_mu_);
    if (hb_stop_) return;
    stale = hb_inflight_;
    hb_inflight_ = req_id;
  }
  DiscRequest req;
  req.op = DiscOp::heartbeat;
  req.client_id = client_id_;
  Bytes frame = encode_frame(MsgKind::discovery, req_id, encode_request(req));
  auto p = std::make_shared<Pending>();
  p->on_done = [this, req_id](const Result<DiscResponse>& r) {
    {
      std::lock_guard<std::mutex> lk(hb_mu_);
      if (hb_inflight_ == req_id) hb_inflight_ = 0;
    }
    on_heartbeat_done(r);
  };
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (reader_dead_) return;
    ensure_reader_locked();
    // A beat the server never answered would leak its pending entry;
    // reap the previous one when arming the next. No retry/rotation
    // here: the next beat is the retry, and missing lease_ttl/4 worth of
    // beats is exactly what the TTL budget tolerates.
    if (stale) pending_.erase(stale);
    pending_[req_id] = p;
  }
  (void)transport_->send_to(active_server(), frame);
  if (opts_.stats) opts_.stats->heartbeats_sent++;
}

void RemoteDiscovery::on_heartbeat_done(Result<DiscResponse> rsp) {
  // Reader-thread context: blocking rpc() here would deadlock (this very
  // thread completes those RPCs), so the lease-loss replay — the only
  // heavy reaction — runs on a transient thread instead.
  bool lease_lost = rsp.ok() && !rsp.value().success &&
                    rsp.value().errc == static_cast<uint8_t>(Errc::not_found);
  if (!lease_lost) return;
  std::lock_guard<std::mutex> lk(hb_mu_);
  if (hb_stop_) return;
  if (hb_replay_running_.exchange(true)) return;  // one replay at a time
  if (hb_replay_.joinable()) hb_replay_.join();   // reap the finished one
  std::vector<ImplInfo> replay = leased_impls_;
  hb_replay_ = std::thread([this, replay = std::move(replay)] {
    BLOG(warn, "discovery") << "lease lost for " << client_id_
                            << "; re-registering " << replay.size()
                            << " impls";
    for (const auto& info : replay) {
      DiscRequest rr;
      rr.op = DiscOp::register_impl;
      rr.entry = info;
      rr.client_id = client_id_;
      rr.idem_key = next_idem();
      rr.ttl_ms = lease_ttl_ms(opts_);
      Span span = trace_span(opts_.tracer, "rpc.replay_register");
      span.tag("impl", info.name);
      rr.trace = span.context();
      (void)rpc(encode_request(rr), &span);
    }
    if (opts_.stats && !replay.empty()) opts_.stats->lease_recoveries++;
    hb_replay_running_.store(false);
  });
}

void RemoteDiscovery::set_wheel_source(
    std::function<std::shared_ptr<TimerWheel>()> source) {
  std::lock_guard<std::mutex> lk(hb_mu_);
  if (hb_started_) return;  // engine already chosen; too late to switch
  opts_.wheel_source = std::move(source);
}

void RemoteDiscovery::heartbeat_loop() {
  Duration period = opts_.heartbeat_period > Duration::zero()
                        ? opts_.heartbeat_period
                        : opts_.lease_ttl / 4;
  if (period <= Duration::zero()) period = ms(10);
  // Jitter each interval ±12.5% (per-client seed): heartbeats from a
  // fleet of clients started together must not stay phase-locked, or a
  // recovering server absorbs them all in one burst.
  Rng jitter(backoff_seed_ ^ 0x48454152544a4954ull);
  int64_t half_spread = std::max<int64_t>(period.count() / 8, 1);
  std::unique_lock<std::mutex> lk(hb_mu_);
  while (!hb_stop_) {
    hb_cv_.wait_for(lk, period + Duration(jitter.next_in(-half_spread,
                                                         half_spread)));
    if (hb_stop_) break;
    lk.unlock();
    DiscRequest req;
    req.op = DiscOp::heartbeat;
    req.client_id = client_id_;
    auto r = rpc(encode_request(req));
    if (opts_.stats) opts_.stats->heartbeats_sent++;
    if (!r.ok() && r.error().code == Errc::not_found) {
      // The service reaped our lease (e.g. we were partitioned past the
      // TTL). Replay leased registrations so the deployment converges.
      std::vector<ImplInfo> replay;
      {
        std::lock_guard<std::mutex> lk2(hb_mu_);
        replay = leased_impls_;
      }
      BLOG(warn, "discovery") << "lease lost for " << client_id_
                              << "; re-registering " << replay.size()
                              << " impls";
      for (const auto& info : replay) {
        DiscRequest rr;
        rr.op = DiscOp::register_impl;
        rr.entry = info;
        rr.client_id = client_id_;
        rr.idem_key = next_idem();
        rr.ttl_ms = lease_ttl_ms(opts_);
        Span span = trace_span(opts_.tracer, "rpc.replay_register");
        span.tag("impl", info.name);
        rr.trace = span.context();
        (void)rpc(encode_request(rr), &span);
      }
      if (opts_.stats && !replay.empty()) opts_.stats->lease_recoveries++;
    }
    lk.lock();
  }
}

Result<void> RemoteDiscovery::register_impl(const ImplInfo& info) {
  DiscRequest req;
  req.op = DiscOp::register_impl;
  req.entry = info;
  req.client_id = client_id_;
  req.idem_key = next_idem();
  req.ttl_ms = lease_ttl_ms(opts_);
  Span span = trace_span(opts_.tracer, "rpc.register_impl", current_trace_context());
  req.trace = span.context();
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req), &span));
  (void)rsp;
  if (req.ttl_ms != 0) {
    {
      std::lock_guard<std::mutex> lk(hb_mu_);
      auto it = std::find_if(leased_impls_.begin(), leased_impls_.end(),
                             [&](const ImplInfo& e) {
                               return e.type == info.type &&
                                      e.name == info.name;
                             });
      if (it != leased_impls_.end()) *it = info;
      else leased_impls_.push_back(info);
    }
    ensure_heartbeat();
  }
  return ok();
}

Result<void> RemoteDiscovery::unregister_impl(const std::string& type,
                                              const std::string& name) {
  DiscRequest req;
  req.op = DiscOp::unregister_impl;
  req.type = type;
  req.name = name;
  req.client_id = client_id_;
  req.idem_key = next_idem();
  Span span = trace_span(opts_.tracer, "rpc.unregister_impl", current_trace_context());
  req.trace = span.context();
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req), &span));
  (void)rsp;
  std::lock_guard<std::mutex> lk(hb_mu_);
  std::erase_if(leased_impls_, [&](const ImplInfo& e) {
    return e.type == type && e.name == name;
  });
  return ok();
}

Result<std::vector<ImplInfo>> RemoteDiscovery::query(const std::string& type) {
  DiscRequest req;
  req.op = DiscOp::query;
  req.type = type;
  Span span = trace_span(opts_.tracer, "rpc.query", current_trace_context());
  req.trace = span.context();
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req), &span));
  return std::move(rsp.entries);
}

Result<uint64_t> RemoteDiscovery::acquire(const std::vector<ResourceReq>& reqs) {
  DiscRequest req;
  req.op = DiscOp::acquire;
  req.resources = reqs;
  req.client_id = client_id_;
  req.idem_key = next_idem();
  req.ttl_ms = lease_ttl_ms(opts_);
  Span span = trace_span(opts_.tracer, "rpc.acquire", current_trace_context());
  req.trace = span.context();
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req), &span));
  if (req.ttl_ms != 0) ensure_heartbeat();
  return rsp.alloc_id;
}

Result<void> RemoteDiscovery::release(uint64_t alloc_id) {
  DiscRequest req;
  req.op = DiscOp::release;
  req.alloc_id = alloc_id;
  req.client_id = client_id_;
  req.idem_key = next_idem();
  Span span = trace_span(opts_.tracer, "rpc.release", current_trace_context());
  req.trace = span.context();
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req), &span));
  (void)rsp;
  return ok();
}

Result<void> RemoteDiscovery::set_pool(const std::string& pool,
                                       uint64_t capacity) {
  DiscRequest req;
  req.op = DiscOp::set_pool;
  req.type = pool;
  req.capacity = capacity;
  req.client_id = client_id_;
  req.idem_key = next_idem();
  Span span = trace_span(opts_.tracer, "rpc.set_pool", current_trace_context());
  req.trace = span.context();
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req), &span));
  (void)rsp;
  return ok();
}

}  // namespace bertha
