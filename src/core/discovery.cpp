#include "core/discovery.hpp"

#include <algorithm>

#include "core/wire.hpp"
#include "util/log.hpp"

namespace bertha {

// --- Registry ---

Result<void> Registry::register_impl(ChunnelImplPtr impl) {
  if (!impl) return err(Errc::invalid_argument, "null chunnel impl");
  const ImplInfo& info = impl->info();
  if (info.type.empty() || info.name.empty())
    return err(Errc::invalid_argument, "chunnel impl missing type/name");
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& by_name = impls_[info.type];
    if (by_name.count(info.name))
      return err(Errc::already_exists, "impl already registered: " + info.name);
    by_name[info.name] = impl;
  }
  BERTHA_TRY(impl->init());
  BLOG(debug, "registry") << "registered " << info.name;
  return ok();
}

Result<void> Registry::unregister_impl(const std::string& type,
                                       const std::string& name) {
  ChunnelImplPtr removed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = impls_.find(type);
    if (it == impls_.end()) return err(Errc::not_found, "no such type: " + type);
    auto nit = it->second.find(name);
    if (nit == it->second.end())
      return err(Errc::not_found, "no such impl: " + name);
    removed = nit->second;
    it->second.erase(nit);
  }
  removed->teardown();
  return ok();
}

Result<ChunnelImplPtr> Registry::lookup(const std::string& type,
                                        const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = impls_.find(type);
  if (it == impls_.end()) return err(Errc::not_found, "no impls for " + type);
  auto nit = it->second.find(name);
  if (nit != it->second.end()) return nit->second;
  // Parameterized network offloads are advertised with an instance
  // suffix ("ordered_mcast/switch:sim://g:7"); the local factory is
  // registered under the base name ("ordered_mcast/switch").
  auto colon = name.find(':');
  if (colon != std::string::npos) {
    nit = it->second.find(name.substr(0, colon));
    if (nit != it->second.end()) return nit->second;
  }
  return err(Errc::not_found, "no local factory for " + name);
}

std::vector<ChunnelImplPtr> Registry::lookup_type(const std::string& type) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ChunnelImplPtr> out;
  auto it = impls_.find(type);
  if (it != impls_.end())
    for (const auto& [name, impl] : it->second) out.push_back(impl);
  return out;
}

std::vector<ImplInfo> Registry::infos_for(const std::string& type) const {
  std::vector<ImplInfo> out;
  for (const auto& impl : lookup_type(type)) out.push_back(impl->info());
  return out;
}

std::vector<std::string> Registry::types() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(impls_.size());
  for (const auto& [type, by_name] : impls_) out.push_back(type);
  return out;
}

bool Registry::has(const std::string& type, const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = impls_.find(type);
  return it != impls_.end() && it->second.count(name) > 0;
}

// --- DiscoveryWatcher ---

DiscoveryWatcher::DiscoveryWatcher(std::string type_filter, size_t capacity)
    : filter_(std::move(type_filter)), q_(capacity) {}

Result<WatchEvent> DiscoveryWatcher::next(Deadline deadline) {
  return q_.pop(deadline);
}

std::optional<WatchEvent> DiscoveryWatcher::try_next() { return q_.try_pop(); }

uint64_t DiscoveryWatcher::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

bool DiscoveryWatcher::wants(const WatchEvent& ev) const {
  if (filter_.empty()) return true;
  // Typed watchers see impl events for their type; pool capacity is not
  // owned by any one chunnel type, so pool events go to unfiltered
  // watchers only.
  return ev.kind != WatchKind::pool_freed && ev.type == filter_;
}

void DiscoveryWatcher::deliver(const WatchEvent& ev) {
  if (!q_.push(ev).ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    dropped_++;
  }
}

// --- DiscoveryState ---

DiscoveryState::~DiscoveryState() {
  // Watchers may outlive the state (e.g. the runtime shut down first);
  // wake them with cancelled instead of leaving next() blocked forever.
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    watchers.swap(watchers_);
  }
  for (auto& w : watchers)
    if (auto sp = w.lock()) sp->cancel();
}

void DiscoveryState::emit(WatchEvent ev) {
  ev.seq = ++watch_seq_;
  size_t live = 0;
  for (auto& w : watchers_) {
    auto sp = w.lock();
    if (!sp || sp->cancelled()) continue;
    watchers_[live++] = w;
    if (sp->wants(ev)) sp->deliver(ev);
  }
  watchers_.resize(live);
}

Result<WatcherPtr> DiscoveryState::watch(const std::string& type_filter) {
  auto w = std::make_shared<DiscoveryWatcher>(type_filter);
  std::lock_guard<std::mutex> lk(mu_);
  watchers_.push_back(w);
  return w;
}

Result<void> DiscoveryState::register_impl(const ImplInfo& info) {
  if (info.type.empty() || info.name.empty())
    return err(Errc::invalid_argument, "impl info missing type/name");
  std::lock_guard<std::mutex> lk(mu_);
  auto& v = entries_[info.type];
  ImplInfo* slot = nullptr;
  for (auto& e : v) {
    if (e.name == info.name) {
      e = info;  // re-registration updates metadata
      slot = &e;
      break;
    }
  }
  if (!slot) {
    v.push_back(info);
    slot = &v.back();
  }
  WatchEvent ev;
  ev.kind = WatchKind::impl_registered;
  ev.type = info.type;
  ev.name = info.name;
  ev.info = *slot;
  emit(std::move(ev));
  return ok();
}

Result<void> DiscoveryState::unregister_impl(const std::string& type,
                                             const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(type);
  if (it == entries_.end()) return err(Errc::not_found, "no such type: " + type);
  auto& v = it->second;
  auto nit = std::find_if(v.begin(), v.end(),
                          [&](const ImplInfo& e) { return e.name == name; });
  if (nit == v.end()) return err(Errc::not_found, "no such impl: " + name);
  v.erase(nit);
  WatchEvent ev;
  ev.kind = WatchKind::impl_unregistered;
  ev.type = type;
  ev.name = name;
  emit(std::move(ev));
  return ok();
}

Result<std::vector<ImplInfo>> DiscoveryState::query(const std::string& type) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(type);
  if (it == entries_.end()) return std::vector<ImplInfo>{};
  return it->second;
}

Result<uint64_t> DiscoveryState::acquire(const std::vector<ResourceReq>& reqs) {
  std::lock_guard<std::mutex> lk(mu_);
  // Validate the whole set, then commit — all or nothing.
  for (const auto& r : reqs) {
    auto it = pools_.find(r.pool);
    if (it == pools_.end())
      return err(Errc::not_found, "no such resource pool: " + r.pool);
    if (it->second.used + r.amount > it->second.capacity)
      return err(Errc::resource_exhausted, "pool exhausted: " + r.pool);
  }
  for (const auto& r : reqs) pools_[r.pool].used += r.amount;
  uint64_t id = next_alloc_++;
  allocs_[id] = reqs;
  return id;
}

Result<void> DiscoveryState::release(uint64_t alloc_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = allocs_.find(alloc_id);
  if (it == allocs_.end())
    return err(Errc::not_found, "unknown allocation id");
  for (const auto& r : it->second) {
    auto pit = pools_.find(r.pool);
    if (pit == pools_.end()) continue;
    pit->second.used -= std::min(pit->second.used, r.amount);
    WatchEvent ev;
    ev.kind = WatchKind::pool_freed;
    ev.pool = r.pool;
    ev.available = pit->second.capacity - pit->second.used;
    emit(std::move(ev));
  }
  allocs_.erase(it);
  return ok();
}

Result<void> DiscoveryState::set_pool(const std::string& pool, uint64_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& p = pools_[pool];
  uint64_t before_avail = p.capacity > p.used ? p.capacity - p.used : 0;
  p.capacity = capacity;
  uint64_t after_avail = p.capacity > p.used ? p.capacity - p.used : 0;
  if (after_avail > before_avail) {
    // Growing a pool frees capacity just like releasing an allocation.
    WatchEvent ev;
    ev.kind = WatchKind::pool_freed;
    ev.pool = pool;
    ev.available = after_avail;
    emit(std::move(ev));
  }
  return ok();
}

uint64_t DiscoveryState::pool_in_use(const std::string& pool) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(pool);
  return it == pools_.end() ? 0 : it->second.used;
}

uint64_t DiscoveryState::pool_capacity(const std::string& pool) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(pool);
  return it == pools_.end() ? 0 : it->second.capacity;
}

// --- Wire protocol ---

namespace {

enum class DiscOp : uint8_t {
  register_impl = 1,
  unregister_impl = 2,
  query = 3,
  acquire = 4,
  release = 5,
  set_pool = 6,
};

struct DiscRequest {
  DiscOp op;
  std::string type;
  std::string name;
  std::optional<ImplInfo> entry;
  std::vector<ResourceReq> resources;
  uint64_t alloc_id = 0;
  uint64_t capacity = 0;
};

Bytes encode_request(const DiscRequest& req) {
  Writer w;
  w.put_u8(static_cast<uint8_t>(req.op));
  w.put_string(req.type);
  w.put_string(req.name);
  serde_put(w, std::optional<ImplInfo>(req.entry));
  serde_put(w, req.resources);
  w.put_varint(req.alloc_id);
  w.put_varint(req.capacity);
  return std::move(w).take();
}

Result<DiscRequest> decode_request(BytesView b) {
  Reader r(b);
  DiscRequest req;
  BERTHA_TRY_ASSIGN(op, r.get_u8());
  if (op < 1 || op > 6) return err(Errc::protocol_error, "bad discovery op");
  req.op = static_cast<DiscOp>(op);
  BERTHA_TRY_ASSIGN(type, r.get_string());
  BERTHA_TRY_ASSIGN(name, r.get_string());
  BERTHA_TRY_ASSIGN(entry, serde_get<std::optional<ImplInfo>>(r));
  BERTHA_TRY_ASSIGN(res, serde_get<std::vector<ResourceReq>>(r));
  BERTHA_TRY_ASSIGN(alloc, r.get_varint());
  BERTHA_TRY_ASSIGN(cap, r.get_varint());
  req.type = std::move(type);
  req.name = std::move(name);
  req.entry = std::move(entry);
  req.resources = std::move(res);
  req.alloc_id = alloc;
  req.capacity = cap;
  return req;
}

struct DiscResponse {
  bool success = false;
  uint8_t errc = 0;
  std::string error;
  std::vector<ImplInfo> entries;
  uint64_t alloc_id = 0;
};

Bytes encode_response(const DiscResponse& rsp) {
  Writer w;
  w.put_bool(rsp.success);
  w.put_u8(rsp.errc);
  w.put_string(rsp.error);
  serde_put(w, rsp.entries);
  w.put_varint(rsp.alloc_id);
  return std::move(w).take();
}

Result<DiscResponse> decode_response(BytesView b) {
  Reader r(b);
  DiscResponse rsp;
  BERTHA_TRY_ASSIGN(okb, r.get_bool());
  BERTHA_TRY_ASSIGN(ec, r.get_u8());
  BERTHA_TRY_ASSIGN(error, r.get_string());
  BERTHA_TRY_ASSIGN(entries, serde_get<std::vector<ImplInfo>>(r));
  BERTHA_TRY_ASSIGN(alloc, r.get_varint());
  rsp.success = okb;
  rsp.errc = ec;
  rsp.error = std::move(error);
  rsp.entries = std::move(entries);
  rsp.alloc_id = alloc;
  return rsp;
}

DiscResponse error_response(const Error& e) {
  DiscResponse rsp;
  rsp.success = false;
  rsp.errc = static_cast<uint8_t>(e.code);
  rsp.error = e.message;
  return rsp;
}

}  // namespace

DiscoveryServer::DiscoveryServer(TransportPtr transport,
                                 std::shared_ptr<DiscoveryState> state)
    : transport_(std::move(transport)),
      state_(std::move(state)),
      addr_(transport_->local_addr()) {
  thread_ = std::thread([this] { serve_loop(); });
}

DiscoveryServer::~DiscoveryServer() {
  transport_->close();
  if (thread_.joinable()) thread_.join();
}

uint64_t DiscoveryServer::requests_served() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requests_;
}

void DiscoveryServer::serve_loop() {
  for (;;) {
    auto pkt_r = transport_->recv();
    if (!pkt_r.ok()) return;  // closed
    const Packet& pkt = pkt_r.value();

    auto frame_r = decode_frame(pkt.payload);
    if (!frame_r.ok() || frame_r.value().kind != MsgKind::discovery) {
      BLOG(debug, "discovery") << "ignoring non-discovery datagram from "
                               << pkt.src.to_string();
      continue;
    }
    uint64_t req_id = frame_r.value().token;

    DiscResponse rsp;
    auto req_r = decode_request(frame_r.value().payload);
    if (!req_r.ok()) {
      rsp = error_response(req_r.error());
    } else {
      const DiscRequest& req = req_r.value();
      switch (req.op) {
        case DiscOp::register_impl: {
          if (!req.entry) {
            rsp = error_response(err(Errc::invalid_argument, "missing entry"));
            break;
          }
          auto r = state_->register_impl(*req.entry);
          if (r.ok()) rsp.success = true;
          else rsp = error_response(r.error());
          break;
        }
        case DiscOp::unregister_impl: {
          auto r = state_->unregister_impl(req.type, req.name);
          if (r.ok()) rsp.success = true;
          else rsp = error_response(r.error());
          break;
        }
        case DiscOp::query: {
          auto r = state_->query(req.type);
          if (r.ok()) {
            rsp.success = true;
            rsp.entries = std::move(r).value();
          } else {
            rsp = error_response(r.error());
          }
          break;
        }
        case DiscOp::acquire: {
          auto r = state_->acquire(req.resources);
          if (r.ok()) {
            rsp.success = true;
            rsp.alloc_id = r.value();
          } else {
            rsp = error_response(r.error());
          }
          break;
        }
        case DiscOp::release: {
          auto r = state_->release(req.alloc_id);
          if (r.ok()) rsp.success = true;
          else rsp = error_response(r.error());
          break;
        }
        case DiscOp::set_pool: {
          auto r = state_->set_pool(req.type, req.capacity);
          if (r.ok()) rsp.success = true;
          else rsp = error_response(r.error());
          break;
        }
      }
    }

    {
      std::lock_guard<std::mutex> lk(mu_);
      requests_++;
    }
    Bytes out = encode_frame(MsgKind::discovery, req_id, encode_response(rsp));
    (void)transport_->send_to(pkt.src, out);
  }
}

// --- RemoteDiscovery ---

struct RemoteDiscovery::Rsp : DiscResponse {};

RemoteDiscovery::RemoteDiscovery(TransportPtr transport, Addr server,
                                 Options opts)
    : transport_(std::move(transport)), server_(std::move(server)), opts_(opts) {}

RemoteDiscovery::~RemoteDiscovery() {
  std::vector<std::pair<WatcherPtr, std::thread>> pollers;
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    stopping_ = true;
    pollers.swap(pollers_);
  }
  for (auto& [w, t] : pollers) w->cancel();
  transport_->close();
  for (auto& [w, t] : pollers)
    if (t.joinable()) t.join();
}

Result<WatcherPtr> RemoteDiscovery::watch(const std::string& type_filter) {
  if (type_filter.empty())
    return err(Errc::invalid_argument,
               "remote watch requires a chunnel type filter");
  auto w = std::make_shared<DiscoveryWatcher>(type_filter);
  std::lock_guard<std::mutex> lk(watch_mu_);
  if (stopping_) return err(Errc::cancelled, "discovery client closing");
  pollers_.emplace_back(w, std::thread([this, w] { poll_watch(w); }));
  return w;
}

void RemoteDiscovery::poll_watch(WatcherPtr w) {
  // Poll-and-diff emulation of the in-process watch channel: impl events
  // only, with per-watcher sequence numbers. Comparison is by name +
  // metadata so a re-registration that changes an advertisement still
  // surfaces as impl_registered. The initial snapshot is delivered as
  // impl_registered events too: a subscriber that races its first poll
  // against a registration sees the impl either way.
  std::unordered_map<std::string, ImplInfo> known;
  uint64_t seq = 0;
  while (!w->cancelled()) {
    auto q = query(w->filter());
    if (q.ok()) {
      std::unordered_map<std::string, ImplInfo> now;
      for (auto& e : q.value()) now.emplace(e.name, e);
      for (auto& [name, info] : now) {
        auto it = known.find(name);
        bool changed =
            it == known.end() ||
            serialize_to_bytes(it->second) != serialize_to_bytes(info);
        if (!changed) continue;
        WatchEvent ev;
        ev.kind = WatchKind::impl_registered;
        ev.seq = ++seq;
        ev.type = info.type;
        ev.name = name;
        ev.info = info;
        w->deliver(ev);
      }
      for (auto& [name, info] : known) {
        if (now.count(name)) continue;
        WatchEvent ev;
        ev.kind = WatchKind::impl_unregistered;
        ev.seq = ++seq;
        ev.type = info.type;
        ev.name = name;
        w->deliver(ev);
      }
      known = std::move(now);
    } else if (q.error().code == Errc::cancelled) {
      break;  // transport closed under us
    }
    // Sleep in small steps so cancel() is honored promptly.
    Deadline next_poll = Deadline::after(opts_.watch_poll);
    while (!next_poll.expired() && !w->cancelled())
      sleep_for(std::min(ms(10), next_poll.remaining()));
  }
  w->cancel();
}

Result<RemoteDiscovery::Rsp> RemoteDiscovery::rpc(const Bytes& request_body) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t req_id = next_req_++;
  Bytes frame = encode_frame(MsgKind::discovery, req_id, request_body);

  for (int attempt = 0; attempt <= opts_.retries; attempt++) {
    BERTHA_TRY(transport_->send_to(server_, frame));
    Deadline dl = Deadline::after(opts_.rpc_timeout);
    for (;;) {
      auto pkt_r = transport_->recv(dl);
      if (!pkt_r.ok()) {
        if (pkt_r.error().code == Errc::timed_out) break;  // retry
        return pkt_r.error();
      }
      auto frame_r = decode_frame(pkt_r.value().payload);
      if (!frame_r.ok() || frame_r.value().kind != MsgKind::discovery)
        continue;
      if (frame_r.value().token != req_id) continue;  // stale response
      auto rsp_r = decode_response(frame_r.value().payload);
      if (!rsp_r.ok()) return rsp_r.error();
      Rsp rsp;
      static_cast<DiscResponse&>(rsp) = std::move(rsp_r).value();
      if (!rsp.success) {
        Errc code = rsp.errc <= static_cast<uint8_t>(Errc::internal)
                        ? static_cast<Errc>(rsp.errc)
                        : Errc::internal;
        return err(code, rsp.error);
      }
      return rsp;
    }
  }
  return err(Errc::unavailable, "discovery service unreachable at " +
                                    server_.to_string());
}

Result<void> RemoteDiscovery::register_impl(const ImplInfo& info) {
  DiscRequest req;
  req.op = DiscOp::register_impl;
  req.entry = info;
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req)));
  (void)rsp;
  return ok();
}

Result<void> RemoteDiscovery::unregister_impl(const std::string& type,
                                              const std::string& name) {
  DiscRequest req;
  req.op = DiscOp::unregister_impl;
  req.type = type;
  req.name = name;
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req)));
  (void)rsp;
  return ok();
}

Result<std::vector<ImplInfo>> RemoteDiscovery::query(const std::string& type) {
  DiscRequest req;
  req.op = DiscOp::query;
  req.type = type;
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req)));
  return std::move(rsp.entries);
}

Result<uint64_t> RemoteDiscovery::acquire(const std::vector<ResourceReq>& reqs) {
  DiscRequest req;
  req.op = DiscOp::acquire;
  req.resources = reqs;
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req)));
  return rsp.alloc_id;
}

Result<void> RemoteDiscovery::release(uint64_t alloc_id) {
  DiscRequest req;
  req.op = DiscOp::release;
  req.alloc_id = alloc_id;
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req)));
  (void)rsp;
  return ok();
}

Result<void> RemoteDiscovery::set_pool(const std::string& pool,
                                       uint64_t capacity) {
  DiscRequest req;
  req.op = DiscOp::set_pool;
  req.type = pool;
  req.capacity = capacity;
  BERTHA_TRY_ASSIGN(rsp, rpc(encode_request(req)));
  (void)rsp;
  return ok();
}

}  // namespace bertha
