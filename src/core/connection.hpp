// Connection: the interface every layer of a chunnel stack implements.
//
// A Connection moves Msgs (datagrams with addressing metadata). Chunnel
// implementations wrap an inner Connection and return a new one — the
// tunnel model from the paper: each layer adds its function on send and
// strips it on recv, transparently to the layers around it.
#pragma once

#include <memory>
#include <span>

#include "net/addr.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"

namespace bertha {

struct Msg {
  Addr src;  // filled on recv
  Addr dst;  // optional on send (base connections have a fixed peer)
  Bytes payload;

  Msg() = default;
  explicit Msg(Bytes p) : payload(std::move(p)) {}
  static Msg of(std::string_view s) { return Msg(to_bytes(s)); }
  std::string payload_str() const { return to_string(payload); }
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Send one message. Datagram semantics: best-effort unless a
  // reliability chunnel is in the stack.
  virtual Result<void> send(Msg m) = 0;

  // Send several messages in one call. Identical semantics to sending
  // each in order; the messages are consumed (moved from). Base
  // connections over a batch-capable transport override this to amortize
  // syscalls (sendmmsg); the default just loops.
  virtual Result<void> send_batch(std::span<Msg> msgs) {
    for (Msg& m : msgs) BERTHA_TRY(send(std::move(m)));
    return ok();
  }

  // Block for the next message until the deadline (timed_out) or close
  // (cancelled / unavailable when the peer went away).
  virtual Result<Msg> recv(Deadline deadline = Deadline::never()) = 0;

  virtual const Addr& local_addr() const = 0;
  virtual const Addr& peer_addr() const = 0;

  // Idempotent. Wakes blocked recv() calls.
  virtual void close() = 0;
};

// Connections are shared: a wrapper holds its inner connection, and
// helper threads (retransmitters, dispatchers) may hold references too.
using ConnPtr = std::shared_ptr<Connection>;

// A pass-through wrapper: forwards everything to the inner connection.
// Chunnel halves that do no work on one side (e.g. the client half of a
// server-side offload) derive from this and override selectively.
class PassthroughConnection : public Connection {
 public:
  explicit PassthroughConnection(ConnPtr inner) : inner_(std::move(inner)) {}

  Result<void> send(Msg m) override { return inner_->send(std::move(m)); }
  Result<void> send_batch(std::span<Msg> msgs) override {
    return inner_->send_batch(msgs);
  }
  Result<Msg> recv(Deadline deadline) override { return inner_->recv(deadline); }
  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 protected:
  const ConnPtr& inner() const { return inner_; }

 private:
  ConnPtr inner_;
};

}  // namespace bertha
