// Implementation-selection policy (paper §4.3).
//
// During negotiation the runtime collects every visible implementation
// of each chunnel type into Candidates and asks the operator-supplied
// Policy to score them. The DefaultPolicy reproduces the paper's
// prototype policy: "prefers client-provided implementations over
// server-provided implementations, and set implementation priorities to
// prefer kernel bypass and hardware accelerated implementations over
// standard implementations."
#pragma once

#include <memory>
#include <string>

#include "core/chunnel.hpp"

namespace bertha {

struct Candidate {
  ImplInfo info;
  bool client_offers = false;    // the connecting client has this factory
  bool server_offers = false;    // the listening server has this factory
  bool network_provided = false; // advertised by the discovery service
};

class Policy {
 public:
  virtual ~Policy() = default;

  // Score a candidate for a chunnel type. Higher wins; a negative score
  // forbids the candidate. Ties are broken deterministically by name.
  virtual int64_t score(const std::string& type, const Candidate& c) const = 0;
};

class DefaultPolicy final : public Policy {
 public:
  int64_t score(const std::string& type, const Candidate& c) const override;
};

// An operator policy that never uses offloads: only candidates that run
// in the application (fallbacks) are allowed. Used by tests and benches
// to force fallback paths.
class SoftwareOnlyPolicy final : public Policy {
 public:
  int64_t score(const std::string& type, const Candidate& c) const override;
};

using PolicyPtr = std::shared_ptr<const Policy>;

}  // namespace bertha
