// Discovery RPC wire types, shared between the single-server datapath
// (DiscoveryServer / RemoteDiscovery) and the replicated control plane
// (src/control/): a replica must decode a client mutation, ship it
// through the partition sequencer, and re-execute it deterministically
// on every group member, so the request/response codec cannot stay an
// implementation detail of discovery.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chunnel.hpp"
#include "trace/trace.hpp"

namespace bertha {

class DiscoveryState;

enum class DiscOp : uint8_t {
  register_impl = 1,
  unregister_impl = 2,
  query = 3,
  acquire = 4,
  release = 5,
  set_pool = 6,
  heartbeat = 7,  // renews every lease held by client_id
};

struct DiscRequest {
  DiscOp op;
  std::string type;
  std::string name;
  std::optional<ImplInfo> entry;
  std::vector<ResourceReq> resources;
  uint64_t alloc_id = 0;
  uint64_t capacity = 0;
  // Fault-tolerance extensions (zero/empty when unused).
  std::string client_id;  // lease owner / dedup namespace
  uint64_t idem_key = 0;  // non-zero: dedupe retries of this mutation
  uint64_t ttl_ms = 0;    // non-zero: lease the registration/allocation
  TraceContext trace;     // optional: caller's span, for server-side spans
};

struct DiscResponse {
  bool success = false;
  uint8_t errc = 0;
  std::string error;
  std::vector<ImplInfo> entries;
  uint64_t alloc_id = 0;
};

Bytes encode_request(const DiscRequest& req);
Result<DiscRequest> decode_request(BytesView b);
Bytes encode_response(const DiscResponse& rsp);
Result<DiscResponse> decode_response(BytesView b);
DiscResponse error_response(const Error& e);
const char* serve_span_name(DiscOp op);

// True for ops that change state (everything but query). Mutations are
// the ops a replica group must sequence; queries serve locally.
inline bool is_mutation(DiscOp op) { return op != DiscOp::query; }

// Executes one decoded request against `state` and builds the wire
// response. `at` is the time basis for lease arithmetic: the serve path
// passes now(); replicated apply passes the op's origin-stamped time so
// every replica computes the identical lease expiry (and therefore the
// identical sweep outcome and watch-event sequence).
DiscResponse execute_request(DiscoveryState& state, const DiscRequest& req,
                             TimePoint at);

}  // namespace bertha
