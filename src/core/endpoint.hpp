// Endpoints, listeners, and connection establishment (paper §3.1, §4).
//
// Endpoint is the Bertha socket equivalent: it pairs a name with a
// Chunnel DAG. A server endpoint listen()s and accept()s negotiated
// connections; a client endpoint connect()s to one server or (for
// chunnels like ordered multicast) to a list of endpoints.
#pragma once

#include <memory>
#include <vector>

#include "core/connection.hpp"
#include "core/negotiation.hpp"
#include "core/runtime.hpp"

namespace bertha {

class Listener;

class Endpoint {
 public:
  Endpoint(std::shared_ptr<Runtime> rt, std::string name,
           std::vector<ChunnelSpec> chain)
      : rt_(std::move(rt)), name_(std::move(name)), chain_(std::move(chain)) {}

  const std::string& name() const { return name_; }
  const std::vector<ChunnelSpec>& chain() const { return chain_; }

  // Server side: bind `addr`, run chunnel on_listen hooks, start
  // demultiplexing. The listener owns the socket; destroy it to stop.
  Result<std::unique_ptr<Listener>> listen(const Addr& addr);

  // Client side: establish a negotiated connection (one Hello/Accept
  // round trip; the server side consults discovery during it).
  Result<ConnPtr> connect(const Addr& server,
                          Deadline deadline = Deadline::never());

  // Multi-endpoint connect (Listing 2: ordered multicast passes the
  // consensus group's addresses). Negotiates with every endpoint over
  // one local transport; send() fans out, recv() returns from any.
  Result<ConnPtr> connect(const std::vector<Addr>& servers,
                          Deadline deadline = Deadline::never());

 private:
  std::shared_ptr<Runtime> rt_;
  std::string name_;
  std::vector<ChunnelSpec> chain_;
};

// Accepts negotiated connections. Thread-safe.
class Listener {
 public:
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // The primary bound address.
  const Addr& addr() const;

  // Next fully-negotiated, chunnel-wrapped connection.
  Result<ConnPtr> accept(Deadline deadline = Deadline::never());

  // Stops demux threads, closes every connection, releases resources.
  void close();

  uint64_t connections_accepted() const;

  // Connections currently bound to degraded chains (negotiated while the
  // discovery service was unreachable, so only local software fallbacks
  // were considered). Drops back to 0 once renegotiation upgrades them.
  uint64_t degraded_connections() const;

  // Entries in the (lock-striped) server connection table. Bounded by
  // the number of live connections plus in-flight transition epochs;
  // returns to zero after every connection closes — the churn regression
  // tests assert exactly that.
  uint64_t connections_live() const;

  class Impl;  // public: constructed via make_shared in Endpoint::listen

 private:
  friend class Endpoint;
  explicit Listener(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

// Builds a chunnel stack around a base connection by instantiating each
// negotiated node from the registry (outermost = chain[0]). A node whose
// factory is absent locally becomes a passthrough — its work happens at
// the other end or in the network. Exposed for chunnel tests.
Result<ConnPtr> build_stack(Runtime& rt,
                            const std::vector<NegotiatedNode>& chain,
                            ConnPtr base, WrapContext base_ctx);

// Per-hop tracing wrappers. build_stack inserts them only when the
// runtime's tracer is enabled at build time, so a disabled tracer costs
// the data path nothing at all. The path wrapper (outermost) starts a
// sampled path.send / path.recv span and installs its context as the
// thread's ambient context; each hop wrapper then records a child span
// for its layer iff an ambient context is active. Exposed for the
// tracing micro-benchmarks. When a HopLatencyStats cell is supplied the
// hop wrapper additionally records every message's latency into the
// lock-free streaming histograms (trace/hop_stats.hpp).
ConnPtr wrap_hop_trace(ConnPtr inner, TracerPtr tracer, std::string hop_name,
                       HopLatencyStats::CellPtr cell = nullptr);
ConnPtr wrap_path_trace(ConnPtr inner, TracerPtr tracer);

}  // namespace bertha
