// Chunnel negotiation (paper §4.3).
//
// At connection establishment the client sends a Hello carrying its
// endpoint name, identity, its (possibly empty) Chunnel DAG and the set
// of implementations it can instantiate ("offers"). The server:
//
//   1. checks DAG compatibility (an empty client DAG adopts the server's,
//      as in Listing 5; otherwise the type sequences must match),
//   2. assembles the candidate implementations for each chunnel type
//      from the client's offers, its own registry, and a discovery query,
//   3. filters by scope constraint and endpoint availability,
//   4. ranks with the operator Policy and reserves resources with the
//      discovery service (first candidate whose requirements fit wins),
//   5. replies Accept with the chosen (type, impl, merged-args) chain and
//      the connection token — or Reject.
//
// Implementations are bound per *connection*: one process may use
// different implementations of the same type on different connections
// (the paper's "Mixed" scenario in Fig 5).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "core/discovery.hpp"
#include "core/optimizer.hpp"
#include "core/policy.hpp"
#include "trace/context.hpp"

namespace bertha {

struct HelloMsg {
  std::string endpoint_name;
  std::string host_id;
  std::string process_id;
  ChunnelDag dag;
  // chunnel type -> implementations the client can instantiate
  std::map<std::string, std::vector<ImplInfo>> offers;
  // Optional: the client's connect-span context, so server-side
  // negotiation spans join the client's trace (src/trace/context.hpp).
  TraceContext trace;
};

// One bound chunnel in the negotiated stack. Outermost first.
struct NegotiatedNode {
  std::string type;
  std::string impl_name;
  ChunnelArgs args;  // app args + impl props + server advertisements

  bool operator==(const NegotiatedNode& o) const {
    return type == o.type && impl_name == o.impl_name && args == o.args;
  }
};

// In the header (not negotiation.cpp) because transition messages
// (core/renegotiation.hpp) embed negotiated chains too.
template <>
struct Serde<NegotiatedNode> {
  static void put(Writer& w, const NegotiatedNode& n) {
    w.put_string(n.type);
    w.put_string(n.impl_name);
    serde_put(w, n.args);
  }
  static Result<NegotiatedNode> get(Reader& r) {
    NegotiatedNode n;
    BERTHA_TRY_ASSIGN(type, r.get_string());
    BERTHA_TRY_ASSIGN(name, r.get_string());
    BERTHA_TRY_ASSIGN(args, serde_get<ChunnelArgs>(r));
    n.type = std::move(type);
    n.impl_name = std::move(name);
    n.args = std::move(args);
    return n;
  }
};

struct AcceptMsg {
  uint64_t token = 0;
  std::string host_id;     // server's
  std::string process_id;  // server's
  std::vector<NegotiatedNode> chain;
  // Chain attestation (paper §6 "Deployment Concerns"): a keyed digest
  // over the canonical encoding of `chain`, computed with the
  // deployment's shared attestation secret. A client configured with a
  // secret refuses connections whose digest does not verify — a
  // lightweight stand-in for the program-attestation schemes the paper
  // cites (full remote attestation of switch/FPGA programs is open
  // research). 0 = unattested.
  uint64_t chain_digest = 0;
};

// Keyed digest over a negotiated chain. NOT a cryptographic MAC (the
// hash is FNV-based); it models the attestation handshake's structure,
// catching misconfiguration and accidental tampering, not adversaries.
uint64_t attest_chain(const std::vector<NegotiatedNode>& chain,
                      const std::string& secret);

struct RejectMsg {
  uint8_t errc = 0;
  std::string reason;
};

Bytes encode_hello(const HelloMsg& m);
Result<HelloMsg> decode_hello(BytesView b);
Bytes encode_accept(const AcceptMsg& m);
Result<AcceptMsg> decode_accept(BytesView b);
Bytes encode_reject(const RejectMsg& m);
Result<RejectMsg> decode_reject(BytesView b);

struct NegotiationResult {
  std::vector<NegotiatedNode> chain;
  std::vector<uint64_t> resource_allocs;  // to release on connection close
  // Parallel to resource_allocs: the chain position each allocation was
  // reserved for. Live renegotiation needs this to carry an incumbent
  // node's slot across a transition while retiring a replaced node's.
  std::vector<size_t> alloc_nodes;
  // True when selection ran without a reachable discovery service (cached
  // or local-fallback catalogue). The connection should be upgraded by a
  // full renegotiation once the service returns.
  bool degraded = false;
};

// Post-binding stage description (§6 "StageInfo"): the bound chain with
// each node's optimizer-relevant props parsed out of its merged args.
// This is the contract between negotiation, the DAG optimizer, and the
// offload synthesizer (src/synth/): anything that wants to reason about
// a negotiated pipeline — cost it, reorder it, or compile a prefix of it
// into a switch program — consumes this list instead of re-parsing args.
struct StageInfo {
  std::string type;
  std::string impl_name;
  ChunnelArgs args;  // the merged args the implementation was bound with
  OptStage opt;      // offloadable / size_factor / commutes_with
};

std::vector<StageInfo> describe_stages(
    const std::vector<NegotiatedNode>& chain);

// Server-side selection. `advertisements` are per-type args contributed
// by chunnel on_listen() hooks (e.g. the fast path's unix socket addr).
// When `optimizer` is non-null the §6 DAG rewrites run after a first
// tentative binding: stages are described by the chosen implementations'
// props ("offloadable", "commutes_with", "size_factor"), the optimizer
// proposes a reorder/merge, and the rewritten chain is re-bound — kept
// only if every rewritten node still has a usable implementation.
// On failure any reserved resources have been released.
Result<NegotiationResult> negotiate_server(
    const std::vector<ChunnelSpec>& server_chain, const HelloMsg& hello,
    const Registry& registry, DiscoveryClient& discovery, const Policy& policy,
    const std::map<std::string, ChunnelArgs>& advertisements,
    const std::string& server_host_id, const DagOptimizer* optimizer = nullptr);

// --- Live renegotiation (core/renegotiation.hpp) ---

// A resource allocation pinned to one position of a negotiated chain.
struct NodeAlloc {
  size_t node = 0;       // index into the chain
  uint64_t alloc_id = 0;
};

struct RenegotiationResult {
  std::vector<NegotiatedNode> chain;
  bool changed = false;                  // any position re-bound?
  std::vector<NodeAlloc> kept_allocs;    // incumbent slots carried over
  std::vector<NodeAlloc> new_allocs;     // reserved here for new nodes
  // Slots held by replaced nodes. The caller MUST NOT release these until
  // the old chain has drained (the drain-before-release invariant).
  std::vector<uint64_t> retired_allocs;
  // See NegotiationResult::degraded.
  bool degraded = false;
};

// Re-runs selection for an *established* connection. Unlike
// negotiate_server this is incumbent-aware: at each position the current
// implementation is kept — without re-acquiring resources it already
// holds (a naive re-run would evict the connection from its own slot) —
// unless a strictly higher-ranked candidate is usable. `banned`
// (type, impl name) pairs are excluded outright, which is how revocation
// forces a fallback even while the registry still has the factory.
// `current_allocs` are the connection's live reservations by chain
// position.
//
// Optimizer-rewritten pipelines: without `optimizer`, a current chain
// whose types no longer match `server_chain` positionally returns
// unchanged (the pre-synthesis limitation). With `optimizer`, selection
// falls back to specs derived from the *current* chain (so a rewritten
// pipeline can still swap implementations position by position), and
// after selection the §6 optimizer re-runs over the candidate chain: if
// it proposes a different stage sequence (e.g. a merged offload became
// available mid-life, or a synthesized program subsumes a prefix), the
// staged chain is rewritten before the offer goes out. Reservations
// acquired for stages the rewrite drops are released immediately
// (superseded — they never carried traffic); incumbent slots of dropped
// stages are retired under the drain-before-release invariant. On
// error, any newly-acquired slots have been released.
Result<RenegotiationResult> renegotiate_server(
    const std::vector<ChunnelSpec>& server_chain,
    const std::vector<NegotiatedNode>& current,
    const std::vector<NodeAlloc>& current_allocs, const HelloMsg& hello,
    const Registry& registry, DiscoveryClient& discovery, const Policy& policy,
    const std::map<std::string, ChunnelArgs>& advertisements,
    const std::string& server_host_id,
    const std::vector<std::pair<std::string, std::string>>& banned = {},
    const DagOptimizer* optimizer = nullptr);

// Pure candidate assembly/filter/rank (exposed for tests and the
// scheduling bench): returns candidates for one node ordered best-first.
std::vector<Candidate> rank_candidates(
    const ChunnelSpec& spec,
    const std::vector<ImplInfo>& client_offered,
    const std::vector<ImplInfo>& server_registered,
    const std::vector<ImplInfo>& network_entries, const Policy& policy,
    bool same_host);

}  // namespace bertha
