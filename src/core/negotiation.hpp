// Chunnel negotiation (paper §4.3).
//
// At connection establishment the client sends a Hello carrying its
// endpoint name, identity, its (possibly empty) Chunnel DAG and the set
// of implementations it can instantiate ("offers"). The server:
//
//   1. checks DAG compatibility (an empty client DAG adopts the server's,
//      as in Listing 5; otherwise the type sequences must match),
//   2. assembles the candidate implementations for each chunnel type
//      from the client's offers, its own registry, and a discovery query,
//   3. filters by scope constraint and endpoint availability,
//   4. ranks with the operator Policy and reserves resources with the
//      discovery service (first candidate whose requirements fit wins),
//   5. replies Accept with the chosen (type, impl, merged-args) chain and
//      the connection token — or Reject.
//
// Implementations are bound per *connection*: one process may use
// different implementations of the same type on different connections
// (the paper's "Mixed" scenario in Fig 5).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "core/discovery.hpp"
#include "core/optimizer.hpp"
#include "core/policy.hpp"

namespace bertha {

struct HelloMsg {
  std::string endpoint_name;
  std::string host_id;
  std::string process_id;
  ChunnelDag dag;
  // chunnel type -> implementations the client can instantiate
  std::map<std::string, std::vector<ImplInfo>> offers;
};

// One bound chunnel in the negotiated stack. Outermost first.
struct NegotiatedNode {
  std::string type;
  std::string impl_name;
  ChunnelArgs args;  // app args + impl props + server advertisements

  bool operator==(const NegotiatedNode& o) const {
    return type == o.type && impl_name == o.impl_name && args == o.args;
  }
};

struct AcceptMsg {
  uint64_t token = 0;
  std::string host_id;     // server's
  std::string process_id;  // server's
  std::vector<NegotiatedNode> chain;
  // Chain attestation (paper §6 "Deployment Concerns"): a keyed digest
  // over the canonical encoding of `chain`, computed with the
  // deployment's shared attestation secret. A client configured with a
  // secret refuses connections whose digest does not verify — a
  // lightweight stand-in for the program-attestation schemes the paper
  // cites (full remote attestation of switch/FPGA programs is open
  // research). 0 = unattested.
  uint64_t chain_digest = 0;
};

// Keyed digest over a negotiated chain. NOT a cryptographic MAC (the
// hash is FNV-based); it models the attestation handshake's structure,
// catching misconfiguration and accidental tampering, not adversaries.
uint64_t attest_chain(const std::vector<NegotiatedNode>& chain,
                      const std::string& secret);

struct RejectMsg {
  uint8_t errc = 0;
  std::string reason;
};

Bytes encode_hello(const HelloMsg& m);
Result<HelloMsg> decode_hello(BytesView b);
Bytes encode_accept(const AcceptMsg& m);
Result<AcceptMsg> decode_accept(BytesView b);
Bytes encode_reject(const RejectMsg& m);
Result<RejectMsg> decode_reject(BytesView b);

struct NegotiationResult {
  std::vector<NegotiatedNode> chain;
  std::vector<uint64_t> resource_allocs;  // to release on connection close
};

// Server-side selection. `advertisements` are per-type args contributed
// by chunnel on_listen() hooks (e.g. the fast path's unix socket addr).
// When `optimizer` is non-null the §6 DAG rewrites run after a first
// tentative binding: stages are described by the chosen implementations'
// props ("offloadable", "commutes_with", "size_factor"), the optimizer
// proposes a reorder/merge, and the rewritten chain is re-bound — kept
// only if every rewritten node still has a usable implementation.
// On failure any reserved resources have been released.
Result<NegotiationResult> negotiate_server(
    const std::vector<ChunnelSpec>& server_chain, const HelloMsg& hello,
    const Registry& registry, DiscoveryClient& discovery, const Policy& policy,
    const std::map<std::string, ChunnelArgs>& advertisements,
    const std::string& server_host_id, const DagOptimizer* optimizer = nullptr);

// Pure candidate assembly/filter/rank (exposed for tests and the
// scheduling bench): returns candidates for one node ordered best-first.
std::vector<Candidate> rank_candidates(
    const ChunnelSpec& spec,
    const std::vector<ImplInfo>& client_offered,
    const std::vector<ImplInfo>& server_registered,
    const std::vector<ImplInfo>& network_entries, const Policy& policy,
    bool same_host);

}  // namespace bertha
