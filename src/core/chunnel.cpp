#include "core/chunnel.hpp"

#include <charconv>

namespace bertha {

std::string_view scope_name(Scope s) {
  switch (s) {
    case Scope::application: return "application";
    case Scope::host: return "host";
    case Scope::rack: return "rack";
    case Scope::global: return "global";
  }
  return "?";
}

std::string_view endpoint_constraint_name(EndpointConstraint e) {
  switch (e) {
    case EndpointConstraint::client: return "client";
    case EndpointConstraint::server: return "server";
    case EndpointConstraint::both: return "both";
  }
  return "?";
}

Result<std::string> ChunnelArgs::get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end())
    return err(Errc::not_found, "missing chunnel arg: " + key);
  return it->second;
}

Result<uint64_t> ChunnelArgs::get_u64(const std::string& key) const {
  BERTHA_TRY_ASSIGN(s, get(key));
  uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size())
    return err(Errc::invalid_argument, "chunnel arg not a u64: " + key + "=" + s);
  return v;
}

std::string ChunnelArgs::get_or(const std::string& key,
                                std::string fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? std::move(fallback) : it->second;
}

uint64_t ChunnelArgs::get_u64_or(const std::string& key, uint64_t fallback) const {
  auto r = get_u64(key);
  return r.ok() ? r.value() : fallback;
}

ChunnelArgs ChunnelArgs::merged_with(const ChunnelArgs& other) const {
  std::map<std::string, std::string> merged = kv_;
  for (const auto& [k, v] : other.kv_) merged[k] = v;
  return ChunnelArgs(std::move(merged));
}

}  // namespace bertha
