#include "core/renegotiation.hpp"

#include <algorithm>
#include <map>

#include "trace/metrics.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace bertha {

uint64_t mint_epoch_salt(std::string_view server_identity) {
  return mix64(fnv1a64(server_identity)) << kEpochCounterBits;
}

// --- message serde ---

Bytes encode_transition(const TransitionMsg& m) {
  Writer w;
  w.put_varint(m.epoch);
  w.put_varint(m.new_token);
  w.put_u8(static_cast<uint8_t>(m.reason));
  w.put_bool(m.mandatory);
  serde_put(w, m.chain);
  w.put_varint(m.chain_digest);
  put_trace_context(w, m.trace);
  return std::move(w).take();
}

Result<TransitionMsg> decode_transition(BytesView b) {
  Reader r(b);
  TransitionMsg m;
  BERTHA_TRY_ASSIGN(epoch, r.get_varint());
  BERTHA_TRY_ASSIGN(tok, r.get_varint());
  BERTHA_TRY_ASSIGN(reason, r.get_u8());
  if (reason < 1 || reason > 3)
    return err(Errc::protocol_error, "bad transition reason");
  BERTHA_TRY_ASSIGN(mandatory, r.get_bool());
  BERTHA_TRY_ASSIGN(chain, serde_get<std::vector<NegotiatedNode>>(r));
  BERTHA_TRY_ASSIGN(digest, r.get_varint());
  m.epoch = epoch;
  m.new_token = tok;
  m.reason = static_cast<TransitionReason>(reason);
  m.mandatory = mandatory;
  m.chain = std::move(chain);
  m.chain_digest = digest;
  m.trace = read_trace_context_tail(r);
  return m;
}

Bytes encode_transition_ack(const TransitionAckMsg& m) {
  Writer w;
  w.put_varint(m.epoch);
  w.put_bool(m.accepted);
  w.put_u8(m.errc);
  w.put_string(m.reason);
  return std::move(w).take();
}

Result<TransitionAckMsg> decode_transition_ack(BytesView b) {
  Reader r(b);
  TransitionAckMsg m;
  BERTHA_TRY_ASSIGN(epoch, r.get_varint());
  BERTHA_TRY_ASSIGN(accepted, r.get_bool());
  BERTHA_TRY_ASSIGN(ec, r.get_u8());
  BERTHA_TRY_ASSIGN(reason, r.get_string());
  m.epoch = epoch;
  m.accepted = accepted;
  m.errc = ec;
  m.reason = std::move(reason);
  return m;
}

Bytes encode_transition_cancel(const TransitionCancelMsg& m) {
  Writer w;
  w.put_varint(m.epoch);
  put_trace_context(w, m.trace);
  return std::move(w).take();
}

Result<TransitionCancelMsg> decode_transition_cancel(BytesView b) {
  Reader r(b);
  TransitionCancelMsg m;
  BERTHA_TRY_ASSIGN(epoch, r.get_varint());
  m.epoch = epoch;
  m.trace = read_trace_context_tail(r);
  return m;
}

// --- TransitionableConnection ---

TransitionableConnection::TransitionableConnection(
    ConnPtr initial, std::vector<NegotiatedNode> chain, bool external_cutover,
    TransitionTuning tuning, StatsSinkPtr stats)
    : external_cutover_(external_cutover),
      tuning_(tuning),
      stats_(std::move(stats)),
      cur_(std::move(initial)),
      chain_(std::move(chain)) {}

TransitionableConnection::~TransitionableConnection() { close(); }

Result<void> TransitionableConnection::send(Msg m) {
  ConnPtr cur;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return err(Errc::cancelled, "connection closed");
    cur = cur_;
  }
  return cur->send(std::move(m));
}

Result<Msg> TransitionableConnection::recv(Deadline deadline) {
  for (;;) {
    ConnPtr cur, old;
    Deadline drain_dl = Deadline::never();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      cur = cur_;
      old = old_;
      drain_dl = drain_deadline_;
    }

    if (old) {
      // Draining: alternate between the old chain (which still carries
      // in-flight pre-cutover messages) and the new one at a fine slice.
      auto r = old->recv(Deadline::after(tuning_.drain_slice));
      if (r.ok()) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          drained_++;
          drained_total_++;
        }
        return r;
      }
      if (r.error().code != Errc::timed_out) {
        finish_drain(false);  // old chain reports end-of-stream
      } else if (drain_dl.expired()) {
        finish_drain(true);
      }
      Duration slice = tuning_.drain_slice;
      if (!deadline.is_never() && deadline.remaining() < slice)
        slice = deadline.remaining();
      auto r2 = cur->recv(Deadline::after(slice));
      if (r2.ok()) return r2;
      if (r2.error().code != Errc::timed_out) {
        std::lock_guard<std::mutex> lk(mu_);
        if (cur_ == cur && !closed_) return r2;  // genuine error
        continue;                                // swapped under us; retry
      }
      if (deadline.expired())
        return err(Errc::timed_out, "recv deadline expired");
      continue;
    }

    // Idle path. Server-side cutovers arrive from the demux thread while
    // we may be blocked here, so slice the wait; the client swaps on this
    // very thread (the transition handler runs inside cur->recv) and can
    // pass the caller's deadline straight through.
    Deadline slice = deadline;
    if (external_cutover_ &&
        (deadline.is_never() || deadline.remaining() > tuning_.idle_slice))
      slice = Deadline::after(tuning_.idle_slice);
    auto r = cur->recv(slice);
    if (r.ok()) return r;
    if (r.error().code == Errc::timed_out) {
      if (deadline.expired())
        return err(Errc::timed_out, "recv deadline expired");
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!closed_ && (cur_ != cur || old_ != nullptr))
        continue;  // a cutover raced the error; re-evaluate
    }
    return r;
  }
}

const Addr& TransitionableConnection::local_addr() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cur_->local_addr();
}

const Addr& TransitionableConnection::peer_addr() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cur_->peer_addr();
}

void TransitionableConnection::close() {
  ConnPtr cur, old;
  std::function<void(bool, uint64_t)> cb;
  uint64_t drained;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return;
    closed_ = true;
    cur = std::move(cur_);
    old = std::move(old_);
    cb = std::move(on_drained_);
    drained = drained_;
    cur_ = cur;  // keep non-null for local_addr()/peer_addr()
  }
  if (cb) cb(true, drained);
  if (old) old->close();
  if (cur) cur->close();
}

Result<void> TransitionableConnection::cutover(
    uint64_t epoch, ConnPtr next, std::vector<NegotiatedNode> new_chain,
    std::function<void(bool, uint64_t)> on_drained) {
  if (!next) return err(Errc::invalid_argument, "null next stack");
  // A transition arriving while the previous drain is still open forces
  // the previous one closed first (epochs are serialized by the server,
  // so this only happens when drains outlast the offer cadence).
  force_drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return err(Errc::cancelled, "connection closed");
    if (epoch <= epoch_ && epoch_ != 0)
      return err(Errc::invalid_argument, "stale transition epoch");
    old_ = std::move(cur_);
    cur_ = std::move(next);
    prev_chain_ = std::move(chain_);
    prev_epoch_ = epoch_;
    chain_ = std::move(new_chain);
    epoch_ = epoch;
    drain_deadline_ = Deadline::after(tuning_.drain_timeout);
    on_drained_ = std::move(on_drained);
    drained_ = 0;
  }
  return ok();
}

Result<void> TransitionableConnection::revert(uint64_t epoch) {
  ConnPtr aborted;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return err(Errc::cancelled, "connection closed");
    if (epoch_ != epoch)
      return err(Errc::invalid_argument, "revert epoch mismatch");
    if (!old_)
      return err(Errc::not_found,
                 "previous stack already drained; cannot revert");
    aborted = std::move(cur_);
    cur_ = std::move(old_);
    old_ = nullptr;
    chain_ = std::move(prev_chain_);
    epoch_ = prev_epoch_;
    prev_chain_.clear();
    drain_deadline_ = Deadline::never();
    on_drained_ = nullptr;
    drained_ = 0;
  }
  if (stats_) stats_->update([](TransitionStats& s) { s.reverts++; });
  aborted->close();
  return ok();
}

void TransitionableConnection::force_drain() {
  bool doit;
  {
    std::lock_guard<std::mutex> lk(mu_);
    doit = old_ != nullptr;
  }
  if (doit) finish_drain(true);
}

void TransitionableConnection::finish_drain(bool forced) {
  ConnPtr old;
  std::function<void(bool, uint64_t)> cb;
  uint64_t drained;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!old_) return;  // someone else finished it
    old = std::move(old_);
    old_ = nullptr;
    cb = std::move(on_drained_);
    on_drained_ = nullptr;
    drained = drained_;
  }
  // Callback before closing the old stack: the server-side callback
  // erases transition records and releases retired slots, and the old
  // stack's close() sends the old token's fin through the normal path.
  if (cb) cb(forced, drained);
  old->close();
}

uint64_t TransitionableConnection::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::vector<NegotiatedNode> TransitionableConnection::chain() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chain_;
}

bool TransitionableConnection::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return old_ != nullptr;
}

uint64_t TransitionableConnection::drained_msgs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drained_total_;
}

void attach_transition_stats_provider(
    MetricsRegistry& m, std::shared_ptr<TransitionStatsSink> sink) {
  if (!sink) return;
  m.attach_provider("transition_stats",
                    [sink](MetricsRegistry::Snapshot& snap) {
    TransitionStats s = sink->snapshot();
    auto& c = snap.counters;
    c["transition.watch_events"] = s.watch_events;
    c["transition.watch_batches"] = s.watch_batches;
    c["transition.upgrade_runs"] = s.upgrade_runs;
    c["transition.dead_epoch_closes"] = s.dead_epoch_closes;
    c["transition.offers_sent"] = s.offers_sent;
    c["transition.completed"] = s.completed;
    c["transition.declined"] = s.declined;
    c["transition.rolled_back"] = s.rolled_back;
    c["transition.forced_cutovers"] = s.forced_cutovers;
    c["transition.closed_mandatory"] = s.closed_mandatory;
    c["transition.cancels_sent"] = s.cancels_sent;
    c["transition.reverts"] = s.reverts;
    c["transition.drained_msgs"] = s.drained_msgs;
    snap.gauges["transition.max_cutover_ns"] =
        static_cast<double>(s.max_cutover_ns);
    snap.gauges["transition.mean_cutover_ns"] =
        s.completed ? static_cast<double>(s.total_cutover_ns) /
                          static_cast<double>(s.completed)
                    : 0.0;
  });
}

// --- TransitionController ---

TransitionController::TransitionController(TransitionTuning tuning,
                                           TracerPtr tracer)
    : tuning_(tuning),
      sink_(std::make_shared<TransitionStatsSink>()),
      tracer_(std::move(tracer)) {}

TransitionController::~TransitionController() { stop(); }

void TransitionController::attach(std::shared_ptr<TransitionHost> host) {
  if (!host) return;
  host->bind_stats(sink_);
  std::lock_guard<std::mutex> lk(mu_);
  hosts_.push_back(host);
}

std::vector<std::shared_ptr<TransitionHost>> TransitionController::hosts() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<TransitionHost>> out;
  size_t live = 0;
  for (auto& w : hosts_) {
    if (auto sp = w.lock()) {
      hosts_[live++] = w;
      out.push_back(std::move(sp));
    }
  }
  hosts_.resize(live);
  return out;
}

Result<void> TransitionController::start(DiscoveryClient& discovery) {
  // Some clients can't watch everything (RemoteDiscovery needs a type
  // filter); without a watcher the controller still sweeps deadlines and
  // serves explicit renegotiate_all()/revoke_impl() calls.
  WatcherPtr w;
  auto w_r = discovery.watch("");
  if (w_r.ok()) {
    w = std::move(w_r).value();
  } else {
    BLOG(info, "transition") << "discovery watch unavailable ("
                             << w_r.error().to_string()
                             << "); sweeping without watch events";
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) {
    if (w) w->cancel();
    return err(Errc::already_exists, "transition controller already running");
  }
  watcher_ = std::move(w);
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
  return ok();
}

void TransitionController::stop() {
  std::thread t;
  WatcherPtr w;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    running_ = false;
    w = std::move(watcher_);
    t = std::move(thread_);
  }
  if (w) w->cancel();
  if (t.joinable()) t.join();
}

bool TransitionController::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

void TransitionController::run_loop() {
  for (;;) {
    WatcherPtr w;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
      w = watcher_;
    }
    if (w) {
      auto ev = w->next_batch(Deadline::after(tuning_.sweep_period));
      if (ev.ok()) {
        // Fold queued-up batches in too (concurrent registrations that
        // missed the server's coalescing window): the whole burst is one
        // unit — one negotiation re-run, however many events arrived.
        std::vector<WatchEvent> events = std::move(ev).value();
        while (auto more = w->try_next_batch())
          events.insert(events.end(), std::make_move_iterator(more->begin()),
                        std::make_move_iterator(more->end()));
        handle_batch(events);
      } else if (ev.error().code == Errc::cancelled) {
        // Watch source gone (or stop()); keep sweeping if still running.
        std::lock_guard<std::mutex> lk(mu_);
        if (!running_) return;
        watcher_ = nullptr;
      }
    } else {
      sleep_for(tuning_.sweep_period);
    }
    poll();
  }
}

void TransitionController::poll() {
  for (auto& h : hosts()) h->sweep_transitions();
}

void TransitionController::handle_batch(const std::vector<WatchEvent>& events) {
  if (events.empty()) return;
  Span batch_span = trace_span(tracer_, "controller.watch_batch");
  batch_span.tag_u64("events", events.size());
  SpanScope scope(batch_span);  // transitions started below join this trace
  sink_->update([&](TransitionStats& s) {
    s.watch_events += events.size();
    s.watch_batches++;
  });
  // Net out the burst: the last impl event per (type, name) wins, so a
  // register+unregister pair inside one batch acts as the unregister and
  // an operator loading a whole offload catalogue costs one selection
  // re-run instead of one per entry.
  bool any_upgrade = false;
  bool refresh = false;
  std::map<std::pair<std::string, std::string>, WatchKind> net;
  for (const auto& ev : events) {
    if (ev.kind == WatchKind::pool_freed) {
      any_upgrade = true;
      continue;
    }
    net[{ev.type, ev.name}] = ev.kind;
  }
  std::vector<std::pair<std::string, std::string>> revoked;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [key, kind] : net) {
      if (kind == WatchKind::impl_registered) {
        // Re-registration lifts a standing ban.
        bans_.erase(std::remove_if(bans_.begin(), bans_.end(),
                                   [&key = key](const auto& b) {
                                     return b == key;
                                   }),
                    bans_.end());
        any_upgrade = true;
        refresh = true;
      } else {
        bans_.push_back(key);
        revoked.push_back(key);
      }
    }
  }
  if (refresh)
    for (auto& h : hosts()) h->refresh_advertisements();
  // Revocations first (mandatory, per impl) so affected connections are
  // forced off the vanished impls before the opportunistic upgrade pass
  // finds them busy.
  for (const auto& [type, name] : revoked)
    trigger(TransitionReason::revocation, /*mandatory=*/true,
            /*use_filter=*/true, type, name);
  if (any_upgrade) {
    sink_->update([](TransitionStats& s) { s.upgrade_runs++; });
    trigger(TransitionReason::upgrade, /*mandatory=*/false,
            /*use_filter=*/false, "", "");
  }
}

uint64_t TransitionController::trigger(TransitionReason reason, bool mandatory,
                                       bool use_filter, const std::string& type,
                                       const std::string& name) {
  std::vector<std::pair<std::string, std::string>> bans;
  {
    std::lock_guard<std::mutex> lk(mu_);
    bans = bans_;
  }
  uint64_t started = 0;
  for (auto& h : hosts()) {
    for (const auto& c : h->live_connections()) {
      if (use_filter) {
        bool uses = false;
        for (const auto& n : c.chain)
          uses |= n.type == type && n.impl_name == name;
        if (!uses) continue;
      }
      auto r = h->begin_transition(c.token, reason, bans, mandatory);
      if (r.ok() && r.value() == TransitionHost::Begin::started) started++;
    }
  }
  return started;
}

uint64_t TransitionController::renegotiate_all(TransitionReason reason) {
  for (auto& h : hosts()) h->refresh_advertisements();
  return trigger(reason, /*mandatory=*/false, /*use_filter=*/false, "", "");
}

uint64_t TransitionController::revoke_impl(DiscoveryClient& discovery,
                                           const std::string& type,
                                           const std::string& name) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    bans_.emplace_back(type, name);
  }
  // Trigger before unregistering: fallback starts while the impl is
  // still advertised, and the count reflects this call rather than
  // racing the watch thread (unregister_impl emits impl_unregistered,
  // whose trigger then finds the same connections busy and no-ops).
  uint64_t started = trigger(TransitionReason::revocation, /*mandatory=*/true,
                             /*use_filter=*/true, type, name);
  (void)discovery.unregister_impl(type, name);
  return started;
}

}  // namespace bertha
