// Discovery (paper §4.2).
//
// Two related pieces:
//
//  * Registry — the per-process table of chunnel implementation
//    *factories* (code this process can instantiate). Applications
//    register fallbacks at launch (Listing 5 line 2); chunnel libraries
//    register their accelerated variants.
//
//  * The Bertha discovery service — tracks which implementations are
//    available *in the deployment* (including network offloads this
//    process didn't register) and owns resource pools (switch slots,
//    NIC engines). The runtime queries it during connection
//    establishment; this is one of the two extra round trips Fig 3
//    measures when it runs as a real server (DiscoveryServer /
//    RemoteDiscovery below).
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/chunnel.hpp"
#include "net/transport.hpp"

namespace bertha {

// --- Local factory registry ---

class Registry {
 public:
  // Registers (and init()s) an implementation factory. Fails with
  // already_exists on a duplicate (type, name).
  Result<void> register_impl(ChunnelImplPtr impl);
  Result<void> unregister_impl(const std::string& type, const std::string& name);

  // Factory lookup for stack construction; not_found if this process
  // cannot instantiate (type, name).
  Result<ChunnelImplPtr> lookup(const std::string& type,
                                const std::string& name) const;
  std::vector<ChunnelImplPtr> lookup_type(const std::string& type) const;
  std::vector<ImplInfo> infos_for(const std::string& type) const;
  std::vector<std::string> types() const;
  bool has(const std::string& type, const std::string& name) const;

 private:
  mutable std::mutex mu_;
  // type -> (name -> impl)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, ChunnelImplPtr>>
      impls_;
};

// --- Discovery service interface ---

// Uniform client view of the discovery service; LocalDiscovery calls a
// shared in-process state, RemoteDiscovery speaks the wire protocol.
class DiscoveryClient {
 public:
  virtual ~DiscoveryClient() = default;

  virtual Result<void> register_impl(const ImplInfo& info) = 0;
  virtual Result<void> unregister_impl(const std::string& type,
                                       const std::string& name) = 0;
  // All implementations known for a chunnel type.
  virtual Result<std::vector<ImplInfo>> query(const std::string& type) = 0;

  // Multi-resource admission (§6): atomically reserve every requirement
  // or fail with resource_exhausted. Returns an allocation id.
  virtual Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) = 0;
  virtual Result<void> release(uint64_t alloc_id) = 0;

  // Operator action: create/update a capacity pool.
  virtual Result<void> set_pool(const std::string& pool, uint64_t capacity) = 0;
};

// In-process discovery state; also the backing store for DiscoveryServer.
class DiscoveryState final : public DiscoveryClient {
 public:
  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;

  // Introspection for tests and the scheduling bench.
  uint64_t pool_in_use(const std::string& pool) const;
  uint64_t pool_capacity(const std::string& pool) const;

 private:
  struct Pool {
    uint64_t capacity = 0;
    uint64_t used = 0;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<ImplInfo>> entries_;
  std::unordered_map<std::string, Pool> pools_;
  std::unordered_map<uint64_t, std::vector<ResourceReq>> allocs_;
  uint64_t next_alloc_ = 1;
};

using DiscoveryPtr = std::shared_ptr<DiscoveryClient>;

// --- Wire protocol ---

// A DiscoveryServer answers RemoteDiscovery requests over any Transport
// (typically a unix socket: the service is host-local in our
// deployments, like the prototype's burrito-discovery daemon).
class DiscoveryServer {
 public:
  // Takes ownership of the transport; serves until destroyed.
  DiscoveryServer(TransportPtr transport, std::shared_ptr<DiscoveryState> state);
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  const Addr& addr() const { return addr_; }
  uint64_t requests_served() const;

 private:
  void serve_loop();

  std::shared_ptr<Transport> transport_;
  std::shared_ptr<DiscoveryState> state_;
  Addr addr_;
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  std::thread thread_;
};

// Speaks the discovery protocol over a datagram transport with
// request/response matching, timeout and retry.
class RemoteDiscovery final : public DiscoveryClient {
 public:
  struct Options {
    Duration rpc_timeout = ms(500);
    int retries = 3;
  };

  // `transport` is a bound client endpoint used solely for discovery RPCs.
  RemoteDiscovery(TransportPtr transport, Addr server, Options opts);
  RemoteDiscovery(TransportPtr transport, Addr server)
      : RemoteDiscovery(std::move(transport), std::move(server), Options{}) {}
  ~RemoteDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;

 private:
  struct Rsp;
  Result<Rsp> rpc(const Bytes& request_body);

  std::mutex mu_;  // one RPC at a time per client
  TransportPtr transport_;
  Addr server_;
  Options opts_;
  uint64_t next_req_ = 1;
};

}  // namespace bertha
