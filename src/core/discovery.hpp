// Discovery (paper §4.2).
//
// Two related pieces:
//
//  * Registry — the per-process table of chunnel implementation
//    *factories* (code this process can instantiate). Applications
//    register fallbacks at launch (Listing 5 line 2); chunnel libraries
//    register their accelerated variants.
//
//  * The Bertha discovery service — tracks which implementations are
//    available *in the deployment* (including network offloads this
//    process didn't register) and owns resource pools (switch slots,
//    NIC engines). The runtime queries it during connection
//    establishment; this is one of the two extra round trips Fig 3
//    measures when it runs as a real server (DiscoveryServer /
//    RemoteDiscovery below).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/chunnel.hpp"
#include "net/transport.hpp"
#include "util/backoff.hpp"
#include "util/queue.hpp"
#include "util/stats.hpp"

namespace bertha {

// --- Local factory registry ---

class Registry {
 public:
  // Registers (and init()s) an implementation factory. Fails with
  // already_exists on a duplicate (type, name).
  Result<void> register_impl(ChunnelImplPtr impl);
  Result<void> unregister_impl(const std::string& type, const std::string& name);

  // Factory lookup for stack construction; not_found if this process
  // cannot instantiate (type, name).
  Result<ChunnelImplPtr> lookup(const std::string& type,
                                const std::string& name) const;
  std::vector<ChunnelImplPtr> lookup_type(const std::string& type) const;
  std::vector<ImplInfo> infos_for(const std::string& type) const;
  std::vector<std::string> types() const;
  bool has(const std::string& type, const std::string& name) const;

 private:
  mutable std::mutex mu_;
  // type -> (name -> impl)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, ChunnelImplPtr>>
      impls_;
};

// --- Watch API ---
//
// The live-renegotiation subsystem (core/renegotiation.hpp) needs to
// *notice* deployment changes — an offload registering, a registration
// being revoked, a resource slot coming free — without polling the whole
// table. Watchers are bounded queues of WatchEvents; a slow consumer
// drops events (and counts them) rather than blocking the service.

enum class WatchKind : uint8_t {
  impl_registered = 1,    // new impl, or metadata update of an existing one
  impl_unregistered = 2,  // registration revoked
  pool_freed = 3,         // capacity released into a resource pool
};

struct WatchEvent {
  WatchKind kind{};
  // Per-source total order. Events from one DiscoveryState carry strictly
  // increasing seq; a gap at the consumer means the watcher dropped.
  uint64_t seq = 0;
  std::string type;              // impl events: chunnel type
  std::string name;              // impl events: impl name
  std::optional<ImplInfo> info;  // impl_registered: the registered entry
  std::string pool;              // pool_freed: pool name
  uint64_t available = 0;        // pool_freed: free capacity afterwards
};

// Consumer handle for a watch subscription. Thread-safe; cancel() (or the
// source going away) wakes any blocked next() with Errc::cancelled once
// buffered events are drained.
class DiscoveryWatcher {
 public:
  explicit DiscoveryWatcher(std::string type_filter, size_t capacity = 256);

  // Empty filter: all impl events plus pool events. Non-empty: impl
  // events for that chunnel type only.
  const std::string& filter() const { return filter_; }

  Result<WatchEvent> next(Deadline deadline = Deadline::never());
  std::optional<WatchEvent> try_next();

  void cancel() { q_.close(); }
  bool cancelled() const { return q_.closed(); }
  // Events lost to the bounded buffer (consumer too slow).
  uint64_t dropped() const;

  // Producer side (DiscoveryState / RemoteDiscovery pollers).
  bool wants(const WatchEvent& ev) const;
  void deliver(const WatchEvent& ev);

 private:
  std::string filter_;
  BlockingQueue<WatchEvent> q_;
  mutable std::mutex mu_;
  uint64_t dropped_ = 0;
};

using WatcherPtr = std::shared_ptr<DiscoveryWatcher>;

// --- Discovery service interface ---

// Uniform client view of the discovery service; LocalDiscovery calls a
// shared in-process state, RemoteDiscovery speaks the wire protocol.
class DiscoveryClient {
 public:
  virtual ~DiscoveryClient() = default;

  virtual Result<void> register_impl(const ImplInfo& info) = 0;
  virtual Result<void> unregister_impl(const std::string& type,
                                       const std::string& name) = 0;
  // All implementations known for a chunnel type.
  virtual Result<std::vector<ImplInfo>> query(const std::string& type) = 0;

  // Multi-resource admission (§6): atomically reserve every requirement
  // or fail with resource_exhausted. Returns an allocation id.
  virtual Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) = 0;
  virtual Result<void> release(uint64_t alloc_id) = 0;

  // Operator action: create/update a capacity pool.
  virtual Result<void> set_pool(const std::string& pool, uint64_t capacity) = 0;

  // Subscribe to deployment changes. The default refuses; DiscoveryState
  // delivers events synchronously, RemoteDiscovery emulates with a
  // poll-and-diff thread (impl events only, non-empty filter required).
  virtual Result<WatcherPtr> watch(const std::string& type_filter) {
    (void)type_filter;
    return err(Errc::invalid_argument,
               "watch not supported by this discovery client");
  }

  // True while the client is serving stale/cached data because the
  // service is unreachable (see CachingDiscovery). Negotiation marks
  // connections established in this state so the transition controller
  // re-runs them once the service returns.
  virtual bool degraded() const { return false; }
};

// In-process discovery state; also the backing store for DiscoveryServer.
// Note: `final` was dropped so tests can interpose on release() to verify
// the drain-before-release invariant; override points stay virtual via
// DiscoveryClient.
class DiscoveryState : public DiscoveryClient {
 public:
  ~DiscoveryState() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  Result<WatcherPtr> watch(const std::string& type_filter) override;

  // --- Leases ---
  //
  // State registered through the leased variants belongs to `owner` (a
  // client id) and survives only while heartbeat() keeps renewing it. A
  // background sweeper reclaims an owner's registrations and allocations
  // once its lease expires, emitting the usual impl_unregistered /
  // pool_freed watch events so live connections renegotiate off the
  // vanished offload.
  Result<void> register_impl_leased(const ImplInfo& info,
                                    const std::string& owner, Duration ttl);
  Result<uint64_t> acquire_leased(const std::vector<ResourceReq>& reqs,
                                  const std::string& owner, Duration ttl);
  // Renews every lease held by `owner`; not_found if it holds none (the
  // client should re-register — its state was already reclaimed).
  Result<void> heartbeat(const std::string& owner);
  // Reclaims expired leases now (the sweeper calls this on a timer).
  // Returns the number of owners reaped.
  size_t expire_leases();

  void set_fault_stats(FaultStatsPtr stats);
  FaultStatsPtr fault_stats() const;

  // Introspection for tests and the scheduling bench.
  uint64_t pool_in_use(const std::string& pool) const;
  uint64_t pool_capacity(const std::string& pool) const;
  size_t live_allocs() const;
  size_t lease_count() const;

 private:
  struct Pool {
    uint64_t capacity = 0;
    uint64_t used = 0;
  };
  struct Lease {
    Duration ttl{};
    TimePoint expires{};
    // (type, name) registrations and allocation ids owned by this lease.
    std::vector<std::pair<std::string, std::string>> impls;
    std::vector<uint64_t> allocs;
  };
  // Requires mu_ held; fans the event out to live watchers.
  void emit(WatchEvent ev);
  Result<void> register_impl_locked(const ImplInfo& info);
  Result<void> unregister_impl_locked(const std::string& type,
                                      const std::string& name);
  Result<uint64_t> acquire_locked(const std::vector<ResourceReq>& reqs);
  Result<void> release_locked(uint64_t alloc_id);
  size_t expire_leases_locked(TimePoint when);
  void ensure_sweeper_locked();
  void sweeper_loop();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<ImplInfo>> entries_;
  std::unordered_map<std::string, Pool> pools_;
  std::unordered_map<uint64_t, std::vector<ResourceReq>> allocs_;
  uint64_t next_alloc_ = 1;
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers_;
  uint64_t watch_seq_ = 0;
  std::unordered_map<std::string, Lease> leases_;
  FaultStatsPtr fault_stats_;
  std::condition_variable sweep_cv_;
  std::thread sweeper_;
  bool sweeper_running_ = false;
  bool stopping_ = false;
};

using DiscoveryPtr = std::shared_ptr<DiscoveryClient>;

// --- Wire protocol ---

// A DiscoveryServer answers RemoteDiscovery requests over any Transport
// (typically a unix socket: the service is host-local in our
// deployments, like the prototype's burrito-discovery daemon).
class DiscoveryServer {
 public:
  // Takes ownership of the transport; serves until destroyed.
  DiscoveryServer(TransportPtr transport, std::shared_ptr<DiscoveryState> state);
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  const Addr& addr() const { return addr_; }
  uint64_t requests_served() const;
  // Requests answered from the idempotency dedup cache (i.e. retries of
  // an already-executed mutation).
  uint64_t dedup_hits() const;

 private:
  void serve_loop();

  // Bounded idempotency cache: "<client_id>#<idem_key>" -> encoded
  // response body. A retried mutation whose first response was lost is
  // answered from here instead of re-executing (exactly-once effects).
  static constexpr size_t kDedupCacheCap = 1024;

  std::shared_ptr<Transport> transport_;
  std::shared_ptr<DiscoveryState> state_;
  Addr addr_;
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  uint64_t dedup_hits_ = 0;
  std::unordered_map<std::string, Bytes> dedup_;
  std::deque<std::string> dedup_order_;  // FIFO eviction
  std::thread thread_;
};

// Speaks the discovery protocol over a datagram transport with
// request/response matching, timeout and retry.
//
// Concurrency: RPCs issue in parallel — a dedicated reader thread demuxes
// responses to waiting callers by request id, so one slow call never
// serializes the rest. Retries back off exponentially with jitter, and
// every mutation carries a client-generated idempotency key so a retry of
// an executed-but-unacknowledged op is answered from the server's dedup
// cache instead of re-executing.
class RemoteDiscovery final : public DiscoveryClient {
 public:
  struct Options {
    Duration rpc_timeout = ms(500);
    int retries = 3;
    // Poll period for emulated watch subscriptions.
    Duration watch_poll = ms(50);
    // Backoff between retry attempts.
    ExponentialBackoff::Options backoff{ms(20), 2.0, ms(500), 0.5};
    uint64_t backoff_seed = 1;
    // Non-zero: registrations/allocations are leased with this TTL and a
    // heartbeat thread renews them. If the service reports the lease
    // lost (e.g. after a long partition), registrations are replayed.
    Duration lease_ttl = Duration::zero();
    // Defaults to lease_ttl / 4.
    Duration heartbeat_period = Duration::zero();
    FaultStatsPtr stats;
  };

  // `transport` is a bound client endpoint used solely for discovery RPCs.
  RemoteDiscovery(TransportPtr transport, Addr server, Options opts);
  RemoteDiscovery(TransportPtr transport, Addr server)
      : RemoteDiscovery(std::move(transport), std::move(server), Options{}) {}
  ~RemoteDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  // Emulated via poll-and-diff: impl events only (no pool_freed — the
  // wire protocol has no pool enumeration op; ROADMAP has the follow-on
  // for server-pushed watch streams). Requires a non-empty type filter.
  Result<WatcherPtr> watch(const std::string& type_filter) override;

  // The lease owner id sent with every request (unique per client).
  const std::string& client_id() const { return client_id_; }

 private:
  struct Rsp;
  struct Pending;
  Result<Rsp> rpc(const Bytes& request_body);
  void reader_loop();
  void ensure_reader_locked();
  void heartbeat_loop();
  void ensure_heartbeat();
  void poll_watch(WatcherPtr w);
  uint64_t next_idem() { return next_idem_.fetch_add(1) + 1; }

  TransportPtr transport_;
  Addr server_;
  Options opts_;
  std::string client_id_;
  std::atomic<uint64_t> next_req_{1};
  std::atomic<uint64_t> next_idem_{0};

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;
  bool reader_started_ = false;
  bool reader_dead_ = false;
  std::thread reader_;

  std::mutex watch_mu_;
  bool stopping_ = false;
  std::vector<std::pair<WatcherPtr, std::thread>> pollers_;

  // Heartbeat thread (lazily started once leased state exists) plus a
  // mirror of leased registrations to replay after a lost lease.
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  std::thread hb_thread_;
  bool hb_started_ = false;
  bool hb_stop_ = false;
  std::vector<ImplInfo> leased_impls_;  // guarded by hb_mu_
};

}  // namespace bertha
