// Discovery (paper §4.2).
//
// Two related pieces:
//
//  * Registry — the per-process table of chunnel implementation
//    *factories* (code this process can instantiate). Applications
//    register fallbacks at launch (Listing 5 line 2); chunnel libraries
//    register their accelerated variants.
//
//  * The Bertha discovery service — tracks which implementations are
//    available *in the deployment* (including network offloads this
//    process didn't register) and owns resource pools (switch slots,
//    NIC engines). The runtime queries it during connection
//    establishment; this is one of the two extra round trips Fig 3
//    measures when it runs as a real server (DiscoveryServer /
//    RemoteDiscovery below).
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/chunnel.hpp"
#include "net/transport.hpp"
#include "util/queue.hpp"

namespace bertha {

// --- Local factory registry ---

class Registry {
 public:
  // Registers (and init()s) an implementation factory. Fails with
  // already_exists on a duplicate (type, name).
  Result<void> register_impl(ChunnelImplPtr impl);
  Result<void> unregister_impl(const std::string& type, const std::string& name);

  // Factory lookup for stack construction; not_found if this process
  // cannot instantiate (type, name).
  Result<ChunnelImplPtr> lookup(const std::string& type,
                                const std::string& name) const;
  std::vector<ChunnelImplPtr> lookup_type(const std::string& type) const;
  std::vector<ImplInfo> infos_for(const std::string& type) const;
  std::vector<std::string> types() const;
  bool has(const std::string& type, const std::string& name) const;

 private:
  mutable std::mutex mu_;
  // type -> (name -> impl)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, ChunnelImplPtr>>
      impls_;
};

// --- Watch API ---
//
// The live-renegotiation subsystem (core/renegotiation.hpp) needs to
// *notice* deployment changes — an offload registering, a registration
// being revoked, a resource slot coming free — without polling the whole
// table. Watchers are bounded queues of WatchEvents; a slow consumer
// drops events (and counts them) rather than blocking the service.

enum class WatchKind : uint8_t {
  impl_registered = 1,    // new impl, or metadata update of an existing one
  impl_unregistered = 2,  // registration revoked
  pool_freed = 3,         // capacity released into a resource pool
};

struct WatchEvent {
  WatchKind kind{};
  // Per-source total order. Events from one DiscoveryState carry strictly
  // increasing seq; a gap at the consumer means the watcher dropped.
  uint64_t seq = 0;
  std::string type;              // impl events: chunnel type
  std::string name;              // impl events: impl name
  std::optional<ImplInfo> info;  // impl_registered: the registered entry
  std::string pool;              // pool_freed: pool name
  uint64_t available = 0;        // pool_freed: free capacity afterwards
};

// Consumer handle for a watch subscription. Thread-safe; cancel() (or the
// source going away) wakes any blocked next() with Errc::cancelled once
// buffered events are drained.
class DiscoveryWatcher {
 public:
  explicit DiscoveryWatcher(std::string type_filter, size_t capacity = 256);

  // Empty filter: all impl events plus pool events. Non-empty: impl
  // events for that chunnel type only.
  const std::string& filter() const { return filter_; }

  Result<WatchEvent> next(Deadline deadline = Deadline::never());
  std::optional<WatchEvent> try_next();

  void cancel() { q_.close(); }
  bool cancelled() const { return q_.closed(); }
  // Events lost to the bounded buffer (consumer too slow).
  uint64_t dropped() const;

  // Producer side (DiscoveryState / RemoteDiscovery pollers).
  bool wants(const WatchEvent& ev) const;
  void deliver(const WatchEvent& ev);

 private:
  std::string filter_;
  BlockingQueue<WatchEvent> q_;
  mutable std::mutex mu_;
  uint64_t dropped_ = 0;
};

using WatcherPtr = std::shared_ptr<DiscoveryWatcher>;

// --- Discovery service interface ---

// Uniform client view of the discovery service; LocalDiscovery calls a
// shared in-process state, RemoteDiscovery speaks the wire protocol.
class DiscoveryClient {
 public:
  virtual ~DiscoveryClient() = default;

  virtual Result<void> register_impl(const ImplInfo& info) = 0;
  virtual Result<void> unregister_impl(const std::string& type,
                                       const std::string& name) = 0;
  // All implementations known for a chunnel type.
  virtual Result<std::vector<ImplInfo>> query(const std::string& type) = 0;

  // Multi-resource admission (§6): atomically reserve every requirement
  // or fail with resource_exhausted. Returns an allocation id.
  virtual Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) = 0;
  virtual Result<void> release(uint64_t alloc_id) = 0;

  // Operator action: create/update a capacity pool.
  virtual Result<void> set_pool(const std::string& pool, uint64_t capacity) = 0;

  // Subscribe to deployment changes. The default refuses; DiscoveryState
  // delivers events synchronously, RemoteDiscovery emulates with a
  // poll-and-diff thread (impl events only, non-empty filter required).
  virtual Result<WatcherPtr> watch(const std::string& type_filter) {
    (void)type_filter;
    return err(Errc::invalid_argument,
               "watch not supported by this discovery client");
  }
};

// In-process discovery state; also the backing store for DiscoveryServer.
// Note: `final` was dropped so tests can interpose on release() to verify
// the drain-before-release invariant; override points stay virtual via
// DiscoveryClient.
class DiscoveryState : public DiscoveryClient {
 public:
  ~DiscoveryState() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  Result<WatcherPtr> watch(const std::string& type_filter) override;

  // Introspection for tests and the scheduling bench.
  uint64_t pool_in_use(const std::string& pool) const;
  uint64_t pool_capacity(const std::string& pool) const;

 private:
  struct Pool {
    uint64_t capacity = 0;
    uint64_t used = 0;
  };
  // Requires mu_ held; fans the event out to live watchers.
  void emit(WatchEvent ev);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<ImplInfo>> entries_;
  std::unordered_map<std::string, Pool> pools_;
  std::unordered_map<uint64_t, std::vector<ResourceReq>> allocs_;
  uint64_t next_alloc_ = 1;
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers_;
  uint64_t watch_seq_ = 0;
};

using DiscoveryPtr = std::shared_ptr<DiscoveryClient>;

// --- Wire protocol ---

// A DiscoveryServer answers RemoteDiscovery requests over any Transport
// (typically a unix socket: the service is host-local in our
// deployments, like the prototype's burrito-discovery daemon).
class DiscoveryServer {
 public:
  // Takes ownership of the transport; serves until destroyed.
  DiscoveryServer(TransportPtr transport, std::shared_ptr<DiscoveryState> state);
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  const Addr& addr() const { return addr_; }
  uint64_t requests_served() const;

 private:
  void serve_loop();

  std::shared_ptr<Transport> transport_;
  std::shared_ptr<DiscoveryState> state_;
  Addr addr_;
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  std::thread thread_;
};

// Speaks the discovery protocol over a datagram transport with
// request/response matching, timeout and retry.
class RemoteDiscovery final : public DiscoveryClient {
 public:
  struct Options {
    Duration rpc_timeout = ms(500);
    int retries = 3;
    // Poll period for emulated watch subscriptions.
    Duration watch_poll = ms(50);
  };

  // `transport` is a bound client endpoint used solely for discovery RPCs.
  RemoteDiscovery(TransportPtr transport, Addr server, Options opts);
  RemoteDiscovery(TransportPtr transport, Addr server)
      : RemoteDiscovery(std::move(transport), std::move(server), Options{}) {}
  ~RemoteDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  // Emulated via poll-and-diff: impl events only (no pool_freed — the
  // wire protocol has no pool enumeration op; ROADMAP has the follow-on
  // for server-pushed watch streams). Requires a non-empty type filter.
  Result<WatcherPtr> watch(const std::string& type_filter) override;

 private:
  struct Rsp;
  Result<Rsp> rpc(const Bytes& request_body);
  void poll_watch(WatcherPtr w);

  std::mutex mu_;  // one RPC at a time per client
  TransportPtr transport_;
  Addr server_;
  Options opts_;
  uint64_t next_req_ = 1;
  std::mutex watch_mu_;
  bool stopping_ = false;
  std::vector<std::pair<WatcherPtr, std::thread>> pollers_;
};

}  // namespace bertha
