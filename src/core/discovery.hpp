// Discovery (paper §4.2).
//
// Two related pieces:
//
//  * Registry — the per-process table of chunnel implementation
//    *factories* (code this process can instantiate). Applications
//    register fallbacks at launch (Listing 5 line 2); chunnel libraries
//    register their accelerated variants.
//
//  * The Bertha discovery service — tracks which implementations are
//    available *in the deployment* (including network offloads this
//    process didn't register) and owns resource pools (switch slots,
//    NIC engines). The runtime queries it during connection
//    establishment; this is one of the two extra round trips Fig 3
//    measures when it runs as a real server (DiscoveryServer /
//    RemoteDiscovery below).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/chunnel.hpp"
#include "core/discovery_wire.hpp"
#include "io/batch.hpp"
#include "net/transport.hpp"
#include "trace/trace.hpp"
#include "util/backoff.hpp"
#include "util/queue.hpp"
#include "util/rand.hpp"
#include "util/stats.hpp"

namespace bertha {

// --- Local factory registry ---

class Registry {
 public:
  // Registers (and init()s) an implementation factory. Fails with
  // already_exists on a duplicate (type, name).
  Result<void> register_impl(ChunnelImplPtr impl);
  Result<void> unregister_impl(const std::string& type, const std::string& name);

  // Factory lookup for stack construction; not_found if this process
  // cannot instantiate (type, name).
  Result<ChunnelImplPtr> lookup(const std::string& type,
                                const std::string& name) const;
  std::vector<ChunnelImplPtr> lookup_type(const std::string& type) const;
  std::vector<ImplInfo> infos_for(const std::string& type) const;
  std::vector<std::string> types() const;
  bool has(const std::string& type, const std::string& name) const;

 private:
  mutable std::mutex mu_;
  // type -> (name -> impl)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, ChunnelImplPtr>>
      impls_;
};

// --- Watch API ---
//
// The live-renegotiation subsystem (core/renegotiation.hpp) needs to
// *notice* deployment changes — an offload registering, a registration
// being revoked, a resource slot coming free — without polling the whole
// table. Watchers are bounded queues of WatchEvents; a slow consumer
// drops events (and counts them) rather than blocking the service.

enum class WatchKind : uint8_t {
  impl_registered = 1,    // new impl, or metadata update of an existing one
  impl_unregistered = 2,  // registration revoked
  pool_freed = 3,         // capacity released into a resource pool
};

struct WatchEvent {
  WatchKind kind{};
  // Per-source total order. Events from one DiscoveryState carry strictly
  // increasing seq; a gap at the consumer means the watcher dropped.
  uint64_t seq = 0;
  std::string type;              // impl events: chunnel type
  std::string name;              // impl events: impl name
  std::optional<ImplInfo> info;  // impl_registered: the registered entry
  std::string pool;              // pool_freed: pool name
  uint64_t available = 0;        // pool_freed: free capacity afterwards
};

template <>
struct Serde<WatchEvent> {
  static void put(Writer& w, const WatchEvent& ev) {
    w.put_u8(static_cast<uint8_t>(ev.kind));
    w.put_varint(ev.seq);
    w.put_string(ev.type);
    w.put_string(ev.name);
    serde_put(w, ev.info);
    w.put_string(ev.pool);
    w.put_varint(ev.available);
  }
  static Result<WatchEvent> get(Reader& r) {
    WatchEvent ev;
    BERTHA_TRY_ASSIGN(kind, r.get_u8());
    if (kind < 1 || kind > 3)
      return err(Errc::protocol_error, "bad watch event kind");
    ev.kind = static_cast<WatchKind>(kind);
    BERTHA_TRY_ASSIGN(seq, r.get_varint());
    BERTHA_TRY_ASSIGN(type, r.get_string());
    BERTHA_TRY_ASSIGN(name, r.get_string());
    BERTHA_TRY_ASSIGN(info, serde_get<std::optional<ImplInfo>>(r));
    BERTHA_TRY_ASSIGN(pool, r.get_string());
    BERTHA_TRY_ASSIGN(avail, r.get_varint());
    ev.seq = seq;
    ev.type = std::move(type);
    ev.name = std::move(name);
    ev.info = std::move(info);
    ev.pool = std::move(pool);
    ev.available = avail;
    return ev;
  }
};

// --- Watch subscription wire messages (MsgKind::subscribe / unsubscribe /
// event_batch) ---
//
// A subscription is keyed by (client_id, sub_id); the sub_id doubles as
// the frame token on every pushed batch so the client's reader thread can
// demux pushes from RPC responses. Delivery is resumable: every batch
// names the seq range it covers, and a client that detects a gap (after a
// partition, a dropped datagram, or a server-side overflow) re-subscribes
// with `resume` and its last applied seq. The server replays from its
// bounded event log, or — if it has pruned past the requested seq — sends
// a full catalogue snapshot batch instead.

struct SubscribeMsg {
  uint64_t sub_id = 0;    // client-chosen; pushes echo it as the token
  std::string client_id;  // required: subscription namespace
  std::string filter;     // empty = all events (incl. pool_freed)
  uint64_t last_seq = 0;  // resume: last event seq the client applied
  bool resume = false;    // re-subscribe after a detected gap
};

struct UnsubscribeMsg {
  uint64_t sub_id = 0;
  std::string client_id;
};

struct EventBatchMsg {
  // Seq of the newest event this subscriber had been sent before this
  // batch (0 for a snapshot): prev_seq != the client's last applied seq
  // means batches were lost in between.
  uint64_t prev_seq = 0;
  // Newest catalogue seq this batch covers — including events the
  // subscriber's filter suppressed, so a resume never replays them.
  uint64_t last_seq = 0;
  // The events are a full catalogue snapshot (all carry seq == last_seq),
  // not an incremental diff; sent when resume is impossible.
  bool snapshot = false;
  std::vector<WatchEvent> events;  // empty: keepalive / pure seq advance
};

Bytes encode_subscribe(const SubscribeMsg& m);
Result<SubscribeMsg> decode_subscribe(BytesView b);
Bytes encode_unsubscribe(const UnsubscribeMsg& m);
Result<UnsubscribeMsg> decode_unsubscribe(BytesView b);
Bytes encode_event_batch(const EventBatchMsg& m);
Result<EventBatchMsg> decode_event_batch(BytesView b);

// Consumer handle for a watch subscription. Thread-safe; cancel() (or the
// source going away) wakes any blocked next() with Errc::cancelled once
// buffered events are drained.
//
// Events are queued in *batches*: a producer burst delivered through
// deliver_batch() comes back out of next_batch() whole, so a consumer
// like the transition controller can treat it as one unit of change.
// next()/try_next() still hand out single events (unbatched consumers
// see no difference; a partially consumed batch is buffered).
class DiscoveryWatcher {
 public:
  explicit DiscoveryWatcher(std::string type_filter, size_t capacity = 256);

  // Empty filter: all impl events plus pool events. Non-empty: impl
  // events for that chunnel type only.
  const std::string& filter() const { return filter_; }

  Result<WatchEvent> next(Deadline deadline = Deadline::never());
  std::optional<WatchEvent> try_next();
  // Batch variants: one delivered batch per call (never a partial one).
  Result<std::vector<WatchEvent>> next_batch(
      Deadline deadline = Deadline::never());
  std::optional<std::vector<WatchEvent>> try_next_batch();

  void cancel() { q_.close(); }
  bool cancelled() const { return q_.closed(); }
  // Events lost to the bounded buffer (consumer too slow).
  uint64_t dropped() const;

  // Producer side (DiscoveryState / RemoteDiscovery / DiscoveryServer).
  bool wants(const WatchEvent& ev) const { return matches(filter_, ev); }
  static bool matches(const std::string& filter, const WatchEvent& ev);
  void deliver(const WatchEvent& ev);
  void deliver_batch(std::vector<WatchEvent> events);

 private:
  std::string filter_;
  BlockingQueue<std::vector<WatchEvent>> q_;
  mutable std::mutex mu_;
  // Front of a batch partially consumed by next()/try_next().
  std::deque<WatchEvent> buffer_;
  uint64_t dropped_ = 0;
};

using WatcherPtr = std::shared_ptr<DiscoveryWatcher>;

// --- Discovery service interface ---

// Uniform client view of the discovery service; LocalDiscovery calls a
// shared in-process state, RemoteDiscovery speaks the wire protocol.
class DiscoveryClient {
 public:
  virtual ~DiscoveryClient() = default;

  virtual Result<void> register_impl(const ImplInfo& info) = 0;
  virtual Result<void> unregister_impl(const std::string& type,
                                       const std::string& name) = 0;
  // All implementations known for a chunnel type.
  virtual Result<std::vector<ImplInfo>> query(const std::string& type) = 0;

  // Multi-resource admission (§6): atomically reserve every requirement
  // or fail with resource_exhausted. Returns an allocation id.
  virtual Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) = 0;
  virtual Result<void> release(uint64_t alloc_id) = 0;

  // Operator action: create/update a capacity pool.
  virtual Result<void> set_pool(const std::string& pool, uint64_t capacity) = 0;

  // Subscribe to deployment changes. The default refuses; DiscoveryState
  // delivers events synchronously, RemoteDiscovery emulates with a
  // poll-and-diff thread (impl events only, non-empty filter required).
  virtual Result<WatcherPtr> watch(const std::string& type_filter) {
    (void)type_filter;
    return err(Errc::invalid_argument,
               "watch not supported by this discovery client");
  }

  // True while the client is serving stale/cached data because the
  // service is unreachable (see CachingDiscovery). Negotiation marks
  // connections established in this state so the transition controller
  // re-runs them once the service returns.
  virtual bool degraded() const { return false; }
};

// Full-state snapshot of a DiscoveryState — the unit of replica
// catch-up (src/control/): a joining or restarted replica installs a
// live peer's snapshot, then replays the sequenced suffix. Exported
// under the state lock, so the snapshot is a consistent cut and
// `watch_seq` names exactly the event history it reflects.
struct DiscoverySnapshot {
  struct PoolEntry {
    std::string name;
    uint64_t capacity = 0;
    uint64_t used = 0;
  };
  struct AllocEntry {
    uint64_t id = 0;
    std::vector<ResourceReq> reqs;
  };
  struct LeaseEntry {
    std::string owner;
    int64_t ttl_ns = 0;
    int64_t expires_ns = 0;  // steady-clock ns (origin-stamped time basis)
    std::vector<std::pair<std::string, std::string>> impls;
    std::vector<uint64_t> allocs;
  };
  std::vector<ImplInfo> impls;
  std::vector<PoolEntry> pools;
  std::vector<AllocEntry> allocs;
  uint64_t next_alloc = 1;  // includes the alloc-namespace bits
  std::vector<LeaseEntry> leases;
  uint64_t watch_seq = 0;
};

// In-process discovery state; also the backing store for DiscoveryServer.
// Note: `final` was dropped so tests can interpose on release() to verify
// the drain-before-release invariant; override points stay virtual via
// DiscoveryClient.
class DiscoveryState : public DiscoveryClient {
 public:
  ~DiscoveryState() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  Result<WatcherPtr> watch(const std::string& type_filter) override;

  // --- Leases ---
  //
  // State registered through the leased variants belongs to `owner` (a
  // client id) and survives only while heartbeat() keeps renewing it. A
  // background sweeper reclaims an owner's registrations and allocations
  // once its lease expires, emitting the usual impl_unregistered /
  // pool_freed watch events so live connections renegotiate off the
  // vanished offload.
  Result<void> register_impl_leased(const ImplInfo& info,
                                    const std::string& owner, Duration ttl);
  Result<uint64_t> acquire_leased(const std::vector<ResourceReq>& reqs,
                                  const std::string& owner, Duration ttl);
  // Renews every lease held by `owner`; not_found if it holds none (the
  // client should re-register — its state was already reclaimed).
  Result<void> heartbeat(const std::string& owner);
  // Reclaims expired leases now (the sweeper calls this on a timer).
  // Returns the number of owners reaped.
  size_t expire_leases();

  // Deterministic-time variants for replicated state machines
  // (src/control/): `at` is the op's origin-stamped time, so every
  // replica applying the same op computes the identical lease expiry.
  // The plain variants above delegate here with now().
  Result<void> register_impl_leased_at(const ImplInfo& info,
                                       const std::string& owner, Duration ttl,
                                       TimePoint at);
  Result<uint64_t> acquire_leased_at(const std::vector<ResourceReq>& reqs,
                                     const std::string& owner, Duration ttl,
                                     TimePoint at);
  Result<void> heartbeat_at(const std::string& owner, TimePoint at);
  size_t expire_leases_at(TimePoint when);

  // Replicated deployments only:
  //  - set_alloc_namespace stamps every allocation id with a partition
  //    index in the high bits (ids become (ns << kAllocNamespaceShift) |
  //    counter), so ids minted by different partitions never collide and
  //    a cluster client can route release() by id alone;
  //  - set_manual_sweep disables the background lease sweeper — expiry
  //    must arrive as explicit expire_leases_at() calls (replicated
  //    sweep ops), never from a local clock, or replicas diverge.
  // Both must be called before the state serves traffic.
  static constexpr uint64_t kAllocNamespaceShift = 48;
  void set_alloc_namespace(uint64_t ns);
  void set_manual_sweep(bool on);

  void set_fault_stats(FaultStatsPtr stats);
  FaultStatsPtr fault_stats() const;

  // Every registered impl plus the watch seq current at the instant the
  // snapshot was taken, atomically — the payload of a snapshot batch sent
  // to a subscriber that resumed from beyond the event-log horizon.
  std::pair<std::vector<ImplInfo>, uint64_t> catalogue_snapshot() const;

  // Full-state export/install for replica catch-up. install_snapshot()
  // replaces every table wholesale and emits NO watch events — the
  // matching event history arrives separately (the peer's event log) so
  // subscribers resume by seq instead of replaying a fake diff.
  DiscoverySnapshot export_snapshot() const;
  void install_snapshot(const DiscoverySnapshot& snap);

  // Online repartitioning (src/control/reshard.hpp). extract_range()
  // *removes* every entry whose scope key hashes to `range` under
  // shard_pick(key, modulo) — impls by type, pools by name, allocs by
  // their (single) pool, lease rows split per key — and returns them as
  // a snapshot, emitting NO watch events (the range is migrating, not
  // dying; its subscribers re-home instead of replaying a fake teardown).
  // The returned watch_seq is this state's, so a destination forking a
  // fresh seq domain can adopt it. ingest_snapshot() is the other half:
  // it *merges* the tables in (same-key lease rows union), keeps its own
  // next_alloc namespace and advances watch_seq to max(own, snap). With
  // emit_events=false (a fresh destination adopting the source's event
  // log) it emits nothing; with emit_events=true (merge into an
  // established seq domain) the newly added impls are emitted as
  // register events *above* the max-seq bump, so subscribers from either
  // domain pick them up without a gap.
  DiscoverySnapshot extract_range(uint64_t modulo, uint64_t range);
  void ingest_snapshot(const DiscoverySnapshot& snap,
                       bool emit_events = false);

  // Introspection for tests and the scheduling bench.
  uint64_t pool_in_use(const std::string& pool) const;
  uint64_t pool_capacity(const std::string& pool) const;
  size_t live_allocs() const;
  size_t lease_count() const;

 private:
  struct Pool {
    uint64_t capacity = 0;
    uint64_t used = 0;
  };
  struct Lease {
    Duration ttl{};
    TimePoint expires{};
    // (type, name) registrations and allocation ids owned by this lease.
    std::vector<std::pair<std::string, std::string>> impls;
    std::vector<uint64_t> allocs;
  };
  // Requires mu_ held; fans the event out to live watchers.
  void emit(WatchEvent ev);
  Result<void> register_impl_locked(const ImplInfo& info);
  Result<void> unregister_impl_locked(const std::string& type,
                                      const std::string& name);
  Result<uint64_t> acquire_locked(const std::vector<ResourceReq>& reqs);
  Result<void> release_locked(uint64_t alloc_id);
  size_t expire_leases_locked(TimePoint when);
  void ensure_sweeper_locked();
  void sweeper_loop();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<ImplInfo>> entries_;
  std::unordered_map<std::string, Pool> pools_;
  std::unordered_map<uint64_t, std::vector<ResourceReq>> allocs_;
  uint64_t next_alloc_ = 1;
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers_;
  uint64_t watch_seq_ = 0;
  std::unordered_map<std::string, Lease> leases_;
  FaultStatsPtr fault_stats_;
  std::condition_variable sweep_cv_;
  std::thread sweeper_;
  bool sweeper_running_ = false;
  bool manual_sweep_ = false;
  bool stopping_ = false;
};

using DiscoveryPtr = std::shared_ptr<DiscoveryClient>;

// --- Wire protocol ---

// The watch-event resume window of a DiscoveryServer, exported for
// replica catch-up alongside the state snapshot: installing it lets the
// restarted replica's server answer seq-resume subscriptions for events
// it never pushed itself.
struct EventLogSnapshot {
  std::vector<WatchEvent> events;
  uint64_t pruned_through = 0;
  uint64_t observed_through = 0;
};

// A DiscoveryServer answers RemoteDiscovery requests over any Transport
// (typically a unix socket: the service is host-local in our
// deployments, like the prototype's burrito-discovery daemon), and pushes
// coalesced watch-event batches to subscribed clients so idle watchers
// cost nothing.
class DiscoveryServer {
 public:
  struct Options {
    // Events landing within this window of the first one are folded into
    // a single pushed batch; subscribers (and their transition
    // controllers) see one event_batch per burst.
    Duration coalesce_window = ms(10);
    // Period of empty keepalive batches. They carry the subscriber's
    // current seq, which is how a client that missed pushes during a
    // silent partition discovers the gap and resumes. Zero disables.
    Duration keepalive = ms(200);
    // Pushed events retained for seq resume; a client resuming from
    // before this horizon gets a catalogue snapshot instead.
    size_t event_log_cap = 1024;
    // Optional: spans per served RPC (serve.<op>), parented to the
    // request's wire-propagated trace context.
    TracerPtr tracer;
    // Replication hook (src/control/): when set, every mutation (any op
    // but query) is routed here instead of being executed against the
    // local state; the returned response goes back to the client.
    // Queries and watch streams still serve from the local state — which
    // the executor's owner keeps current by applying the sequenced op
    // stream to it. Responses that fail with Errc::unavailable or
    // timed_out are treated as transient and NOT recorded in the
    // idempotency cache, so a client retry re-submits instead of
    // replaying the outage.
    std::function<DiscResponse(const DiscRequest&)> mutation_executor;
    // Consulted before dedup and execution for every decoded discovery
    // request; a returned response short-circuits local handling (and,
    // like any response, is cached only if non-transient). The reshard
    // subsystem uses it to fence and forward migrating key ranges.
    std::function<std::optional<DiscResponse>(const DiscRequest&)>
        request_interceptor;
  };

  // Takes ownership of the transport; serves until destroyed.
  DiscoveryServer(TransportPtr transport, std::shared_ptr<DiscoveryState> state,
                  Options opts);
  DiscoveryServer(TransportPtr transport, std::shared_ptr<DiscoveryState> state)
      : DiscoveryServer(std::move(transport), std::move(state), Options{}) {}
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  const Addr& addr() const { return addr_; }
  uint64_t requests_served() const;
  // Requests answered from the idempotency dedup cache (i.e. retries of
  // an already-executed mutation).
  uint64_t dedup_hits() const;
  // Watch-stream telemetry. Pushed batches/events do not count as
  // requests_served(): an idle subscriber costs the server nothing and
  // the client no RPCs.
  uint64_t subscribes_served() const;
  uint64_t batches_pushed() const;
  uint64_t events_pushed() const;
  uint64_t snapshots_served() const;
  size_t subscriber_count() const;

  // Replica catch-up: export the resume window once the push loop has
  // observed the state's events through `through_seq` (polls briefly up
  // to `deadline`; on expiry returns a log marked fully pruned at
  // `through_seq`, which downgrades resumers to a snapshot — safe,
  // never wrong). install_event_log() replaces the window wholesale;
  // `state_seq` is the installed state's watch seq, the fallback
  // horizon when the exported log fell short.
  EventLogSnapshot export_event_log(uint64_t through_seq,
                                    Deadline deadline) const;
  void install_event_log(const EventLogSnapshot& log, uint64_t state_seq);

 private:
  struct Sub {
    Addr addr;
    uint64_t sub_id = 0;  // frame token on every push
    std::string filter;
    // Newest catalogue seq this subscriber has been sent (the prev_seq of
    // its next batch).
    uint64_t last_sent_seq = 0;
    // Consecutive failed pushes; reset on any successful send or
    // re-subscribe. A client that vanished without an unsubscribe is
    // evicted once this passes kSubFailureLimit, so the server doesn't
    // push to ghosts forever. (Transports that swallow errors — plain
    // UDP — simply never trip this; eviction is best-effort hygiene,
    // not the correctness path.)
    uint32_t send_failures = 0;
  };
  static constexpr uint32_t kSubFailureLimit = 8;

  void serve_loop();
  void push_loop();
  void handle_subscribe(const Addr& src, uint64_t sub_id, BytesView body);
  void handle_unsubscribe(BytesView body);
  // Builds and sends one batch to `sub` covering `events` (already
  // coalesced); updates last_sent_seq. push_mu_ held.
  void push_to_locked(Sub& sub, const std::vector<WatchEvent>& events,
                      uint64_t round_max_seq);
  void send_snapshot_locked(Sub& sub);
  // Queues a push for `sub` into the fan-out buffer; flush_fanout_locked
  // sends the whole round with one batched transport call (one sendmmsg
  // on UDP) and does the failure accounting for eviction. Every path
  // that queues must flush before releasing push_mu_ — the buffer holds
  // raw Sub pointers that an erase would dangle.
  void send_to_sub_locked(Sub& sub, Bytes frame);
  void flush_fanout_locked();
  void evict_dead_subs_locked();

  // Bounded idempotency cache: "<client_id>#<idem_key>" -> encoded
  // response body. A retried mutation whose first response was lost is
  // answered from here instead of re-executing (exactly-once effects).
  static constexpr size_t kDedupCacheCap = 1024;

  std::shared_ptr<Transport> transport_;
  std::shared_ptr<DiscoveryState> state_;
  Options opts_;
  Addr addr_;
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  uint64_t dedup_hits_ = 0;
  std::unordered_map<std::string, Bytes> dedup_;
  std::deque<std::string> dedup_order_;  // FIFO eviction

  // Subscription state (push_mu_ nests inside nothing; it may be taken
  // while calling into state_, never the other way around).
  mutable std::mutex push_mu_;
  std::unordered_map<std::string, Sub> subs_;  // "<client_id>#<sub_id>"
  std::deque<WatchEvent> event_log_;           // resume window
  uint64_t pruned_through_ = 0;  // seqs <= this are gone from the log
  uint64_t observed_through_ = 0;
  uint64_t subscribes_ = 0;
  uint64_t batches_pushed_ = 0;
  uint64_t events_pushed_ = 0;
  uint64_t snapshots_ = 0;
  // Per-round fan-out batch (guarded by push_mu_; see send_to_sub_locked).
  std::vector<Datagram> fanout_buf_;
  std::vector<Sub*> fanout_subs_;
  WatcherPtr push_watch_;
  std::thread thread_;
  std::thread push_thread_;
};

// Speaks the discovery protocol over a datagram transport with
// request/response matching, timeout and retry.
//
// Concurrency: RPCs issue in parallel — a dedicated reader thread demuxes
// responses to waiting callers by request id, so one slow call never
// serializes the rest. Retries back off exponentially with jitter, and
// every mutation carries a client-generated idempotency key so a retry of
// an executed-but-unacknowledged op is answered from the server's dedup
// cache instead of re-executing.
class RemoteDiscovery final : public DiscoveryClient {
 public:
  struct Options {
    Duration rpc_timeout = ms(500);
    int retries = 3;
    // Poll period for the fallback watch emulation (used only when the
    // server never answers a subscribe, i.e. predates server push).
    Duration watch_poll = ms(50);
    // Backoff between retry attempts.
    ExponentialBackoff::Options backoff{ms(20), 2.0, ms(500), 0.5};
    // 0 (the default) derives the jitter seed from this client's id, so a
    // fleet of clients retrying into a recovering server spreads out
    // instead of thundering in lockstep. Set non-zero only when a test
    // needs a reproducible backoff schedule.
    uint64_t backoff_seed = 0;
    // Non-zero: registrations/allocations are leased with this TTL and a
    // heartbeat thread renews them. If the service reports the lease
    // lost (e.g. after a long partition), registrations are replayed.
    Duration lease_ttl = Duration::zero();
    // Defaults to lease_ttl / 4.
    Duration heartbeat_period = Duration::zero();
    FaultStatsPtr stats;
    // Optional: spans per RPC (rpc.<op>, one child per resend attempt).
    // The RPC span parents to the calling thread's ambient context, so
    // discovery calls made during negotiation join the connect trace.
    TracerPtr tracer;
    // Multi-server only: if no event batch (not even a keepalive) arrives
    // on a live subscription for this long, assume the server pushing it
    // died and fail over: rotate to the next server and resubscribe with
    // resume. Zero disables the watchdog (RPC timeouts still rotate).
    // Should comfortably exceed the server's keepalive period.
    Duration watch_failover_timeout = Duration::zero();
    // Poll period of the push-silence watchdog. Zero (the default)
    // derives watch_failover_timeout / 2; tightening it bounds how long
    // past the failover timeout a silent server can go unnoticed
    // (detection latency ≈ timeout + interval).
    Duration watchdog_interval = Duration::zero();
    // Timer-wheel mode for lease renewal: when this returns a wheel (and
    // lease_ttl > 0), heartbeats are armed as a periodic wheel entry
    // instead of a dedicated thread — the beat fires the RPC without
    // waiting (the reader thread completes it asynchronously), so a
    // process holding many leased clients carries zero heartbeat
    // threads. Resolved lazily at first lease so wiring it up doesn't
    // force the wheel (and its tick thread) into runtimes that never
    // lease anything. Null / returning null keeps the thread path.
    std::function<std::shared_ptr<TimerWheel>()> wheel_source;
  };

  // `transport` is a bound client endpoint used solely for discovery RPCs.
  // The multi-server form holds the replica set of one partition: RPCs go
  // to the active server, and any timed-out attempt rotates to the next
  // replica (resubscribing live watch streams with seq-resume), so a
  // replica death costs one RPC timeout, not an outage.
  RemoteDiscovery(TransportPtr transport, std::vector<Addr> servers,
                  Options opts);
  RemoteDiscovery(TransportPtr transport, Addr server, Options opts);
  RemoteDiscovery(TransportPtr transport, Addr server)
      : RemoteDiscovery(std::move(transport), std::move(server), Options{}) {}
  ~RemoteDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  // Server-push when the service supports it: a subscribe frame opens a
  // stream of event_batch pushes (any filter, including ""), demuxed by
  // the reader thread, with seq-gap detection and resume. If the server
  // never acks the subscribe (it predates subscriptions), falls back to
  // poll-and-diff emulation — impl events only, non-empty filter
  // required.
  Result<WatcherPtr> watch(const std::string& type_filter) override;

  // The lease owner id sent with every request (unique per client).
  const std::string& client_id() const { return client_id_; }
  // The server currently receiving RPCs, and how many failovers rotated
  // us here. Diagnostics/tests only.
  Addr active_server() const;
  size_t server_failovers() const { return failovers_.load(); }
  size_t server_count() const;
  // Membership reconfiguration: replace the replica set. The active
  // server is kept if it survives in the new list; otherwise RPCs
  // rotate to the first entry.
  void update_servers(std::vector<Addr> servers);
  // Late binding for Options::wheel_source (the runtime constructs its
  // bootstrap discovery client before the runtime object — and hence its
  // wheel — exists). No-op once the heartbeat engine has started.
  void set_wheel_source(std::function<std::shared_ptr<TimerWheel>()> source);
  // The effective jitter seed (after client-id derivation).
  uint64_t backoff_seed() const { return backoff_seed_; }
  // The jitter-free step the next retry delay draws around. The window
  // escalates across failed attempts (of any RPC) and resets to base on
  // the first success — a recovered server stops paying outage penalty.
  // Diagnostics/tests only.
  Duration backoff_step() const;

 private:
  struct Rsp;
  struct Pending;
  struct Sub;
  // `span`, when non-null, is the logical RPC's span: resend attempts
  // become its children and retry/outcome tags land on it.
  Result<Rsp> rpc(const Bytes& request_body, Span* span = nullptr);
  void reader_loop();
  void ensure_reader_locked();
  void heartbeat_loop();
  void ensure_heartbeat();
  // Wheel-mode beat: sends the heartbeat RPC and returns without
  // waiting; runs on the wheel tick thread.
  void beat_async();
  // Completion of an async beat; runs on the reader thread (or the
  // orphan-failure path). Must not issue blocking RPCs inline.
  void on_heartbeat_done(Result<DiscResponse> rsp);
  void poll_watch(WatcherPtr w);
  Result<void> subscribe_watch(WatcherPtr w, const std::string& filter);
  void handle_event_batch(uint64_t token, BytesView payload);
  void send_subscribe(const Sub& sub, uint64_t last_seq, bool resume);
  uint64_t next_idem() { return next_idem_.fetch_add(1) + 1; }
  // Failover: if `observed` is still the active index, advance to the
  // next server and resubscribe every live watch stream there with
  // resume (the replicated watch seq is identical on all replicas, so
  // the new server replays exactly the missed suffix). Passing the
  // observed index makes concurrent timed-out RPCs rotate once, not
  // once each.
  void rotate_server(size_t observed);
  void watchdog_loop();
  void ensure_watchdog();

  TransportPtr transport_;
  std::vector<Addr> servers_;
  mutable std::mutex srv_mu_;
  size_t active_ = 0;  // index into servers_; guarded by srv_mu_
  std::atomic<size_t> failovers_{0};
  Options opts_;
  uint64_t backoff_seed_ = 0;
  // Per-client retry backoff, shared across RPCs so the escalation
  // state survives the call that observed the failure. Guarded by
  // bo_mu_; see backoff_step().
  mutable std::mutex bo_mu_;
  std::optional<ExponentialBackoff> retry_backoff_;
  std::string client_id_;
  std::atomic<uint64_t> next_req_{1};
  std::atomic<uint64_t> next_idem_{0};

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;
  bool reader_started_ = false;
  bool reader_dead_ = false;
  std::thread reader_;

  std::mutex watch_mu_;
  bool stopping_ = false;
  std::vector<std::pair<WatcherPtr, std::thread>> pollers_;
  // Server-push subscriptions, keyed by sub_id (the push frame token).
  // Guarded by watch_mu_; the reader thread consults it on every
  // event_batch frame.
  std::unordered_map<uint64_t, std::shared_ptr<Sub>> subs_;
  // Push-silence watchdog (multi-server; see watch_failover_timeout).
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;
  bool watchdog_started_ = false;
  // Steady-clock ns of the last event_batch received (any subscription,
  // keepalives included).
  std::atomic<int64_t> last_push_ns_{0};

  // Heartbeat engine (lazily started once leased state exists) plus a
  // mirror of leased registrations to replay after a lost lease. Wheel
  // mode arms hb_timer_ on hb_wheel_; thread mode runs hb_thread_.
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  std::thread hb_thread_;
  bool hb_started_ = false;
  bool hb_stop_ = false;
  std::vector<ImplInfo> leased_impls_;  // guarded by hb_mu_
  std::shared_ptr<TimerWheel> hb_wheel_;  // guarded by hb_mu_
  uint64_t hb_timer_ = 0;                 // guarded by hb_mu_
  uint64_t hb_inflight_ = 0;  // outstanding async beat req id; hb_mu_
  // Lease-loss replay runs blocking RPCs, so it gets a transient thread
  // (the reader thread completes those RPCs and must not wait on them).
  std::atomic<bool> hb_replay_running_{false};
  std::thread hb_replay_;  // guarded by hb_mu_
};

}  // namespace bertha
