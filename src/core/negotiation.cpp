#include "core/negotiation.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/hash.hpp"
#include "util/log.hpp"

namespace bertha {

// --- message serde ---

Bytes encode_hello(const HelloMsg& m) {
  Writer w;
  w.put_string(m.endpoint_name);
  w.put_string(m.host_id);
  w.put_string(m.process_id);
  serde_put(w, m.dag);
  serde_put(w, m.offers);
  put_trace_context(w, m.trace);  // optional tail; absent when invalid
  return std::move(w).take();
}

Result<HelloMsg> decode_hello(BytesView b) {
  Reader r(b);
  HelloMsg m;
  BERTHA_TRY_ASSIGN(name, r.get_string());
  BERTHA_TRY_ASSIGN(host, r.get_string());
  BERTHA_TRY_ASSIGN(proc, r.get_string());
  BERTHA_TRY_ASSIGN(dag, serde_get<ChunnelDag>(r));
  BERTHA_TRY_ASSIGN(offers,
                    (serde_get<std::map<std::string, std::vector<ImplInfo>>>(r)));
  m.endpoint_name = std::move(name);
  m.host_id = std::move(host);
  m.process_id = std::move(proc);
  m.dag = std::move(dag);
  m.offers = std::move(offers);
  m.trace = read_trace_context_tail(r);  // tolerant: garbage -> no context
  return m;
}

Bytes encode_accept(const AcceptMsg& m) {
  Writer w;
  w.put_varint(m.token);
  w.put_string(m.host_id);
  w.put_string(m.process_id);
  serde_put(w, m.chain);
  w.put_varint(m.chain_digest);
  return std::move(w).take();
}

Result<AcceptMsg> decode_accept(BytesView b) {
  Reader r(b);
  AcceptMsg m;
  BERTHA_TRY_ASSIGN(token, r.get_varint());
  BERTHA_TRY_ASSIGN(host, r.get_string());
  BERTHA_TRY_ASSIGN(proc, r.get_string());
  BERTHA_TRY_ASSIGN(chain, serde_get<std::vector<NegotiatedNode>>(r));
  BERTHA_TRY_ASSIGN(digest, r.get_varint());
  m.token = token;
  m.host_id = std::move(host);
  m.process_id = std::move(proc);
  m.chain = std::move(chain);
  m.chain_digest = digest;
  return m;
}

Bytes encode_reject(const RejectMsg& m) {
  Writer w;
  w.put_u8(m.errc);
  w.put_string(m.reason);
  return std::move(w).take();
}

Result<RejectMsg> decode_reject(BytesView b) {
  Reader r(b);
  RejectMsg m;
  BERTHA_TRY_ASSIGN(ec, r.get_u8());
  BERTHA_TRY_ASSIGN(reason, r.get_string());
  m.errc = ec;
  m.reason = std::move(reason);
  return m;
}

uint64_t attest_chain(const std::vector<NegotiatedNode>& chain,
                      const std::string& secret) {
  Writer w;
  w.put_string(secret);
  serde_put(w, chain);
  w.put_string(secret);  // sandwich the payload between key material
  uint64_t h = fnv1a64(w.bytes());
  return mix64(h) | 1;  // never 0 (0 means "unattested")
}

// --- candidate assembly ---

std::vector<Candidate> rank_candidates(
    const ChunnelSpec& spec, const std::vector<ImplInfo>& client_offered,
    const std::vector<ImplInfo>& server_registered,
    const std::vector<ImplInfo>& network_entries, const Policy& policy,
    bool same_host) {
  // Merge the three sources by implementation name.
  std::map<std::string, Candidate> by_name;
  auto merge = [&](const ImplInfo& info, bool cli, bool srv, bool net) {
    // Factory-only registrations are instantiation code, not available
    // implementations; availability comes from discovery instances.
    if (info.factory_only) return;
    auto& c = by_name[info.name];
    if (c.info.name.empty()) c.info = info;
    c.client_offers |= cli;
    c.server_offers |= srv;
    c.network_provided |= net;
  };
  for (const auto& i : client_offered)
    if (i.type == spec.type) merge(i, true, false, false);
  for (const auto& i : server_registered)
    if (i.type == spec.type) merge(i, false, true, false);
  for (const auto& i : network_entries)
    if (i.type == spec.type) merge(i, false, false, true);

  // Instance scoping: offloads installed for one application instance
  // (a particular consensus group, a particular service) advertise
  // props["instance"]; a DAG node that names its instance only accepts
  // matching (or instance-agnostic) implementations. Without this, a
  // high-priority offload installed for application A would capture
  // application B's traffic.
  std::string wanted_instance = spec.args.get_or("instance", "");

  std::vector<Candidate> out;
  for (auto& [name, c] : by_name) {
    if (auto it = c.info.props.find("instance"); it != c.info.props.end()) {
      if (it->second != wanted_instance) continue;
    }
    // Scope constraint from the DAG node: the implementation must be
    // placeable within the requested scope.
    if (spec.scope_constraint && c.info.scope > *spec.scope_constraint)
      continue;
    // Host-scoped offloads (e.g. an XDP program or a unix-socket path on
    // the server's machine) are only *cross-host usable* when declared;
    // an application-scoped impl is always fine (it runs in-process at
    // each end). A host-scoped impl whose work is shared by both ends
    // requires the endpoints to share a host.
    if (c.info.scope == Scope::application &&
        c.info.endpoints == EndpointConstraint::both &&
        !(c.client_offers && c.server_offers))
      continue;  // both processes must have the code
    if (c.info.scope == Scope::host &&
        c.info.endpoints == EndpointConstraint::both && !same_host)
      continue;
    // Endpoint availability (§4.2).
    switch (c.info.endpoints) {
      case EndpointConstraint::client:
        if (!c.client_offers) continue;
        break;
      case EndpointConstraint::server:
        if (!c.server_offers && !c.network_provided) continue;
        break;
      case EndpointConstraint::both:
        if (!(c.client_offers && (c.server_offers || c.network_provided)))
          continue;
        break;
    }
    if (policy.score(spec.type, c) < 0) continue;
    out.push_back(c);
  }

  std::sort(out.begin(), out.end(), [&](const Candidate& a, const Candidate& b) {
    int64_t sa = policy.score(spec.type, a);
    int64_t sb = policy.score(spec.type, b);
    if (sa != sb) return sa > sb;
    return a.info.name < b.info.name;  // deterministic tie-break
  });
  return out;
}

// --- server-side negotiation ---

namespace {

// Binds one chain of specs to implementations. On failure, releases any
// resources it reserved itself.
Result<NegotiationResult> select_chain(
    const std::vector<ChunnelSpec>& specs, const HelloMsg& hello,
    const Registry& registry, DiscoveryClient& discovery, const Policy& policy,
    const std::map<std::string, ChunnelArgs>& advertisements, bool same_host) {
  NegotiationResult result;
  auto release_all = [&] {
    for (uint64_t id : result.resource_allocs) (void)discovery.release(id);
    result.resource_allocs.clear();
    result.alloc_nodes.clear();
  };

  for (const auto& spec : specs) {
    static const std::vector<ImplInfo> kNone;
    const std::vector<ImplInfo>* client_offered = &kNone;
    if (auto it = hello.offers.find(spec.type); it != hello.offers.end())
      client_offered = &it->second;

    std::vector<ImplInfo> network_entries;
    auto q = discovery.query(spec.type);
    if (q.ok()) {
      network_entries = std::move(q).value();
    } else {
      BLOG(warn, "negotiate") << "discovery query failed for " << spec.type
                              << ": " << q.error().to_string();
      result.degraded = true;
    }
    if (discovery.degraded()) result.degraded = true;

    auto candidates =
        rank_candidates(spec, *client_offered, registry.infos_for(spec.type),
                        network_entries, policy, same_host);
    if (candidates.empty()) {
      release_all();
      return err(Errc::incompatible,
                 "no usable implementation for chunnel type '" + spec.type +
                     "'");
    }

    // First candidate whose resource requirements can be reserved wins.
    const Candidate* chosen = nullptr;
    for (const auto& c : candidates) {
      if (c.info.resources.empty()) {
        chosen = &c;
        break;
      }
      auto alloc = discovery.acquire(c.info.resources);
      if (alloc.ok()) {
        result.resource_allocs.push_back(alloc.value());
        result.alloc_nodes.push_back(result.chain.size());
        chosen = &c;
        break;
      }
      BLOG(debug, "negotiate")
          << c.info.name << " skipped: " << alloc.error().to_string();
    }
    if (!chosen) {
      release_all();
      return err(Errc::resource_exhausted,
                 "all implementations of '" + spec.type +
                     "' are resource-constrained");
    }

    NegotiatedNode node;
    node.type = spec.type;
    node.impl_name = chosen->info.name;
    // Merge order (later wins): app DAG args < impl props < listener
    // advertisements. The impl sees one flat map.
    node.args = spec.args.merged_with(ChunnelArgs(chosen->info.props));
    if (auto it = advertisements.find(spec.type); it != advertisements.end())
      node.args = node.args.merged_with(it->second);
    result.chain.push_back(std::move(node));
  }

  return result;
}

// Describes the tentatively-bound chain to the optimizer, using the
// props chunnel authors declare on their implementations.
std::vector<OptStage> to_opt_stages(const NegotiationResult& bound) {
  std::vector<OptStage> stages;
  for (auto& info : describe_stages(bound.chain))
    stages.push_back(std::move(info.opt));
  return stages;
}

// Rebuilds a spec chain from an optimizer plan: surviving types reuse
// their original specs; a merged type absorbs the args of the originals
// it replaced (consumed in order).
std::vector<ChunnelSpec> specs_from_plan(
    const std::vector<ChunnelSpec>& original,
    const std::vector<OptStage>& plan) {
  std::vector<bool> used(original.size(), false);
  auto take = [&](const std::string& type) -> const ChunnelSpec* {
    for (size_t i = 0; i < original.size(); i++)
      if (!used[i] && original[i].type == type) {
        used[i] = true;
        return &original[i];
      }
    return nullptr;
  };
  std::vector<ChunnelSpec> out;
  for (const auto& stage : plan) {
    if (const ChunnelSpec* spec = take(stage.type)) {
      out.push_back(*spec);
      continue;
    }
    // A merged stage: absorb the args of every remaining original (the
    // merged impl needs e.g. the cipher key the encrypt node carried).
    ChunnelSpec merged(stage.type);
    for (size_t i = 0; i < original.size(); i++)
      if (!used[i]) merged.args = merged.args.merged_with(original[i].args);
    out.push_back(std::move(merged));
  }
  return out;
}

}  // namespace

std::vector<StageInfo> describe_stages(
    const std::vector<NegotiatedNode>& chain) {
  std::vector<StageInfo> out;
  out.reserve(chain.size());
  for (const auto& node : chain) {
    StageInfo s;
    s.type = node.type;
    s.impl_name = node.impl_name;
    s.args = node.args;
    s.opt.type = node.type;
    s.opt.offloadable = node.args.get_or("offloadable", "false") == "true";
    char* end = nullptr;
    std::string sf = node.args.get_or("size_factor", "1");
    double f = std::strtod(sf.c_str(), &end);
    s.opt.size_factor = (end && *end == '\0' && f > 0) ? f : 1.0;
    std::string csv = node.args.get_or("commutes_with", "");
    size_t start = 0;
    while (start < csv.size()) {
      size_t comma = csv.find(',', start);
      std::string item = csv.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      if (!item.empty()) s.opt.commutes_with.insert(item);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    out.push_back(std::move(s));
  }
  return out;
}

Result<NegotiationResult> negotiate_server(
    const std::vector<ChunnelSpec>& server_chain, const HelloMsg& hello,
    const Registry& registry, DiscoveryClient& discovery, const Policy& policy,
    const std::map<std::string, ChunnelArgs>& advertisements,
    const std::string& server_host_id, const DagOptimizer* optimizer) {
  // DAG compatibility: the server's chain is authoritative (Listing 5's
  // client specifies no chunnels); a non-empty client DAG must agree on
  // the type sequence.
  if (!hello.dag.empty_dag()) {
    auto client_chain_r = hello.dag.as_chain();
    if (!client_chain_r.ok())
      return err(Errc::incompatible, "client dag is not a chain");
    const auto& cc = client_chain_r.value();
    if (cc.size() != server_chain.size())
      return err(Errc::incompatible, "client/server dag length mismatch");
    for (size_t i = 0; i < cc.size(); i++)
      if (cc[i].type != server_chain[i].type)
        return err(Errc::incompatible,
                   "dag type mismatch at position " + std::to_string(i) +
                       ": client=" + cc[i].type +
                       " server=" + server_chain[i].type);
  }

  const bool same_host = hello.host_id == server_host_id;

  BERTHA_TRY_ASSIGN(result, select_chain(server_chain, hello, registry,
                                         discovery, policy, advertisements,
                                         same_host));
  if (!optimizer) return std::move(result);

  // §6: rewrite the tentatively-bound pipeline (reorder to hug the NIC,
  // merge into combined offloads) and re-bind. Keep the rewrite only if
  // the types actually changed and every rewritten node still binds.
  auto plan_r = optimizer->optimize(to_opt_stages(result));
  if (!plan_r.ok()) return std::move(result);
  const PipelinePlan& plan = plan_r.value();

  bool changed = plan.stages.size() != result.chain.size();
  for (size_t i = 0; !changed && i < plan.stages.size(); i++)
    changed = plan.stages[i].type != result.chain[i].type;
  if (!changed) return std::move(result);

  auto rewritten_specs = specs_from_plan(server_chain, plan.stages);
  auto rebound = select_chain(rewritten_specs, hello, registry, discovery,
                              policy, advertisements, same_host);
  if (!rebound.ok()) {
    BLOG(info, "negotiate") << "dag rewrite abandoned: "
                            << rebound.error().to_string();
    return std::move(result);
  }
  for (const auto& what : plan.applied)
    BLOG(info, "negotiate") << "dag rewrite: " << what;
  for (uint64_t id : result.resource_allocs) (void)discovery.release(id);
  return rebound;
}

// --- live renegotiation ---

Result<RenegotiationResult> renegotiate_server(
    const std::vector<ChunnelSpec>& server_chain,
    const std::vector<NegotiatedNode>& current,
    const std::vector<NodeAlloc>& current_allocs, const HelloMsg& hello,
    const Registry& registry, DiscoveryClient& discovery, const Policy& policy,
    const std::map<std::string, ChunnelArgs>& advertisements,
    const std::string& server_host_id,
    const std::vector<std::pair<std::string, std::string>>& banned,
    const DagOptimizer* optimizer) {
  RenegotiationResult unchanged;
  unchanged.chain = current;
  unchanged.kept_allocs = current_allocs;

  bool positional = current.size() == server_chain.size();
  for (size_t i = 0; positional && i < current.size(); i++)
    positional = current[i].type == server_chain[i].type;

  // An optimizer-rewritten incumbent chain: without an optimizer the
  // binding is kept for life (the pre-synthesis behavior); with one,
  // rebuild positional specs for the *current* stage sequence from the
  // original server specs (a merged stage re-absorbs the args of the
  // originals it replaced) so the rewritten pipeline can still swap
  // implementations position by position.
  std::vector<ChunnelSpec> derived;
  const std::vector<ChunnelSpec>* specs = &server_chain;
  if (!positional) {
    if (!optimizer) return unchanged;
    std::vector<OptStage> cur_stages;
    for (auto& info : describe_stages(current))
      cur_stages.push_back(std::move(info.opt));
    derived = specs_from_plan(server_chain, cur_stages);
    specs = &derived;
  }

  const bool same_host = hello.host_id == server_host_id;
  auto is_banned = [&](const std::string& type, const std::string& name) {
    for (const auto& [t, n] : banned)
      if (t == type && n == name) return true;
    return false;
  };

  RenegotiationResult result;
  auto release_new = [&] {
    for (const auto& a : result.new_allocs) (void)discovery.release(a.alloc_id);
    result.new_allocs.clear();
  };

  // Binds one spec with no incumbent — used for stages the optimizer
  // introduces mid-life (a merged offload that only now has a usable
  // implementation). Returns the node and the reservation it made
  // (0 = the chosen implementation needed none).
  auto select_fresh = [&](const ChunnelSpec& spec)
      -> Result<std::pair<NegotiatedNode, uint64_t>> {
    static const std::vector<ImplInfo> kNoOffers;
    const std::vector<ImplInfo>* offered = &kNoOffers;
    if (auto it = hello.offers.find(spec.type); it != hello.offers.end())
      offered = &it->second;
    std::vector<ImplInfo> network_entries;
    if (auto q = discovery.query(spec.type); q.ok())
      network_entries = std::move(q).value();
    else
      result.degraded = true;
    if (discovery.degraded()) result.degraded = true;
    auto candidates =
        rank_candidates(spec, *offered, registry.infos_for(spec.type),
                        network_entries, policy, same_host);
    for (const auto& c : candidates) {
      if (is_banned(spec.type, c.info.name)) continue;
      uint64_t alloc_id = 0;
      if (!c.info.resources.empty()) {
        auto alloc = discovery.acquire(c.info.resources);
        if (!alloc.ok()) {
          BLOG(debug, "renegotiate")
              << c.info.name << " skipped: " << alloc.error().to_string();
          continue;
        }
        alloc_id = alloc.value();
      }
      NegotiatedNode node;
      node.type = spec.type;
      node.impl_name = c.info.name;
      node.args = spec.args.merged_with(ChunnelArgs(c.info.props));
      if (auto it = advertisements.find(spec.type); it != advertisements.end())
        node.args = node.args.merged_with(it->second);
      return std::make_pair(std::move(node), alloc_id);
    }
    return err(Errc::incompatible,
               "no usable implementation for chunnel type '" + spec.type + "'");
  };

  for (size_t i = 0; i < specs->size(); i++) {
    const ChunnelSpec& spec = (*specs)[i];
    const NegotiatedNode& cur = current[i];

    static const std::vector<ImplInfo> kNone;
    const std::vector<ImplInfo>* client_offered = &kNone;
    if (auto it = hello.offers.find(spec.type); it != hello.offers.end())
      client_offered = &it->second;

    std::vector<ImplInfo> network_entries;
    if (auto q = discovery.query(spec.type); q.ok())
      network_entries = std::move(q).value();
    else
      result.degraded = true;
    if (discovery.degraded()) result.degraded = true;

    auto candidates =
        rank_candidates(spec, *client_offered, registry.infos_for(spec.type),
                        network_entries, policy, same_host);

    // Walk best-first. Hitting the incumbent means nothing better is
    // usable: keep it verbatim, *without* re-acquiring the slot it
    // already holds. A higher-ranked candidate must actually reserve its
    // resources to displace the incumbent.
    const Candidate* chosen = nullptr;
    bool keep_incumbent = false;
    for (const auto& c : candidates) {
      if (is_banned(spec.type, c.info.name)) continue;
      if (c.info.name == cur.impl_name) {
        chosen = &c;
        keep_incumbent = true;
        break;
      }
      if (c.info.resources.empty()) {
        chosen = &c;
        break;
      }
      auto alloc = discovery.acquire(c.info.resources);
      if (alloc.ok()) {
        result.new_allocs.push_back({i, alloc.value()});
        chosen = &c;
        break;
      }
      BLOG(debug, "renegotiate")
          << c.info.name << " skipped: " << alloc.error().to_string();
    }
    if (!chosen) {
      release_new();
      return err(Errc::incompatible,
                 "no usable implementation for chunnel type '" + spec.type +
                     "' after renegotiation");
    }

    if (keep_incumbent) {
      result.chain.push_back(cur);
      for (const auto& a : current_allocs)
        if (a.node == i) result.kept_allocs.push_back({i, a.alloc_id});
      continue;
    }

    result.changed = true;
    NegotiatedNode node;
    node.type = spec.type;
    node.impl_name = chosen->info.name;
    node.args = spec.args.merged_with(ChunnelArgs(chosen->info.props));
    if (auto it = advertisements.find(spec.type); it != advertisements.end())
      node.args = node.args.merged_with(it->second);
    result.chain.push_back(std::move(node));
    for (const auto& a : current_allocs)
      if (a.node == i) result.retired_allocs.push_back(a.alloc_id);
  }

  // Transition-aware §6 re-run: a stage-sequence rewrite that only
  // became possible mid-life (a merged offload registered, a synthesized
  // program subsuming a prefix) restages the chain before the offer goes
  // out. Surviving stages carry their nodes and slots over; introduced
  // stages bind fresh; reservations acquired this run for stages the
  // rewrite drops are released immediately (superseded — they never
  // carried traffic) while dropped incumbents' slots retire under the
  // drain-before-release invariant.
  if (optimizer) {
    std::vector<OptStage> stages;
    for (auto& info : describe_stages(result.chain))
      stages.push_back(std::move(info.opt));
    auto plan_r = optimizer->optimize(std::move(stages));
    if (plan_r.ok()) {
      const PipelinePlan& plan = plan_r.value();
      bool rewritten = plan.stages.size() != result.chain.size();
      for (size_t i = 0; !rewritten && i < plan.stages.size(); i++)
        rewritten = plan.stages[i].type != result.chain[i].type;
      if (rewritten) {
        auto rewritten_specs = specs_from_plan(*specs, plan.stages);
        RenegotiationResult out;
        out.degraded = result.degraded;
        out.retired_allocs = result.retired_allocs;
        std::vector<bool> used(result.chain.size(), false);
        std::vector<uint64_t> staged_here;  // rolled back if the restage aborts
        bool aborted = false;
        for (size_t j = 0; j < plan.stages.size(); j++) {
          size_t i = result.chain.size();
          for (size_t k = 0; k < result.chain.size(); k++)
            if (!used[k] && result.chain[k].type == plan.stages[j].type) {
              i = k;
              break;
            }
          if (i < result.chain.size()) {  // surviving stage: carry over
            used[i] = true;
            out.chain.push_back(result.chain[i]);
            for (const auto& a : result.kept_allocs)
              if (a.node == i) out.kept_allocs.push_back({j, a.alloc_id});
            for (const auto& a : result.new_allocs)
              if (a.node == i) out.new_allocs.push_back({j, a.alloc_id});
            continue;
          }
          auto fresh = select_fresh(rewritten_specs[j]);
          if (!fresh.ok()) {  // rewrite unusable: keep the phase-1 chain
            BLOG(info, "renegotiate")
                << "restage abandoned: " << fresh.error().to_string();
            aborted = true;
            break;
          }
          auto [node, alloc_id] = std::move(fresh).value();
          out.chain.push_back(std::move(node));
          if (alloc_id != 0) {
            out.new_allocs.push_back({j, alloc_id});
            staged_here.push_back(alloc_id);
          }
        }
        if (aborted) {
          for (uint64_t id : staged_here) (void)discovery.release(id);
        } else {
          for (size_t i = 0; i < result.chain.size(); i++) {
            if (used[i]) continue;
            for (const auto& a : result.new_allocs)
              if (a.node == i) (void)discovery.release(a.alloc_id);
            for (const auto& a : result.kept_allocs)
              if (a.node == i) out.retired_allocs.push_back(a.alloc_id);
          }
          for (const auto& what : plan.applied)
            BLOG(info, "renegotiate") << "restage: " << what;
          out.changed = true;
          result = std::move(out);
        }
      }
    }
  }

  if (!result.changed) return unchanged;
  return result;
}

}  // namespace bertha
