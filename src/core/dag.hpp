// The Chunnel DAG (paper §3.1).
//
// An application specifies the processing applied to a connection's data
// as a directed acyclic graph of Chunnel specs. The common case is a
// chain — the paper's `wrap!(A(arg) |> B(...))` — built here with
// `wrap({...})`; general DAGs are supported for validation and for
// branch/merge chunnel types that embed sub-graphs in their args
// (mirroring the paper: "branching and merging operations are performed
// through the use of specific Chunnel types").
//
// Node 0 of a chain is the *outermost* chunnel: first applied on send,
// last on recv.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/chunnel.hpp"

namespace bertha {

// One node: a chunnel type, its instance args, and an optional scoping
// constraint restricting where the chosen implementation may run.
struct ChunnelSpec {
  std::string type;
  ChunnelArgs args;
  std::optional<Scope> scope_constraint;

  ChunnelSpec() = default;
  explicit ChunnelSpec(std::string t, ChunnelArgs a = ChunnelArgs(),
                       std::optional<Scope> sc = std::nullopt)
      : type(std::move(t)), args(std::move(a)), scope_constraint(sc) {}

  bool operator==(const ChunnelSpec& o) const {
    return type == o.type && args == o.args &&
           scope_constraint == o.scope_constraint;
  }
};

class ChunnelDag {
 public:
  ChunnelDag() = default;

  // A linear pipeline: specs[0] |> specs[1] |> ... (specs[0] outermost).
  static ChunnelDag chain(std::vector<ChunnelSpec> specs);
  static ChunnelDag empty() { return ChunnelDag(); }

  // Incremental construction for non-chain graphs.
  size_t add_node(ChunnelSpec spec);
  Result<void> add_edge(size_t from, size_t to);

  size_t size() const { return nodes_.size(); }
  bool empty_dag() const { return nodes_.empty(); }
  const std::vector<ChunnelSpec>& nodes() const { return nodes_; }
  const std::vector<std::pair<size_t, size_t>>& edges() const { return edges_; }

  // Structural checks: edge indices in range, acyclic, no duplicate
  // edges, no self loops.
  Result<void> validate() const;

  // True iff the graph is a single path covering all nodes (or empty).
  bool is_chain() const;

  // Topological order of a chain DAG; fails if not a chain.
  Result<std::vector<ChunnelSpec>> as_chain() const;

  // True when both DAGs have the same chunnel *type* sequence (args may
  // differ) — the compatibility test negotiation uses.
  bool same_types(const ChunnelDag& other) const;

  // "A(k=v) |> B" for chains, "dag(n=3,e=2)" otherwise.
  std::string to_string() const;

  bool operator==(const ChunnelDag& o) const {
    return nodes_ == o.nodes_ && edges_ == o.edges_;
  }

 private:
  std::vector<ChunnelSpec> nodes_;
  std::vector<std::pair<size_t, size_t>> edges_;
};

// Ergonomic chain builder, the analogue of the prototype's wrap! macro:
//   auto dag = wrap(ChunnelSpec("serialize"), ChunnelSpec("reliable"));
template <typename... Specs>
ChunnelDag wrap(Specs... specs) {
  std::vector<ChunnelSpec> v;
  (v.push_back(std::move(specs)), ...);
  return ChunnelDag::chain(std::move(v));
}

// --- Serde ---

template <>
struct Serde<ChunnelSpec> {
  static void put(Writer& w, const ChunnelSpec& s) {
    w.put_string(s.type);
    serde_put(w, s.args);
    w.put_bool(s.scope_constraint.has_value());
    if (s.scope_constraint)
      w.put_u8(static_cast<uint8_t>(*s.scope_constraint));
  }
  static Result<ChunnelSpec> get(Reader& r) {
    ChunnelSpec out;
    BERTHA_TRY_ASSIGN(type, r.get_string());
    BERTHA_TRY_ASSIGN(args, serde_get<ChunnelArgs>(r));
    BERTHA_TRY_ASSIGN(has_scope, r.get_bool());
    out.type = std::move(type);
    out.args = std::move(args);
    if (has_scope) {
      BERTHA_TRY_ASSIGN(sc, r.get_u8());
      if (sc > static_cast<uint8_t>(Scope::global))
        return err(Errc::protocol_error, "bad scope constraint");
      out.scope_constraint = static_cast<Scope>(sc);
    }
    return out;
  }
};

template <>
struct Serde<ChunnelDag> {
  static void put(Writer& w, const ChunnelDag& d);
  static Result<ChunnelDag> get(Reader& r);
};

}  // namespace bertha
