// CachingDiscovery: degraded-mode decorator over any DiscoveryClient.
//
// The paper's premise is that host-software fallbacks always exist, so an
// unreachable discovery service must not fail connection establishment.
// This wrapper keeps the last-known catalogue per chunnel type; while the
// inner client reports transient failures (unavailable / timed_out /
// connection_failed) queries are served from that cache — or, with a cold
// cache, as an empty success so negotiation binds the locally registered
// software fallbacks. The wrapper marks itself degraded() (negotiation
// records this on the connection), probes the service in the background,
// and on recovery injects a synthetic impl_registered watch event so the
// transition controller re-runs full negotiation and upgrades degraded
// connections automatically.
//
// Degraded-mode writes: unleased register_impl mutations issued while the
// service is unreachable are queued (latest-wins per type+name), folded
// into the cached catalogue so degraded queries see them, and replayed on
// the degraded -> healthy edge — the unleased analogue of the lease
// heartbeat's lost-lease replay. Each replayed mutation emits a trace
// span (discovery.replay_write).
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/discovery.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace bertha {

// The `name` on the synthetic recovery event delivered to unfiltered
// watchers when the service comes back.
inline constexpr const char* kDiscoveryRecoveredEvent =
    "(discovery-recovered)";

class CachingDiscovery final : public DiscoveryClient {
 public:
  struct Options {
    // Background probe period while degraded.
    Duration probe_period = ms(100);
    // Chunnel type the recovery probe queries (any type works; the probe
    // only cares whether the service answers).
    std::string probe_type = "probe";
    // Optional observability: degraded entry/exit + queued/replayed write
    // spans, and queued_writes/replayed_writes counters.
    TracerPtr tracer;
    MetricsPtr metrics;
  };

  CachingDiscovery(DiscoveryPtr inner, Options opts,
                   FaultStatsPtr stats = nullptr);
  explicit CachingDiscovery(DiscoveryPtr inner)
      : CachingDiscovery(std::move(inner), Options{}, nullptr) {}
  ~CachingDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  // Returns a local watcher that receives the inner client's events (when
  // the inner watch is supported) plus the synthetic recovery event.
  // Unlike RemoteDiscovery, an empty filter is accepted: the inner watch
  // is then skipped and the watcher sees recovery events only.
  Result<WatcherPtr> watch(const std::string& type_filter) override;

  bool degraded() const override;
  DiscoveryClient& inner() { return *inner_; }

  // Writes queued for replay on recovery (degraded mode only).
  size_t pending_writes() const;

 private:
  struct PendingWrite {
    ImplInfo info;
  };
  static bool transient(const Error& e) {
    return e.code == Errc::unavailable || e.code == Errc::timed_out ||
           e.code == Errc::connection_failed;
  }
  // Updates the degraded state machine from an inner-call outcome;
  // delivers the recovery event on a degraded -> healthy edge. Call with
  // mu_ NOT held.
  void note(bool healthy);
  void probe_loop();
  void forward_loop(WatcherPtr inner_w, WatcherPtr local);
  // Folds a forwarded event batch into the cached catalogue so a
  // degraded -> recovered client is caught up by the stream's seq-resume
  // instead of re-priming every type with fresh queries.
  void apply_events(const std::vector<WatchEvent>& events);

  DiscoveryPtr inner_;
  Options opts_;
  FaultStatsPtr stats_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<ImplInfo>> catalogue_;
  std::vector<PendingWrite> pending_writes_;
  bool degraded_ = false;
  uint64_t seq_ = 0;
  std::vector<std::weak_ptr<DiscoveryWatcher>> watchers_;
  std::vector<std::pair<WatcherPtr, std::thread>> forwarders_;
  bool stopping_ = false;
  std::condition_variable probe_cv_;
  std::thread probe_thread_;
};

}  // namespace bertha
