// Bertha wire framing.
//
// Every datagram a Bertha endpoint sends or receives carries an 11-byte
// header: 2 magic bytes, a message kind, and a 64-bit connection token.
// Connections are demultiplexed *by token*, not by peer address — this is
// what lets a connection migrate between transports (e.g. the local
// fast-path chunnel switching from UDP to a unix socket mid-lifetime
// without renegotiating, Fig 3/4): the server simply updates its reply
// path to wherever the last data packet for that token arrived from.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

enum class MsgKind : uint8_t {
  hello = 1,      // client -> server: DAG + offers (token 0)
  accept = 2,     // server -> client: negotiated stack + assigned token
  reject = 3,     // server -> client: negotiation failed
  data = 4,       // either direction, payload is application data
  close = 5,      // either direction, best-effort teardown notice
  discovery = 6,  // discovery service request/response (token 0)
  // Live renegotiation (core/renegotiation.hpp). A transition offer is
  // sent on the connection's *current* token and carries the next
  // epoch's chain plus the token that epoch will use; the ack flows
  // back on the new token so the server learns the new reply path.
  transition = 7,      // server -> client: epoch cutover offer
  transition_ack = 8,  // client -> server: accept/decline of an offer
  // server -> client: the offer for `epoch` was rolled back; discard any
  // staged stack and revert to the previous epoch. Sent on the old token
  // when the ack deadline passes without an ack (the client may have cut
  // over and acked into a void — this tells it to come back).
  transition_cancel = 9,
  // Server-push watch streams (core/discovery.hpp). A subscribe carries
  // the subscription id as its token; the service then pushes event_batch
  // frames on that token until an unsubscribe (or the client vanishes).
  // An old server that predates these kinds silently ignores them, which
  // is what lets RemoteDiscovery fall back to poll-and-diff.
  subscribe = 10,    // client -> server: open/resume a watch stream
  unsubscribe = 11,  // client -> server: close a watch stream
  event_batch = 12,  // server -> client: coalesced watch events
};

inline constexpr uint8_t kMagic0 = 'B';
inline constexpr uint8_t kMagic1 = 'H';
inline constexpr size_t kWireHeaderSize = 11;

struct Frame {
  MsgKind kind;
  uint64_t token;
  BytesView payload;  // view into the input buffer
};

// header + payload -> datagram bytes.
Bytes encode_frame(MsgKind kind, uint64_t token, BytesView payload);

// Parse a datagram; the returned payload view aliases `datagram`.
Result<Frame> decode_frame(BytesView datagram);

}  // namespace bertha
