// Chunnel implementation interface and metadata (paper §2, §4.2).
//
// A *Chunnel type* (e.g. "shard", "reliable") names a piece of
// application-relevant communication functionality. A *ChunnelImpl* is
// one concrete implementation of a type ("shard/xdp", "shard/client-push",
// "shard/fallback"); several may be registered and the runtime binds one
// per connection at establishment via negotiation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/connection.hpp"
#include "net/transport.hpp"
#include "serialize/codec.hpp"

namespace bertha {

// Where an implementation may run relative to the application (§4.2,
// Table 1). Wider scopes admit narrower placements.
enum class Scope : uint8_t {
  application = 0,  // same process as the application
  host = 1,         // same machine (e.g. an XDP program, a unix socket path)
  rack = 2,         // nearby network device (e.g. ToR switch)
  global = 3,       // anywhere
};

// Which ends of a connection must have the implementation available
// (§4.2: "whether the Chunnel requires functionality at both ends").
enum class EndpointConstraint : uint8_t { client = 0, server = 1, both = 2 };

// Which half of a connection a wrap() call is building.
enum class Role : uint8_t { client = 0, server = 1 };

std::string_view scope_name(Scope s);
std::string_view endpoint_constraint_name(EndpointConstraint e);

// String key/value arguments for a chunnel instance. Applications set
// them in the DAG (Listing 4's shard list / shard function); server-side
// chunnels merge advertised values in during negotiation (e.g. the local
// fast path advertising its unix socket address).
class ChunnelArgs {
 public:
  ChunnelArgs() = default;
  explicit ChunnelArgs(std::map<std::string, std::string> kv)
      : kv_(std::move(kv)) {}

  void set(const std::string& key, std::string value) {
    kv_[key] = std::move(value);
  }
  void set_u64(const std::string& key, uint64_t v) { set(key, std::to_string(v)); }

  bool has(const std::string& key) const { return kv_.count(key) > 0; }
  Result<std::string> get(const std::string& key) const;
  Result<uint64_t> get_u64(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  uint64_t get_u64_or(const std::string& key, uint64_t fallback) const;

  // Overlay: values in `other` win.
  ChunnelArgs merged_with(const ChunnelArgs& other) const;

  const std::map<std::string, std::string>& raw() const { return kv_; }
  bool operator==(const ChunnelArgs& o) const { return kv_ == o.kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

// Resource demand of an implementation, charged against a named pool in
// the discovery service (§6 "Scheduling and Placement": a P4 switch with
// capacity for one program).
struct ResourceReq {
  std::string pool;
  uint64_t amount = 1;
  bool operator==(const ResourceReq& o) const {
    return pool == o.pool && amount == o.amount;
  }
};

// Metadata describing one implementation of a chunnel type. This is what
// discovery stores and negotiation reasons about.
struct ImplInfo {
  std::string type;       // chunnel type, e.g. "shard"
  std::string name;       // implementation, e.g. "shard/xdp"
  Scope scope = Scope::global;
  EndpointConstraint endpoints = EndpointConstraint::both;
  int32_t priority = 0;   // higher = preferred (hw/kernel-bypass > software)
  std::vector<ResourceReq> resources;
  // True for pure factories: code that can *instantiate* the
  // implementation but is only usable against an instance advertised by
  // the discovery service (e.g. the switch-sequencer client/server
  // halves, which need a concrete group address). Factory-only impls
  // are never offered as candidates themselves.
  bool factory_only = false;
  // Free-form properties (advertised offload parameters, optimizer hints
  // such as "device" or "merges_with").
  std::map<std::string, std::string> props;

  bool operator==(const ImplInfo& o) const {
    return type == o.type && name == o.name && scope == o.scope &&
           endpoints == o.endpoints && priority == o.priority &&
           resources == o.resources && factory_only == o.factory_only &&
           props == o.props;
  }
};

// --- Contexts handed to chunnel implementations by the runtime ---

// Passed to on_listen() when a server endpoint with this chunnel type in
// its DAG starts listening. Lets the impl attach extra listen transports
// (the unix-socket fast path) and advertise parameters that will be
// merged into the args of every negotiated connection.
struct ListenContext {
  Addr listen_addr;
  std::string host_id;
  TransportFactory* transports = nullptr;
  ChunnelArgs app_args;  // the args the application put in the DAG node
  std::function<Result<void>(TransportPtr)> add_listen_transport;
  std::function<void(std::string, std::string)> advertise;
};

// Liveness timestamps for one logical connection, shared across epoch
// cutovers: a keepalive chunnel rebuilt for a new epoch seeds its timers
// from here instead of restarting at "now", so a peer that died
// mid-transition is still detected within the original dead_after
// budget. Values are steady-clock nanos (TimePoint::time_since_epoch);
// 0 means "not yet recorded".
struct ConnLiveness {
  std::atomic<int64_t> last_heard{0};
  std::atomic<int64_t> last_sent{0};
};

using ConnLivenessPtr = std::shared_ptr<ConnLiveness>;

class TimerWheel;  // io/timer_wheel.hpp

// Passed to wrap() when building one side of a negotiated connection.
struct WrapContext {
  Role role = Role::client;
  ChunnelArgs args;  // app args merged with server advertisements
  std::string local_host_id;
  std::string peer_host_id;
  uint64_t token = 0;  // connection token assigned by the server
  // Server side: the listener's primary address (lets an impl find the
  // per-listener state it created in on_listen).
  Addr listen_addr;
  TransportFactory* transports = nullptr;
  // Client side only: atomically switch the connection's base transport
  // and destination (how the local fast path moves to a unix socket).
  // Null on the server side.
  std::function<Result<void>(TransportPtr, Addr)> rebase;
  // Per-logical-connection liveness state, carried across transitions
  // (null when the endpoint layer doesn't track it, e.g. raw stacks
  // built in tests).
  ConnLivenessPtr liveness;
  // Shared timer wheel for liveness deadlines (io/timer_wheel.hpp).
  // Chunnels that need periodic work (keepalive beats) arm wheel timers
  // instead of spawning a thread per connection; null reverts them to
  // the per-connection-thread path.
  std::shared_ptr<TimerWheel> wheel;
};

// One implementation of a chunnel type. Thread-safe: a single instance
// serves many connections.
class ChunnelImpl {
 public:
  virtual ~ChunnelImpl() = default;

  virtual const ImplInfo& info() const = 0;

  // System/network configuration hook run when the implementation is
  // first put in service (§4.2: "call operating system tools (e.g.
  // ethtool) or invoke APIs on orchestrators and SDN controllers").
  // Implementations here log the equivalent action and configure the
  // simulated devices.
  virtual Result<void> init() { return ok(); }
  virtual void teardown() {}

  // Server-endpoint setup (once per listener, not per connection).
  virtual Result<void> on_listen(ListenContext& ctx) {
    (void)ctx;
    return ok();
  }

  // Build this chunnel's half of a connection around `inner`.
  virtual Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) = 0;
};

using ChunnelImplPtr = std::shared_ptr<ChunnelImpl>;

// --- Serde for the wire (negotiation & discovery messages) ---

template <>
struct Serde<ResourceReq> {
  static void put(Writer& w, const ResourceReq& r) {
    w.put_string(r.pool);
    w.put_varint(r.amount);
  }
  static Result<ResourceReq> get(Reader& r) {
    ResourceReq out;
    BERTHA_TRY_ASSIGN(pool, r.get_string());
    BERTHA_TRY_ASSIGN(amount, r.get_varint());
    out.pool = std::move(pool);
    out.amount = amount;
    return out;
  }
};

template <>
struct Serde<ImplInfo> {
  static void put(Writer& w, const ImplInfo& i) {
    w.put_string(i.type);
    w.put_string(i.name);
    w.put_u8(static_cast<uint8_t>(i.scope));
    w.put_u8(static_cast<uint8_t>(i.endpoints));
    w.put_svarint(i.priority);
    serde_put(w, i.resources);
    w.put_bool(i.factory_only);
    serde_put(w, i.props);
  }
  static Result<ImplInfo> get(Reader& r) {
    ImplInfo out;
    BERTHA_TRY_ASSIGN(type, r.get_string());
    BERTHA_TRY_ASSIGN(name, r.get_string());
    BERTHA_TRY_ASSIGN(scope, r.get_u8());
    if (scope > static_cast<uint8_t>(Scope::global))
      return err(Errc::protocol_error, "bad scope");
    BERTHA_TRY_ASSIGN(ep, r.get_u8());
    if (ep > static_cast<uint8_t>(EndpointConstraint::both))
      return err(Errc::protocol_error, "bad endpoint constraint");
    BERTHA_TRY_ASSIGN(prio, r.get_svarint());
    BERTHA_TRY_ASSIGN(res, (serde_get<std::vector<ResourceReq>>(r)));
    BERTHA_TRY_ASSIGN(factory_only, r.get_bool());
    BERTHA_TRY_ASSIGN(props, (serde_get<std::map<std::string, std::string>>(r)));
    out.type = std::move(type);
    out.name = std::move(name);
    out.scope = static_cast<Scope>(scope);
    out.endpoints = static_cast<EndpointConstraint>(ep);
    out.priority = static_cast<int32_t>(prio);
    out.resources = std::move(res);
    out.factory_only = factory_only;
    out.props = std::move(props);
    return out;
  }
};

template <>
struct Serde<ChunnelArgs> {
  static void put(Writer& w, const ChunnelArgs& a) { serde_put(w, a.raw()); }
  static Result<ChunnelArgs> get(Reader& r) {
    BERTHA_TRY_ASSIGN(kv, (serde_get<std::map<std::string, std::string>>(r)));
    return ChunnelArgs(std::move(kv));
  }
};

}  // namespace bertha
