// SimSwitch: a simulated programmable (Tofino-style) switch.
//
// Stands in for the in-network sequencer hardware of NOPaxos/Speculative
// Paxos that the ordered_mcast chunnel offloads to (paper §3.2,
// "Network-Assisted Consensus"). The switch:
//
//  * owns a bounded number of sequencer and match-action program slots
//    (the §6 scheduling example: "the switch only has capacity for one"),
//  * installs hardware-sequenced multicast groups into a SimNet (the
//    actual stamping happens in SimNet's delivery path, modeling the
//    switch ASIC rewriting packets at line rate with no extra hop),
//  * executes synthesized ProgramIR match-action programs (src/synth/)
//    in those slots — the compiled form of negotiated chunnel prefixes,
//  * advertises each installed group to the Bertha discovery service as
//    an "ordered_mcast/switch" implementation with the group address in
//    its props.
#pragma once

#include <memory>
#include <mutex>

#include "core/discovery.hpp"
#include "net/simnet.hpp"
#include "sim/ir_exec.hpp"
#include "trace/metrics.hpp"

namespace bertha {

class SimSwitch : public std::enable_shared_from_this<SimSwitch> {
 public:
  struct Config {
    std::string name = "switch0";
    uint64_t sequencer_slots = 1;
    uint64_t match_action_slots = 4;
    // Per-connection flow-table capacity. Implementations that steer on
    // this switch (synthesized or hand-registered) list one flow entry
    // in their ResourceReqs, so every negotiated binding reserves one —
    // and every rolled-back or revoked binding must release it.
    uint64_t flow_entries = 1024;
  };

  // Creates the switch and its resource pools in the discovery service.
  // Shared ownership so metrics providers and offload handles can keep
  // the switch alive while they reference its programs.
  static Result<std::shared_ptr<SimSwitch>> create(
      std::shared_ptr<SimNet> net, DiscoveryPtr discovery, Config cfg);

  // Installs a hardware-sequenced multicast group, consuming one
  // sequencer slot. Fails with resource_exhausted when the switch is
  // full. On success the group is registered with discovery and packets
  // sent to the returned address reach every member stamped with a
  // global sequence number starting at `initial_seq` — when taking over
  // an existing group from another sequencer, pass its next sequence
  // number so replicas see a continuous stream (the view-change duty a
  // real consensus protocol performs).
  Result<Addr> install_sequencer_group(const std::string& group, uint16_t port,
                                       std::vector<Addr> members,
                                       uint64_t initial_seq = 0);

  // Removes the group, releases its slot and discovery entry.
  Result<void> remove_sequencer_group(const std::string& group, uint16_t port);

  // Installs a generic match-action steering program on a virtual
  // address (the P4 model: packets to the VIP are redirected in transit
  // by `steer`, no extra hop), consuming one match-action slot. Callers
  // that want the offload negotiable also register a discovery entry —
  // see install_switch_shard_offload in chunnels/shard.hpp for the
  // paper's Fig-1 "P4 Sharding Implementation".
  Result<Addr> install_match_action(
      const std::string& vip, uint16_t port,
      std::function<Result<Addr>(BytesView)> steer);
  Result<void> remove_match_action(const std::string& vip, uint16_t port);

  // --- Synthesized programs (src/synth/, DESIGN.md §11) ---
  // Installs a compiled ProgramIR at ir.vip, consuming one slot of the
  // kind the program needs (match-action stage or the sequencer
  // register). The program is validated and its destination table
  // parsed before the slot is taken; on any failure the slot is
  // released. Registration with discovery is the synthesizer's job
  // (synth/offload.hpp), mirroring install_match_action.
  Result<Addr> install_program(const ProgramIR& ir);
  Result<void> remove_program(const Addr& vip);
  // Execution counters of an installed ProgramIR (not_found otherwise).
  Result<ProgramStats> program_stats(const Addr& vip) const;
  // VIPs with a program attached (synthesized and hand-installed).
  std::vector<Addr> program_vips() const;

  uint64_t steered(const Addr& vip) const { return net_->program_hits(vip); }

  const std::string& name() const { return cfg_.name; }
  const Config& config() const { return cfg_; }
  std::string slot_pool() const { return cfg_.name + ".sequencer_slots"; }
  std::string match_action_pool() const {
    return cfg_.name + ".match_action_slots";
  }
  std::string flow_pool() const { return cfg_.name + ".flow_entries"; }
  uint64_t groups_installed() const;
  // Local slot occupancy (groups + hand-installed + synthesized), the
  // switch's own view of what discovery's pool_in_use tracks.
  uint64_t sequencer_slots_used() const;
  uint64_t match_action_slots_used() const;

 private:
  SimSwitch(std::shared_ptr<SimNet> net, DiscoveryPtr discovery, Config cfg)
      : net_(std::move(net)), discovery_(std::move(discovery)), cfg_(cfg) {}

  struct ProgramEntry {
    uint64_t alloc = 0;
    std::shared_ptr<CompiledProgram> prog;
  };

  std::shared_ptr<SimNet> net_;
  DiscoveryPtr discovery_;
  Config cfg_;
  mutable std::mutex mu_;
  // group addr -> discovery impl name + slot allocation id
  std::map<Addr, std::pair<std::string, uint64_t>> groups_;
  // vip addr -> slot allocation id (hand-installed steer closures)
  std::map<Addr, uint64_t> match_actions_;
  // vip addr -> synthesized program + its slot allocation
  std::map<Addr, ProgramEntry> programs_;
};

// Folds the switch's state into metric snapshots: per-VIP steered()
// counts, per-program match/miss/dup counters, and slot occupancy
// gauges (used + capacity per pool). Satellite of DESIGN.md §11.
void attach_simswitch_metrics_provider(MetricsRegistry& m,
                                       std::shared_ptr<SimSwitch> sw);

}  // namespace bertha
