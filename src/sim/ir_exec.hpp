// ProgramIR execution for the SimSwitch (DESIGN.md §11).
//
// compile_program turns a validated ProgramIR into the closure SimNet
// runs on its delivery path. The closure is pure computation over one
// datagram plus the small mutable state a real pipeline would keep in
// registers: the dedup seen-window and the sequencer counter. It runs
// under SimNet's lock (single delivery thread), never calls back into
// SimNet, and answers with a ProgramAction or an error — an error is a
// table miss or a duplicate and means "drop", never "mis-steer".
#pragma once

#include <unordered_set>

#include "net/simnet.hpp"
#include "synth/ir.hpp"

namespace bertha {

// Observable state of one running program (tests, metrics).
struct ProgramStats {
  uint64_t matched = 0;   // packets that parsed and were forwarded
  uint64_t missed = 0;    // match failures (not this program's traffic)
  uint64_t dups = 0;      // drop_dup suppressions
  uint64_t next_seq = 0;  // sequencer programs: next stamp to assign
};

class CompiledProgram : public std::enable_shared_from_this<CompiledProgram> {
 public:
  // Validates + compiles. Table addresses are parsed here, so a program
  // with an unparsable destination fails at install time, not per-packet.
  static Result<std::shared_ptr<CompiledProgram>> compile(
      const ProgramIR& ir);

  // The closure to hand to SimNet::install_program. Holds a shared_ptr
  // to this program, so the program outlives removal races.
  std::function<Result<SimNet::ProgramAction>(BytesView)> action();

  ProgramStats stats() const;
  const ProgramIR& ir() const { return ir_; }

 private:
  explicit CompiledProgram(ProgramIR ir) : ir_(std::move(ir)) {}

  Result<SimNet::ProgramAction> run(BytesView payload);

  ProgramIR ir_;
  std::vector<Addr> table_;
  mutable std::mutex mu_;
  ProgramStats stats_;                 // guarded by mu_
  std::vector<uint64_t> seen_order_;   // dedup ring, guarded by mu_
  size_t seen_next_ = 0;
  std::unordered_set<uint64_t> seen_;  // guarded by mu_
  uint64_t dedup_window_ = 0;
};

}  // namespace bertha
