#include "sim/simnic.hpp"

namespace bertha {

Result<std::unique_ptr<SimNic>> SimNic::create(DiscoveryPtr discovery,
                                               Config cfg) {
  if (!discovery) return err(Errc::invalid_argument, "SimNic needs discovery");
  auto nic =
      std::unique_ptr<SimNic>(new SimNic(std::move(discovery), cfg));
  BERTHA_TRY(nic->discovery_->set_pool(nic->crypto_pool(), cfg.crypto_engines));
  return nic;
}

Result<void> SimNic::advertise_offloads() {
  ImplInfo crypt;
  crypt.type = "encrypt";
  crypt.name = "encrypt/nic";
  crypt.scope = Scope::host;
  crypt.endpoints = EndpointConstraint::server;
  crypt.priority = 10;
  crypt.resources = {ResourceReq{crypto_pool(), 1}};
  crypt.props["device"] = cfg_.name;
  crypt.props["offloadable"] = "true";
  BERTHA_TRY(discovery_->register_impl(crypt));

  ImplInfo tcp;
  tcp.type = "tcpish";
  tcp.name = "tcpish/nic";
  tcp.scope = Scope::host;
  tcp.endpoints = EndpointConstraint::server;
  tcp.priority = 10;
  tcp.props["device"] = cfg_.name;
  tcp.props["offloadable"] = "true";
  BERTHA_TRY(discovery_->register_impl(tcp));

  ImplInfo tls;
  tls.type = "tls";
  tls.name = "tls/nic";
  tls.scope = Scope::host;
  tls.endpoints = EndpointConstraint::server;
  tls.priority = 15;  // the merged engine is preferred when usable
  tls.resources = {ResourceReq{crypto_pool(), 1}};
  tls.props["device"] = cfg_.name;
  tls.props["offloadable"] = "true";
  BERTHA_TRY(discovery_->register_impl(tls));
  return ok();
}

Duration SimNic::record_pcie_transfer(size_t bytes) {
  pcie_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  pcie_transfers_.fetch_add(1, std::memory_order_relaxed);
  auto per_byte = cfg_.pcie_per_kib.count() / 1024.0;
  return cfg_.pcie_setup +
         Duration(static_cast<int64_t>(per_byte * static_cast<double>(bytes)));
}

}  // namespace bertha
