#include "sim/ir_exec.hpp"

#include "util/hash.hpp"

namespace bertha {

Result<std::shared_ptr<CompiledProgram>> CompiledProgram::compile(
    const ProgramIR& ir) {
  BERTHA_TRY(validate_program(ir));
  auto prog = std::shared_ptr<CompiledProgram>(new CompiledProgram(ir));
  prog->table_.reserve(ir.table.size());
  for (const auto& uri : ir.table) {
    BERTHA_TRY_ASSIGN(addr, Addr::parse(uri));
    prog->table_.push_back(std::move(addr));
  }
  for (const auto& in : ir.instrs)
    if (in.op == IrOp::drop_dup) prog->dedup_window_ = in.a;
  prog->stats_.next_seq = ir.initial_seq;
  return prog;
}

std::function<Result<SimNet::ProgramAction>(BytesView)>
CompiledProgram::action() {
  auto self = shared_from_this();
  return [self](BytesView b) { return self->run(b); };
}

ProgramStats CompiledProgram::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

Result<SimNet::ProgramAction> CompiledProgram::run(BytesView payload) {
  Reader r(payload);
  std::lock_guard<std::mutex> lk(mu_);
  auto miss = [&](const char* why) -> Result<SimNet::ProgramAction> {
    stats_.missed++;
    return err(Errc::protocol_error, why);
  };

  size_t strip_at = 0;  // bytes [0, strip_at) are shed on rewrite
  bool strip = false;
  bool stamp = false;
  const Addr* dst = nullptr;

  for (const IrInstr& in : ir_.instrs) {
    switch (in.op) {
      case IrOp::match_magic: {
        auto m0 = r.get_u8();
        auto m1 = r.get_u8();
        if (!m0.ok() || !m1.ok() || m0.value() != in.a || m1.value() != in.b)
          return miss("program: magic mismatch");
        break;
      }
      case IrOp::skip_fixed: {
        auto skipped = r.get_raw(in.a);
        if (!skipped.ok()) return miss("program: truncated fixed header");
        break;
      }
      case IrOp::skip_varint: {
        if (!r.get_varint().ok()) return miss("program: bad varint");
        break;
      }
      case IrOp::skip_varint_body: {
        auto len = r.get_varint();
        if (!len.ok()) return miss("program: bad length varint");
        if (!r.get_raw(len.value()).ok())
          return miss("program: truncated body");
        break;
      }
      case IrOp::hash_steer: {
        BytesView rest = r.rest();
        // Short field falls back to backend 0, matching the software
        // dispatcher's ShardArgs::pick.
        size_t idx = 0;
        if (rest.size() >= in.a + in.b && table_.size() > 1)
          idx = static_cast<size_t>(fnv1a64(rest.subspan(in.a, in.b)) %
                                    table_.size());
        dst = &table_[idx];
        break;
      }
      case IrOp::drop_dup: {
        auto id = r.get_varint();
        if (!id.ok()) return miss("program: bad msg-id");
        if (seen_.count(id.value())) {
          stats_.dups++;
          return err(Errc::protocol_error, "program: duplicate");
        }
        if (seen_order_.size() < dedup_window_) {
          seen_order_.push_back(id.value());
        } else {
          // Ring eviction: forget the oldest id (bounded switch memory).
          seen_.erase(seen_order_[seen_next_]);
          seen_order_[seen_next_] = id.value();
          seen_next_ = (seen_next_ + 1) % seen_order_.size();
        }
        seen_.insert(id.value());
        break;
      }
      case IrOp::strip_to_cursor: {
        strip_at = payload.size() - r.remaining();
        strip = true;
        break;
      }
      case IrOp::prepend_seq: {
        stamp = true;
        break;
      }
      case IrOp::forward: {
        dst = &table_[in.a];
        break;
      }
    }
  }

  // validate_program guarantees the final instruction steered.
  if (!dst) return miss("program: no destination");
  stats_.matched++;

  SimNet::ProgramAction act;
  act.dst = *dst;
  if (strip || stamp) {
    act.rewrite = true;
    BytesView body = strip ? payload.subspan(strip_at) : payload;
    act.payload.reserve(body.size() + (stamp ? 8 : 0));
    if (stamp) put_u64_le(act.payload, stats_.next_seq++);
    append(act.payload, body);
  }
  return act;
}

}  // namespace bertha
