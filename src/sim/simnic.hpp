// SimNic: a simulated SmartNIC with a PCIe cost model.
//
// Stands in for the SmartNIC offloads of paper §6: a crypto engine, a
// TCP engine, and a combined TLS engine, behind a PCIe link whose
// traffic the DAG-optimizer benchmark accounts for. It also owns a
// bounded pool of crypto engines, so negotiation exercises per-
// connection resource admission (an engine is reserved for each
// connection that binds the NIC crypto implementation).
#pragma once

#include <atomic>
#include <memory>

#include "core/discovery.hpp"
#include "util/clock.hpp"

namespace bertha {

class SimNic {
 public:
  struct Config {
    std::string name = "nic0";
    uint64_t crypto_engines = 4;
    // PCIe model: time to move one KiB across the bus (both directions
    // cost the same) plus a fixed per-transfer DMA setup cost.
    Duration pcie_per_kib = us(2);
    Duration pcie_setup = us(1);
  };

  static Result<std::unique_ptr<SimNic>> create(DiscoveryPtr discovery,
                                                Config cfg);

  // Registers the NIC's offload catalogue with discovery:
  //   encrypt/nic  (priority 10, consumes one crypto engine per conn)
  //   tcpish/nic   (priority 10)
  //   tls/nic      (priority 15; the merged encrypt+tcpish engine)
  Result<void> advertise_offloads();

  // --- PCIe accounting (used by offloaded data paths and benches) ---
  // Records a host<->NIC transfer and returns the modeled bus delay.
  Duration record_pcie_transfer(size_t bytes);
  uint64_t pcie_bytes_transferred() const {
    return pcie_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t pcie_transfers() const {
    return pcie_transfers_.load(std::memory_order_relaxed);
  }
  void reset_counters() {
    pcie_bytes_.store(0, std::memory_order_relaxed);
    pcie_transfers_.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return cfg_.name; }
  std::string crypto_pool() const { return cfg_.name + ".crypto_engines"; }

 private:
  SimNic(DiscoveryPtr discovery, Config cfg)
      : discovery_(std::move(discovery)), cfg_(cfg) {}

  DiscoveryPtr discovery_;
  Config cfg_;
  std::atomic<uint64_t> pcie_bytes_{0};
  std::atomic<uint64_t> pcie_transfers_{0};
};

}  // namespace bertha
