#include "sim/simswitch.hpp"

#include "util/log.hpp"

namespace bertha {

Result<std::shared_ptr<SimSwitch>> SimSwitch::create(
    std::shared_ptr<SimNet> net, DiscoveryPtr discovery, Config cfg) {
  if (!net || !discovery)
    return err(Errc::invalid_argument, "SimSwitch needs a net and discovery");
  auto sw = std::shared_ptr<SimSwitch>(
      new SimSwitch(std::move(net), std::move(discovery), cfg));
  BERTHA_TRY(sw->discovery_->set_pool(sw->slot_pool(), cfg.sequencer_slots));
  BERTHA_TRY(sw->discovery_->set_pool(sw->match_action_pool(),
                                      cfg.match_action_slots));
  BERTHA_TRY(sw->discovery_->set_pool(sw->flow_pool(), cfg.flow_entries));
  return sw;
}

Result<Addr> SimSwitch::install_sequencer_group(const std::string& group,
                                                uint16_t port,
                                                std::vector<Addr> members,
                                                uint64_t initial_seq) {
  // Admission: one sequencer slot per installed group.
  BERTHA_TRY_ASSIGN(alloc,
                    discovery_->acquire({ResourceReq{slot_pool(), 1}}));

  auto created = net_->create_group(group, port, members, /*hw_sequencer=*/true,
                                    initial_seq);
  if (!created.ok()) {
    (void)discovery_->release(alloc);
    return created.error();
  }
  Addr gaddr = Addr::sim(group, port);

  // Advertise the offload. The impl name is unique per group so several
  // groups can coexist; the ordered_mcast chunnel keys off props.
  ImplInfo info;
  info.type = "ordered_mcast";
  info.name = "ordered_mcast/switch:" + gaddr.to_string();
  info.scope = Scope::rack;
  info.endpoints = EndpointConstraint::server;
  info.priority = 20;  // hardware beats software sequencers
  info.props["group_addr"] = gaddr.to_string();
  info.props["sequencer"] = "switch";
  info.props["instance"] = group;  // serves only this application group
  info.props["switch"] = cfg_.name;
  auto reg = discovery_->register_impl(info);
  if (!reg.ok()) {
    net_->remove_group(group, port);
    (void)discovery_->release(alloc);
    return reg.error();
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    groups_[gaddr] = {info.name, alloc};
  }
  BLOG(info, "simswitch") << cfg_.name << " installed sequencer group "
                          << gaddr.to_string();
  return gaddr;
}

Result<void> SimSwitch::remove_sequencer_group(const std::string& group,
                                               uint16_t port) {
  Addr gaddr = Addr::sim(group, port);
  std::string impl_name;
  uint64_t alloc = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = groups_.find(gaddr);
    if (it == groups_.end())
      return err(Errc::not_found, "no such group: " + gaddr.to_string());
    impl_name = it->second.first;
    alloc = it->second.second;
    groups_.erase(it);
  }
  net_->remove_group(group, port);
  (void)discovery_->unregister_impl("ordered_mcast", impl_name);
  return discovery_->release(alloc);
}

Result<Addr> SimSwitch::install_match_action(
    const std::string& vip, uint16_t port,
    std::function<Result<Addr>(BytesView)> steer) {
  BERTHA_TRY_ASSIGN(alloc,
                    discovery_->acquire({ResourceReq{match_action_pool(), 1}}));
  Addr vaddr = Addr::sim(vip, port);
  auto installed = net_->install_program(vaddr, std::move(steer));
  if (!installed.ok()) {
    (void)discovery_->release(alloc);
    return installed.error();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    match_actions_[vaddr] = alloc;
  }
  BLOG(info, "simswitch") << cfg_.name << " installed match-action program at "
                          << vaddr.to_string();
  return vaddr;
}

Result<void> SimSwitch::remove_match_action(const std::string& vip,
                                            uint16_t port) {
  Addr vaddr = Addr::sim(vip, port);
  uint64_t alloc = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = match_actions_.find(vaddr);
    if (it == match_actions_.end())
      return err(Errc::not_found, "no program at " + vaddr.to_string());
    alloc = it->second;
    match_actions_.erase(it);
  }
  net_->remove_program(vaddr);
  return discovery_->release(alloc);
}

Result<Addr> SimSwitch::install_program(const ProgramIR& ir) {
  // Compile before admission: a malformed program must not burn a slot.
  BERTHA_TRY_ASSIGN(prog, CompiledProgram::compile(ir));
  BERTHA_TRY_ASSIGN(vaddr, Addr::parse(ir.vip));
  const std::string pool =
      ir.slot == SlotKind::sequencer ? slot_pool() : match_action_pool();
  BERTHA_TRY_ASSIGN(alloc, discovery_->acquire({ResourceReq{pool, 1}}));
  auto installed = net_->install_program(vaddr, prog->action());
  if (!installed.ok()) {
    (void)discovery_->release(alloc);
    return installed.error();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    programs_[vaddr] = ProgramEntry{alloc, std::move(prog)};
  }
  BLOG(info, "simswitch") << cfg_.name << " installed synthesized program "
                          << to_string(ir);
  return vaddr;
}

Result<void> SimSwitch::remove_program(const Addr& vip) {
  uint64_t alloc = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = programs_.find(vip);
    if (it == programs_.end())
      return err(Errc::not_found, "no program at " + vip.to_string());
    alloc = it->second.alloc;
    programs_.erase(it);
  }
  net_->remove_program(vip);
  return discovery_->release(alloc);
}

Result<ProgramStats> SimSwitch::program_stats(const Addr& vip) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = programs_.find(vip);
  if (it == programs_.end())
    return err(Errc::not_found, "no program at " + vip.to_string());
  return it->second.prog->stats();
}

std::vector<Addr> SimSwitch::program_vips() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Addr> vips;
  for (const auto& [vip, entry] : programs_) vips.push_back(vip);
  for (const auto& [vip, alloc] : match_actions_) vips.push_back(vip);
  return vips;
}

uint64_t SimSwitch::groups_installed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return groups_.size();
}

uint64_t SimSwitch::sequencer_slots_used() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t used = groups_.size();
  for (const auto& [vip, entry] : programs_)
    if (entry.prog->ir().slot == SlotKind::sequencer) used++;
  return used;
}

uint64_t SimSwitch::match_action_slots_used() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t used = match_actions_.size();
  for (const auto& [vip, entry] : programs_)
    if (entry.prog->ir().slot == SlotKind::match_action) used++;
  return used;
}

void attach_simswitch_metrics_provider(MetricsRegistry& m,
                                       std::shared_ptr<SimSwitch> sw) {
  m.attach_provider(
      "simswitch." + sw->name(), [sw](MetricsRegistry::Snapshot& snap) {
        const std::string p = "simswitch." + sw->name() + ".";
        snap.gauges[p + "sequencer_slots.used"] =
            static_cast<double>(sw->sequencer_slots_used());
        snap.gauges[p + "sequencer_slots.capacity"] =
            static_cast<double>(sw->config().sequencer_slots);
        snap.gauges[p + "match_action_slots.used"] =
            static_cast<double>(sw->match_action_slots_used());
        snap.gauges[p + "match_action_slots.capacity"] =
            static_cast<double>(sw->config().match_action_slots);
        for (const auto& vip : sw->program_vips()) {
          snap.counters[p + "steered." + vip.to_string()] = sw->steered(vip);
          auto stats = sw->program_stats(vip);
          if (!stats.ok()) continue;
          snap.counters[p + "program." + vip.to_string() + ".matched"] =
              stats.value().matched;
          snap.counters[p + "program." + vip.to_string() + ".missed"] =
              stats.value().missed;
          snap.counters[p + "program." + vip.to_string() + ".dups"] =
              stats.value().dups;
        }
      });
}

}  // namespace bertha
