#include "chunnels/serialize_chunnel.hpp"

#include "serialize/text_codec.hpp"

namespace bertha {

namespace {

// Binary wire format: payload passes through untouched (it is already
// canonical Serde bytes).
class BinaryWireConnection final : public PassthroughConnection {
 public:
  using PassthroughConnection::PassthroughConnection;
};

class TextWireConnection final : public Connection {
 public:
  explicit TextWireConnection(ConnPtr inner) : inner_(std::move(inner)) {}

  Result<void> send(Msg m) override {
    m.payload = text_encode(m.payload);
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      BERTHA_TRY_ASSIGN(m, inner_->recv(deadline));
      auto decoded = text_decode(m.payload);
      if (!decoded.ok()) continue;  // not ours: drop
      m.payload = std::move(decoded).value();
      return m;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
};

}  // namespace

BinarySerializeChunnel::BinarySerializeChunnel() {
  info_.type = "serialize";
  info_.name = "serialize/binary";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 10;  // the optimized library
}

Result<ConnPtr> BinarySerializeChunnel::wrap(ConnPtr inner, WrapContext&) {
  return ConnPtr(std::make_shared<BinaryWireConnection>(std::move(inner)));
}

TextSerializeChunnel::TextSerializeChunnel() {
  info_.type = "serialize";
  info_.name = "serialize/text";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;  // portable fallback
}

Result<ConnPtr> TextSerializeChunnel::wrap(ConnPtr inner, WrapContext&) {
  return ConnPtr(std::make_shared<TextWireConnection>(std::move(inner)));
}

}  // namespace bertha
