// Service directory & anycast resolution (paper §3.2 "Anycast" and the
// Fig 4 dynamic-name-resolution experiment).
//
// Server instances register under a service name with their address,
// host id and a routing metric. Clients resolve the name *each time a
// connection is established* — so when a closer (same-host) instance
// appears, subsequent connections pick it up with no client changes.
// Entries ride on the ordinary discovery service (type "service:<name>"),
// so resolution works both in-process and across the wire protocol.
//
// This is the DNS-style modality; the IP-anycast modality is SimNet's
// advertise()/anycast routing (net/simnet.hpp) — the Bertha anycast
// story is that an application can use either without code changes,
// because both are behind resolve-then-connect.
#pragma once

#include "core/discovery.hpp"
#include "net/addr.hpp"

namespace bertha {

struct ServiceInstance {
  Addr addr;
  std::string host_id;
  uint32_t metric = 100;  // lower = closer
};

class ServiceDirectory {
 public:
  explicit ServiceDirectory(DiscoveryPtr discovery)
      : discovery_(std::move(discovery)) {}

  Result<void> register_instance(const std::string& service,
                                 const ServiceInstance& inst);
  Result<void> unregister_instance(const std::string& service,
                                   const Addr& addr);

  // Resolution policy: a same-host instance always wins (it can use the
  // local fast path); otherwise the lowest metric; ties by address.
  Result<ServiceInstance> resolve(const std::string& service,
                                  const std::string& local_host_id);

  Result<std::vector<ServiceInstance>> resolve_all(const std::string& service);

 private:
  static std::string type_for(const std::string& service) {
    return "service:" + service;
  }
  DiscoveryPtr discovery_;
};

}  // namespace bertha
