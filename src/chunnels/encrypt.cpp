#include "chunnels/encrypt.hpp"

#include "util/hash.hpp"

namespace bertha {

void xor_keystream(Bytes& data, uint64_t key) {
  // Per-block keystream derived by mixing the key with a counter.
  uint64_t counter = 0;
  size_t i = 0;
  while (i < data.size()) {
    uint64_t ks = mix64(key ^ counter++);
    for (int b = 0; b < 8 && i < data.size(); b++, i++)
      data[i] ^= static_cast<uint8_t>(ks >> (8 * b));
  }
}

namespace {

class EncryptConnection final : public Connection {
 public:
  EncryptConnection(ConnPtr inner, uint64_t key, std::shared_ptr<SimNic> nic)
      : inner_(std::move(inner)), key_(key), nic_(std::move(nic)) {}

  Result<void> send(Msg m) override {
    touch_device(m.payload.size());
    xor_keystream(m.payload, key_);
    touch_device(m.payload.size());
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    BERTHA_TRY_ASSIGN(m, inner_->recv(deadline));
    touch_device(m.payload.size());
    xor_keystream(m.payload, key_);
    touch_device(m.payload.size());
    return m;
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  // The NIC variant pays PCIe for each direction of the payload's trip
  // to the device. (In a NIC-adjacent pipeline the optimizer removes
  // this round trip; the bench quantifies exactly that.)
  void touch_device(size_t bytes) {
    if (nic_) sleep_for(nic_->record_pcie_transfer(bytes));
  }

  ConnPtr inner_;
  uint64_t key_;
  std::shared_ptr<SimNic> nic_;
};

}  // namespace

SwEncryptChunnel::SwEncryptChunnel() {
  info_.type = "encrypt";
  info_.name = "encrypt/sw";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
  info_.props["offloadable"] = "false";
  info_.props["commutes_with"] = "frame";
}

Result<ConnPtr> SwEncryptChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  uint64_t key = ctx.args.get_u64_or("key", 0x5eed);
  return ConnPtr(
      std::make_shared<EncryptConnection>(std::move(inner), key, nullptr));
}

NicEncryptChunnel::NicEncryptChunnel(std::shared_ptr<SimNic> nic)
    : nic_(std::move(nic)) {
  info_.type = "encrypt";
  info_.name = "encrypt/nic";
  info_.scope = Scope::host;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 10;
  info_.props["offloadable"] = "true";
  info_.props["commutes_with"] = "frame";
  if (nic_) {
    info_.props["device"] = nic_->name();
    info_.resources = {ResourceReq{nic_->crypto_pool(), 1}};
  }
}

Result<ConnPtr> NicEncryptChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  uint64_t key = ctx.args.get_u64_or("key", 0x5eed);
  return ConnPtr(
      std::make_shared<EncryptConnection>(std::move(inner), key, nic_));
}

}  // namespace bertha
