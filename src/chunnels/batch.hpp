// Batching chunnel: coalesces small sends into one datagram.
//
// Sends are buffered until `max_batch` messages accumulate or
// `linger_us` elapses (a background flusher enforces the linger). The
// receive side transparently unbatches. Amortizes per-datagram overhead
// for chatty small-message workloads.
//
// Wire format: 'B' 'A' | varint count | count x (varint len | bytes).
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

struct BatchOptions {
  size_t max_batch = 16;
  Duration linger = us(500);
  size_t max_bytes = 32 * 1024;  // flush before exceeding a datagram
};

class BatchChunnel final : public ChunnelImpl {
 public:
  explicit BatchChunnel(BatchOptions opts);
  BatchChunnel() : BatchChunnel(BatchOptions{}) {}
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  BatchOptions opts_;
};

}  // namespace bertha
