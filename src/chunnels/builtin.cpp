#include "chunnels/builtin.hpp"

#include "chunnels/batch.hpp"
#include "chunnels/common.hpp"
#include "chunnels/compress.hpp"
#include "chunnels/dedup.hpp"
#include "chunnels/encrypt.hpp"
#include "chunnels/framing.hpp"
#include "chunnels/keepalive.hpp"
#include "chunnels/localfastpath.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "chunnels/ordering.hpp"
#include "chunnels/reliable.hpp"
#include "chunnels/serialize_chunnel.hpp"
#include "chunnels/shard.hpp"
#include "chunnels/telemetry.hpp"

namespace bertha {

Result<void> register_transport_chunnels(Runtime& rt) {
  BERTHA_TRY(rt.register_chunnel(std::make_shared<ReliableChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<OrderingChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<BinarySerializeChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<TextSerializeChunnel>()));
  return ok();
}

Result<void> register_shard_chunnels(Runtime& rt, bool client_push, bool xdp,
                                     bool fallback) {
  if (client_push)
    BERTHA_TRY(rt.register_chunnel(std::make_shared<ShardClientPushChunnel>()));
  if (xdp) BERTHA_TRY(rt.register_chunnel(std::make_shared<ShardXdpChunnel>()));
  if (fallback)
    BERTHA_TRY(rt.register_chunnel(std::make_shared<ShardFallbackChunnel>()));
  // The switch factory is instantiation code only (factory_only); it is
  // registered unconditionally and becomes usable when a switch program
  // is installed and advertised.
  BERTHA_TRY(rt.register_chunnel(std::make_shared<ShardSwitchChunnel>()));
  return ok();
}

Result<void> register_builtin_chunnels(Runtime& rt) {
  BERTHA_TRY(register_transport_chunnels(rt));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<LocalFastPathChunnel>()));
  // Zero-priority fallback: lets local_or_remote chains negotiate even
  // when the fast path is unavailable, and gives live renegotiation a
  // software implementation to fall back to on revocation.
  BERTHA_TRY(rt.register_chunnel(std::make_shared<PassthroughChunnel>(
      "local_or_remote", "local_or_remote/none")));
  BERTHA_TRY(register_shard_chunnels(rt, true, true, true));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<SwitchOrderedMcastChunnel>()));
  BERTHA_TRY(
      rt.register_chunnel(std::make_shared<SoftwareOrderedMcastChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<SwEncryptChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<FrameChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<TcpishChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<TlsChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<CompressChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<BatchChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<DedupChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<TelemetryChunnel>()));
  BERTHA_TRY(rt.register_chunnel(std::make_shared<KeepaliveChunnel>()));
  return ok();
}

}  // namespace bertha
