// Shared helpers for chunnel implementations.
#pragma once

#include "core/chunnel.hpp"
#include "net/addr.hpp"

namespace bertha {

// An ephemeral bind address in the same family as `like` (used by
// chunnels that open private data-path transports: shard dispatchers,
// multicast reply sockets, ...).
inline Addr ephemeral_like(const Addr& like, const std::string& host_id) {
  switch (like.kind) {
    case AddrKind::udp: return Addr::udp("0.0.0.0", 0);
    case AddrKind::uds: return Addr::uds("");
    case AddrKind::mem: return Addr::mem(host_id, 0);
    // By convention a runtime's host_id doubles as its SimNet node name.
    case AddrKind::sim: return Addr::sim(host_id, 0);
    case AddrKind::invalid: break;
  }
  return Addr();
}

// A do-nothing implementation of an arbitrary chunnel type. Registered
// as the bottom-priority fallback for types whose real implementations
// may not exist yet (e.g. "local_or_remote/none" before an offload
// library is loaded): negotiation can still bind the chain, and live
// renegotiation upgrades established connections in place once a better
// implementation registers.
class PassthroughChunnel final : public ChunnelImpl {
 public:
  PassthroughChunnel(std::string type, std::string name, int32_t priority = 0,
                     Scope scope = Scope::global,
                     EndpointConstraint endpoints = EndpointConstraint::server) {
    info_.type = std::move(type);
    info_.name = std::move(name);
    info_.scope = scope;
    info_.endpoints = endpoints;
    info_.priority = priority;
  }

  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext&) override { return inner; }

 private:
  ImplInfo info_;
};

// Parses a comma-separated list of address URIs (the "shards" /
// "members" args in DAG nodes).
Result<std::vector<Addr>> parse_addr_list(const std::string& csv);

// Joins addresses back into the csv form.
std::string format_addr_list(const std::vector<Addr>& addrs);

}  // namespace bertha
