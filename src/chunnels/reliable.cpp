#include "chunnels/reliable.hpp"

#include <condition_variable>
#include <map>
#include <thread>

#include "serialize/codec.hpp"
#include "util/log.hpp"
#include "util/queue.hpp"

namespace bertha {

namespace {

constexpr uint8_t kData = 1;
constexpr uint8_t kAck = 2;

Bytes encode_data(uint64_t seq, BytesView payload) {
  Writer w;
  w.put_u8(kData);
  w.put_varint(seq);
  w.put_raw(payload);
  return std::move(w).take();
}

Bytes encode_ack(uint64_t next_expected) {
  Writer w;
  w.put_u8(kAck);
  w.put_varint(next_expected);
  return std::move(w).take();
}

class ReliableConnection final : public Connection {
 public:
  ReliableConnection(ConnPtr inner, ReliableOptions opts)
      : inner_(std::move(inner)), opts_(opts), delivered_(4096) {
    engine_ = std::thread([this] { engine_loop(); });
  }

  ~ReliableConnection() override { close(); }

  Result<void> send(Msg m) override {
    uint64_t seq;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      // Flow control: block while the window is full.
      auto give_up = now() + opts_.send_timeout;
      while (in_flight_.size() >= opts_.window) {
        if (window_cv_.wait_until(lk, give_up) == std::cv_status::timeout)
          return err(Errc::timed_out, "reliable send window stalled");
        if (closed_) return err(Errc::cancelled, "connection closed");
      }
      seq = next_send_seq_++;
      in_flight_[seq] = m.payload;
    }
    Msg wire;
    wire.dst = m.dst;
    wire.payload = encode_data(seq, m.payload);
    return inner_->send(std::move(wire));
  }

  Result<Msg> recv(Deadline deadline) override { return delivered_.pop(deadline); }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }

  void close() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      closed_ = true;
    }
    window_cv_.notify_all();
    inner_->close();
    delivered_.close();
    if (engine_.joinable()) engine_.join();
  }

 private:
  // One background thread handles everything stateful: inner receives
  // (data -> reorder + ack, ack -> window release) and retransmission.
  void engine_loop() {
    TimePoint next_retx = now() + opts_.rto;
    for (;;) {
      auto msg_r = inner_->recv(Deadline::at(next_retx));
      if (msg_r.ok()) {
        handle_incoming(std::move(msg_r).value());
      } else if (msg_r.error().code == Errc::timed_out) {
        retransmit();
        next_retx = now() + opts_.rto;
      } else {
        // cancelled/unavailable: propagate EOF to the reader.
        delivered_.close();
        return;
      }
      if (now() >= next_retx) {
        retransmit();
        next_retx = now() + opts_.rto;
      }
    }
  }

  void handle_incoming(Msg m) {
    Reader r(m.payload);
    auto kind_r = r.get_u8();
    if (!kind_r.ok()) return;
    auto seq_r = r.get_varint();
    if (!seq_r.ok()) return;

    if (kind_r.value() == kAck) {
      std::lock_guard<std::mutex> lk(mu_);
      // Cumulative: everything below next_expected is delivered.
      for (auto it = in_flight_.begin();
           it != in_flight_.end() && it->first < seq_r.value();)
        it = in_flight_.erase(it);
      window_cv_.notify_all();
      return;
    }
    if (kind_r.value() != kData) return;

    uint64_t seq = seq_r.value();
    Bytes payload(r.rest().begin(), r.rest().end());
    Addr src = m.src;
    uint64_t ack_value;
    std::vector<Msg> to_deliver;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (seq >= next_recv_seq_ && !reorder_.count(seq) &&
          reorder_.size() < opts_.window * 4) {
        Msg out;
        out.src = src;
        out.payload = std::move(payload);
        reorder_.emplace(seq, std::move(out));
      }
      while (!reorder_.empty() && reorder_.begin()->first == next_recv_seq_) {
        to_deliver.push_back(std::move(reorder_.begin()->second));
        reorder_.erase(reorder_.begin());
        next_recv_seq_++;
      }
      ack_value = next_recv_seq_;
    }
    for (auto& d : to_deliver) (void)delivered_.push(std::move(d));
    Msg ack;
    ack.payload = encode_ack(ack_value);
    (void)inner_->send(std::move(ack));
  }

  void retransmit() {
    std::vector<std::pair<uint64_t, Bytes>> pending;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      for (const auto& [seq, payload] : in_flight_)
        pending.emplace_back(seq, payload);
    }
    for (auto& [seq, payload] : pending) {
      Msg wire;
      wire.payload = encode_data(seq, payload);
      (void)inner_->send(std::move(wire));
    }
  }

  ConnPtr inner_;
  ReliableOptions opts_;
  BlockingQueue<Msg> delivered_;

  std::mutex mu_;
  std::condition_variable window_cv_;
  bool closed_ = false;
  uint64_t next_send_seq_ = 0;
  uint64_t next_recv_seq_ = 0;
  std::map<uint64_t, Bytes> in_flight_;  // seq -> payload, unacked
  std::map<uint64_t, Msg> reorder_;      // out-of-order arrivals

  std::thread engine_;
};

}  // namespace

ReliableChunnel::ReliableChunnel(ReliableOptions opts) : opts_(opts) {
  info_.type = "reliable";
  info_.name = "reliable/arq";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;  // the fallback
}

Result<ConnPtr> ReliableChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  ReliableOptions opts = opts_;
  opts.rto = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "rto_us", static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        opts_.rto)
                        .count()))));
  opts.window = ctx.args.get_u64_or("window", opts_.window);
  return ConnPtr(std::make_shared<ReliableConnection>(std::move(inner), opts));
}

NopReliableChunnel::NopReliableChunnel() {
  info_.type = "reliable";
  info_.name = "reliable/nop";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = -10;  // only when policy explicitly prefers it
}

Result<ConnPtr> NopReliableChunnel::wrap(ConnPtr inner, WrapContext&) {
  return ConnPtr(std::make_shared<PassthroughConnection>(std::move(inner)));
}

}  // namespace bertha
