#include "chunnels/common.hpp"

namespace bertha {

Result<std::vector<Addr>> parse_addr_list(const std::string& csv) {
  std::vector<Addr> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      BERTHA_TRY_ASSIGN(a, Addr::parse(item));
      out.push_back(std::move(a));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty())
    return err(Errc::invalid_argument, "empty address list: '" + csv + "'");
  return out;
}

std::string format_addr_list(const std::vector<Addr>& addrs) {
  std::string s;
  for (const auto& a : addrs) {
    if (!s.empty()) s += ',';
    s += a.to_string();
  }
  return s;
}

}  // namespace bertha
