#include "chunnels/telemetry.hpp"

namespace bertha {

namespace {

class TelemetryConnection final : public Connection {
 public:
  TelemetryConnection(ConnPtr inner,
                      std::function<void(bool sent, size_t bytes, bool error)>
                          record)
      : inner_(std::move(inner)), record_(std::move(record)) {}

  Result<void> send(Msg m) override {
    size_t bytes = m.payload.size();
    auto r = inner_->send(std::move(m));
    record_(true, bytes, !r.ok());
    return r;
  }

  Result<Msg> recv(Deadline deadline) override {
    BERTHA_TRY_ASSIGN(m, inner_->recv(deadline));
    record_(false, m.payload.size(), false);
    return m;
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
  std::function<void(bool, size_t, bool)> record_;
};

}  // namespace

TelemetryChunnel::TelemetryChunnel() {
  info_.type = "telemetry";
  info_.name = "telemetry/counters";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::server;  // one side suffices
  info_.priority = 0;
}

std::shared_ptr<TelemetryChunnel::Cell> TelemetryChunnel::cell_for(
    const std::string& label) {
  std::shared_ptr<Cell> cell;
  MetricsPtr export_to;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = cells_[label];
    if (!slot) {
      slot = std::make_shared<Cell>();
      export_to = metrics_;
    }
    cell = slot;
  }
  if (export_to) export_cell(export_to, label, cell);
  return cell;
}

void TelemetryChunnel::export_cell(const MetricsPtr& m,
                                   const std::string& label,
                                   std::shared_ptr<Cell> cell) {
  std::string prefix = "telemetry." + label + ".";
  m->attach_provider("telemetry." + label,
                     [prefix, cell](MetricsRegistry::Snapshot& snap) {
    auto& c = snap.counters;
    c[prefix + "msgs_sent"] = cell->msgs_sent.load(std::memory_order_relaxed);
    c[prefix + "msgs_received"] =
        cell->msgs_received.load(std::memory_order_relaxed);
    c[prefix + "bytes_sent"] = cell->bytes_sent.load(std::memory_order_relaxed);
    c[prefix + "bytes_received"] =
        cell->bytes_received.load(std::memory_order_relaxed);
    c[prefix + "send_errors"] =
        cell->send_errors.load(std::memory_order_relaxed);
  });
}

void TelemetryChunnel::bind_metrics(MetricsPtr metrics) {
  std::vector<std::pair<std::string, std::shared_ptr<Cell>>> existing;
  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_ = metrics;
    if (metrics_)
      for (const auto& [label, cell] : cells_) existing.emplace_back(label, cell);
  }
  for (auto& [label, cell] : existing) export_cell(metrics, label, cell);
}

Result<ConnPtr> TelemetryChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  auto cell = cell_for(ctx.args.get_or("label", "-"));
  auto record = [cell](bool sent, size_t bytes, bool error) {
    if (sent) {
      cell->msgs_sent.fetch_add(1, std::memory_order_relaxed);
      cell->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
      if (error) cell->send_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      cell->msgs_received.fetch_add(1, std::memory_order_relaxed);
      cell->bytes_received.fetch_add(bytes, std::memory_order_relaxed);
    }
  };
  return ConnPtr(
      std::make_shared<TelemetryConnection>(std::move(inner), record));
}

TelemetryCounters TelemetryChunnel::snapshot(const std::string& label) const {
  std::lock_guard<std::mutex> lk(mu_);
  TelemetryCounters out;
  auto it = cells_.find(label);
  if (it == cells_.end()) return out;
  out.msgs_sent = it->second->msgs_sent.load(std::memory_order_relaxed);
  out.msgs_received = it->second->msgs_received.load(std::memory_order_relaxed);
  out.bytes_sent = it->second->bytes_sent.load(std::memory_order_relaxed);
  out.bytes_received =
      it->second->bytes_received.load(std::memory_order_relaxed);
  out.send_errors = it->second->send_errors.load(std::memory_order_relaxed);
  return out;
}

std::map<std::string, TelemetryCounters> TelemetryChunnel::snapshot_all()
    const {
  std::map<std::string, TelemetryCounters> out;
  std::vector<std::string> labels;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [label, cell] : cells_) labels.push_back(label);
  }
  for (const auto& label : labels) out[label] = snapshot(label);
  return out;
}

void TelemetryChunnel::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  cells_.clear();
}

}  // namespace bertha
