// Convenience registration of the stock chunnel implementations
// (the "libraries that provide fallback implementations for common
// Chunnels" applications link against, §4).
#pragma once

#include "core/runtime.hpp"

namespace bertha {

// Registers the software fallbacks every Bertha process is expected to
// carry: reliable/arq, ordering/buffer, serialize/{binary,text},
// local_or_remote/uds, shard/{client-push,xdp,fallback},
// ordered_mcast/{switch,software} factories, encrypt/sw, frame/http2ish,
// tcpish/sw, tls/sw, compress/rle, batch/linger, dedup/window, telemetry/counters.
//
// Device-backed variants (encrypt/nic, tls/nic) are registered by
// whoever owns the device — see sim/simnic.hpp.
Result<void> register_builtin_chunnels(Runtime& rt);

// Subsets used by benches that want precise control over offers.
Result<void> register_transport_chunnels(Runtime& rt);  // reliable/ordering/serialize
Result<void> register_shard_chunnels(Runtime& rt, bool client_push,
                                     bool xdp, bool fallback);

}  // namespace bertha
