// Compression chunnel: run-length encoding.
//
// A simple byte-transforming stage for composition demos and optimizer
// tests (its size_factor < 1 on compressible payloads, which changes
// where the optimizer wants it relative to PCIe crossings).
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

// Codec exposed for tests. Format: pairs of [u8 byte][varint count].
Bytes rle_encode(BytesView data);
Result<Bytes> rle_decode(BytesView data);

class CompressChunnel final : public ChunnelImpl {
 public:
  CompressChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

}  // namespace bertha
