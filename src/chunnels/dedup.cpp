#include "chunnels/dedup.hpp"

#include <deque>
#include <unordered_set>

#include "serialize/codec.hpp"

namespace bertha {

Bytes dedup_stamp(uint64_t msg_id, BytesView payload) {
  Writer w;
  w.put_u8('D');
  w.put_u8('1');
  w.put_varint(msg_id);
  w.put_raw(payload);
  return std::move(w).take();
}

namespace {

class DedupConnection final : public Connection {
 public:
  DedupConnection(ConnPtr inner, size_t window, uint64_t id_seed)
      : inner_(std::move(inner)), window_(window), next_id_(id_seed) {}

  Result<void> send(Msg m) override {
    uint64_t id;
    {
      std::lock_guard<std::mutex> lk(mu_);
      id = next_id_++;
    }
    m.payload = dedup_stamp(id, m.payload);
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      BERTHA_TRY_ASSIGN(m, inner_->recv(deadline));
      Reader r(m.payload);
      auto m0 = r.get_u8();
      auto m1 = r.get_u8();
      if (!m0.ok() || !m1.ok() || m0.value() != 'D' || m1.value() != '1')
        continue;  // not ours
      auto id_r = r.get_varint();
      if (!id_r.ok()) continue;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (seen_.count(id_r.value())) continue;  // duplicate: suppress
        seen_.insert(id_r.value());
        order_.push_back(id_r.value());
        if (order_.size() > window_) {
          seen_.erase(order_.front());
          order_.pop_front();
        }
      }
      Msg out;
      out.src = std::move(m.src);
      out.dst = std::move(m.dst);
      out.payload.assign(r.rest().begin(), r.rest().end());
      return out;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
  size_t window_;
  std::mutex mu_;
  uint64_t next_id_;
  std::unordered_set<uint64_t> seen_;
  std::deque<uint64_t> order_;
};

}  // namespace

DedupChunnel::DedupChunnel(DedupOptions opts) : opts_(opts) {
  info_.type = "dedup";
  info_.name = "dedup/window";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
  // Offload synthesis (src/synth/): the seen-window duplicate check is
  // compilable into a switch match-action stage.
  info_.props["synth.pattern"] = "dedup";
}

Result<ConnPtr> DedupChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  size_t window = ctx.args.get_u64_or("window", opts_.window);
  // Each direction stamps its own id sequence and each receiver tracks
  // only its peer's ids, so the two sequences never interact.
  return ConnPtr(std::make_shared<DedupConnection>(std::move(inner), window,
                                                   /*id_seed=*/1));
}

}  // namespace bertha
