#include "chunnels/batch.hpp"

#include <condition_variable>
#include <deque>
#include <thread>

#include "serialize/codec.hpp"

namespace bertha {

namespace {

class BatchConnection final : public Connection {
 public:
  BatchConnection(ConnPtr inner, BatchOptions opts)
      : inner_(std::move(inner)), opts_(opts) {
    flusher_ = std::thread([this] { flush_loop(); });
  }

  ~BatchConnection() override { close(); }

  Result<void> send(Msg m) override {
    bool flush_now = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "connection closed");
      pending_bytes_ += m.payload.size();
      pending_.push_back(std::move(m.payload));
      if (pending_.size() == 1) oldest_ = now();
      flush_now = pending_.size() >= opts_.max_batch ||
                  pending_bytes_ >= opts_.max_bytes;
    }
    if (flush_now) return flush();
    cv_.notify_one();
    return ok();
  }

  Result<Msg> recv(Deadline deadline) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!inbox_.empty()) {
        Msg m = std::move(inbox_.front());
        inbox_.pop_front();
        return m;
      }
    }
    for (;;) {
      BERTHA_TRY_ASSIGN(wire, inner_->recv(deadline));
      Reader r(wire.payload);
      auto b0 = r.get_u8();
      auto b1 = r.get_u8();
      if (!b0.ok() || !b1.ok() || b0.value() != 'B' || b1.value() != 'A')
        continue;
      auto count_r = r.get_varint();
      if (!count_r.ok()) continue;
      std::vector<Bytes> items;
      bool bad = false;
      for (uint64_t i = 0; i < count_r.value(); i++) {
        auto item = r.get_bytes();
        if (!item.ok()) {
          bad = true;
          break;
        }
        items.push_back(std::move(item).value());
      }
      if (bad || items.empty()) continue;
      Msg first;
      first.src = wire.src;
      first.dst = wire.dst;
      first.payload = std::move(items.front());
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (size_t i = 1; i < items.size(); i++) {
          Msg m;
          m.src = wire.src;
          m.dst = wire.dst;
          m.payload = std::move(items[i]);
          inbox_.push_back(std::move(m));
        }
      }
      return first;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }

  void close() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      closed_ = true;
    }
    cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
    (void)flush();  // drain what's left
    inner_->close();
  }

 private:
  Result<void> flush() {
    std::vector<Bytes> batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (pending_.empty()) return ok();
      batch.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.end()));
      pending_.clear();
      pending_bytes_ = 0;
    }
    // Greedily pack messages into wire datagrams of at most max_bytes
    // payload (send() flushes at the max_bytes watermark, but a burst
    // can overshoot it before the flush runs). The common case is one
    // datagram -> one plain send; an overshoot becomes a single batched
    // send — one sendmmsg on batch-capable transports.
    std::vector<Msg> wires;
    size_t i = 0;
    while (i < batch.size()) {
      Writer w;
      w.put_u8('B');
      w.put_u8('A');
      size_t first = i;
      size_t bytes = 0;
      size_t n = 0;
      for (; i < batch.size(); i++) {
        // ~10 bytes of varint length framing per item, worst case.
        size_t cost = batch[i].size() + 10;
        if (n > 0 && bytes + cost > opts_.max_bytes) break;
        bytes += cost;
        n++;
      }
      w.put_varint(n);
      for (size_t k = first; k < first + n; k++) w.put_bytes(batch[k]);
      Msg wire;
      wire.payload = std::move(w).take();
      wires.push_back(std::move(wire));
    }
    if (wires.size() == 1) return inner_->send(std::move(wires.front()));
    return inner_->send_batch(std::span<Msg>(wires));
  }

  void flush_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!closed_) {
      if (pending_.empty()) {
        cv_.wait(lk);
        continue;
      }
      auto due = oldest_ + opts_.linger;
      if (now() >= due) {
        lk.unlock();
        (void)flush();
        lk.lock();
      } else {
        cv_.wait_until(lk, due);
      }
    }
  }

  ConnPtr inner_;
  BatchOptions opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::deque<Bytes> pending_;
  size_t pending_bytes_ = 0;
  TimePoint oldest_{};
  std::deque<Msg> inbox_;

  std::thread flusher_;
};

}  // namespace

BatchChunnel::BatchChunnel(BatchOptions opts) : opts_(opts) {
  info_.type = "batch";
  info_.name = "batch/linger";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
}

Result<ConnPtr> BatchChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  BatchOptions opts = opts_;
  opts.max_batch = ctx.args.get_u64_or("max_batch", opts_.max_batch);
  opts.linger = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "linger_us",
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(opts_.linger)
              .count()))));
  return ConnPtr(std::make_shared<BatchConnection>(std::move(inner), opts));
}

}  // namespace bertha
