// Telemetry chunnel: transparent per-connection counters.
//
// An example of a purely host-local chunnel: it adds no bytes to the
// wire, it just observes. Useful in examples/benches to show that
// cross-cutting functionality (metrics, tracing) composes like any
// other chunnel, and that a peer without the implementation simply gets
// a passthrough.
//
// Counters aggregate per label (the "label" DAG arg; default the
// chunnel type of the stack, "-") across all connections wrapped by
// this impl instance.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "core/chunnel.hpp"
#include "trace/metrics.hpp"

namespace bertha {

struct TelemetryCounters {
  uint64_t msgs_sent = 0;
  uint64_t msgs_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t send_errors = 0;
};

class TelemetryChunnel final : public ChunnelImpl {
 public:
  TelemetryChunnel();

  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

  // Snapshot of one label's counters (zeros if unknown).
  TelemetryCounters snapshot(const std::string& label) const;
  // Snapshot of everything.
  std::map<std::string, TelemetryCounters> snapshot_all() const;
  void reset();

  // Satellite view into the unified registry: per-label counters appear
  // as "telemetry.<label>.<field>" in registry snapshots. The chunnel's
  // own snapshot()/snapshot_all() accessors are unaffected. Runtime
  // binds this automatically on register_chunnel.
  void bind_metrics(MetricsPtr metrics);

 private:
  struct Cell {
    std::atomic<uint64_t> msgs_sent{0};
    std::atomic<uint64_t> msgs_received{0};
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> send_errors{0};
  };
  std::shared_ptr<Cell> cell_for(const std::string& label);
  // Providers capture the shared Cell (not the chunnel), so there is no
  // registry <-> chunnel ownership cycle and no lock nesting: snapshot()
  // reads the cell's atomics only.
  static void export_cell(const MetricsPtr& m, const std::string& label,
                          std::shared_ptr<Cell> cell);

  ImplInfo info_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Cell>> cells_;
  MetricsPtr metrics_;
};

}  // namespace bertha
