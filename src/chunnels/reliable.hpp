// Reliability chunnel (Listing 4/5's `reliable()`).
//
// A software ARQ protocol layered over unreliable datagrams: sequence
// numbers, cumulative acknowledgements, retransmission, duplicate
// suppression and in-order delivery. This is the canonical *host
// fallback* implementation (paper §2): always available, works on any
// transport, slower than a hardware TCP offload engine would be.
//
// Inner-payload format: [u8 subkind (1=data, 2=ack)] [u64 varint seq]
// [payload for data]. Acks carry the next expected sequence number
// (cumulative).
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

struct ReliableOptions {
  Duration rto = ms(50);           // retransmission timeout
  size_t window = 64;              // max unacknowledged messages
  Duration send_timeout = seconds(10);  // give up blocking send after this
};

class ReliableChunnel final : public ChunnelImpl {
 public:
  explicit ReliableChunnel(ReliableOptions opts);
  ReliableChunnel() : ReliableChunnel(ReliableOptions{}) {}

  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  ReliableOptions opts_;
};

// A no-op "reliable" implementation for transports that are already
// lossless (in-process channels). Lower priority than the ARQ so it is
// only chosen when explicitly preferred by policy.
class NopReliableChunnel final : public ChunnelImpl {
 public:
  NopReliableChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

}  // namespace bertha
