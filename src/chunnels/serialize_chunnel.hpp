// Serialization chunnel (paper §3.2, "Serialization").
//
// "The use of a serialization Chunnel changes the connection's
// interface: applications send and receive objects rather than bytes."
//
// The typed layer is ObjectConnection<T>: the application's T is encoded
// with the Serde framework into the connection payload. The *wire
// representation* is the chunnel's negotiated implementation:
//
//   serialize/binary — compact bincode-style bytes (the fast path an
//                      accelerated library would provide),
//   serialize/text   — hex-text encoding (the slow, portable fallback).
//
// Because both sides bind the same implementation at negotiation, an
// application upgrades from text to binary wire format by registering
// the better implementation — no application code changes (the paper's
// point).
#pragma once

#include "core/chunnel.hpp"
#include "serialize/codec.hpp"

namespace bertha {

class BinarySerializeChunnel final : public ChunnelImpl {
 public:
  BinarySerializeChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

class TextSerializeChunnel final : public ChunnelImpl {
 public:
  TextSerializeChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

// Typed facade over a (chunnel-wrapped) connection: send/recv T values.
// The payload reaching the connection is always canonical Serde bytes;
// the serialize chunnel below re-encodes for the wire as negotiated.
template <typename T>
class ObjectConnection {
 public:
  explicit ObjectConnection(ConnPtr conn) : conn_(std::move(conn)) {}

  Result<void> send(const T& value, Addr dst = Addr()) {
    Msg m;
    m.dst = std::move(dst);
    m.payload = serialize_to_bytes(value);
    return conn_->send(std::move(m));
  }

  // Returns the decoded object and (via out-param overload below) its
  // source address.
  Result<T> recv(Deadline deadline = Deadline::never()) {
    BERTHA_TRY_ASSIGN(m, conn_->recv(deadline));
    return deserialize_from_bytes<T>(m.payload);
  }

  Result<std::pair<T, Addr>> recv_from(Deadline deadline = Deadline::never()) {
    BERTHA_TRY_ASSIGN(m, conn_->recv(deadline));
    BERTHA_TRY_ASSIGN(v, deserialize_from_bytes<T>(m.payload));
    return std::pair<T, Addr>(std::move(v), std::move(m.src));
  }

  Connection& raw() { return *conn_; }
  const ConnPtr& conn() const { return conn_; }
  void close() { conn_->close(); }

 private:
  ConnPtr conn_;
};

}  // namespace bertha
