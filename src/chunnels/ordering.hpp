// Ordering chunnel: in-order delivery *without* reliability.
//
// Stamps a sequence number on each message and delivers in order,
// releasing messages after a gap timeout rather than retransmitting
// (appropriate when the app tolerates loss but not reordering). One of
// the finer-grained pieces a monolithic TCP chunnel bundles (paper §2's
// minimality discussion).
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

struct OrderingOptions {
  // How long to hold back out-of-order messages waiting for a gap to
  // fill before skipping it.
  Duration gap_timeout = ms(20);
  size_t max_buffer = 1024;
};

class OrderingChunnel final : public ChunnelImpl {
 public:
  explicit OrderingChunnel(OrderingOptions opts);
  OrderingChunnel() : OrderingChunnel(OrderingOptions{}) {}

  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  OrderingOptions opts_;
};

}  // namespace bertha
