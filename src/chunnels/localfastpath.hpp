// Local fast-path chunnel — the paper's `local_or_remote()` (Listing 1,
// evaluated in Fig 3 and Fig 4).
//
// When client and server are on the same host, datagrams should use
// cheap IPC (a unix socket) instead of traversing the kernel network
// stack. The server half binds an auxiliary unix-domain listen
// transport at listen() time and advertises its address plus the
// server's host id. During negotiation these land in the connection's
// merged args; the client half compares host ids and, when they match,
// *rebases* the already-established connection onto a fresh unix socket
// aimed at the advertised address. The server needs no special handling:
// connections are demultiplexed by token, so replies simply follow the
// new path ("no manual changes to network or system configuration").
//
// Cross-host connections are untouched (passthrough), preserving
// interface uniformity.
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

class LocalFastPathChunnel final : public ChunnelImpl {
 public:
  LocalFastPathChunnel();

  const ImplInfo& info() const override { return info_; }
  Result<void> on_listen(ListenContext& ctx) override;
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

}  // namespace bertha
