// Framing / stream-shaping chunnels used in composition examples and by
// the §6 optimizer pipeline (encrypt |> http2 |> tcp):
//
//   frame   ("http2"-ish): length-prefixed framing with a 4-byte stream
//           header — a host-CPU stage in the optimizer's model,
//   tcpish  reliability + ordering bundled as one coarse chunnel (the
//           paper's note that TCP offload engines are all-or-nothing),
//   tls     the merged encrypt+tcpish stage the optimizer can rewrite
//           adjacent encrypt|>tcpish pairs into when the NIC offers a
//           combined engine.
#pragma once

#include <memory>

#include "chunnels/reliable.hpp"
#include "core/chunnel.hpp"
#include "sim/simnic.hpp"

namespace bertha {

class FrameChunnel final : public ChunnelImpl {
 public:
  FrameChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

class TcpishChunnel final : public ChunnelImpl {
 public:
  TcpishChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  ReliableChunnel reliable_;  // delegate: tcpish == reliable (+ ordering)
};

class TlsChunnel final : public ChunnelImpl {
 public:
  // nic == nullptr builds the software variant ("tls/sw").
  explicit TlsChunnel(std::shared_ptr<SimNic> nic);
  TlsChunnel() : TlsChunnel(nullptr) {}
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  std::shared_ptr<SimNic> nic_;
  ReliableChunnel reliable_;
};

}  // namespace bertha
