#include "chunnels/ordered_mcast.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "serialize/codec.hpp"
#include "util/log.hpp"

namespace bertha {

// --- framing ---

Bytes mcast_frame(const Addr& reply_to, BytesView op) {
  Writer w;
  w.put_u8('M');
  w.put_u8('1');
  w.put_string(reply_to.to_string());
  w.put_raw(op);
  return std::move(w).take();
}

Result<std::pair<Addr, BytesView>> parse_mcast_frame(BytesView datagram) {
  Reader r(datagram);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'M' || m1 != '1')
    return err(Errc::protocol_error, "bad mcast frame magic");
  BERTHA_TRY_ASSIGN(uri, r.get_string());
  BERTHA_TRY_ASSIGN(reply, Addr::parse(uri));
  return std::pair<Addr, BytesView>(std::move(reply), r.rest());
}

Result<McastOp> parse_sequenced_mcast(BytesView datagram) {
  if (datagram.size() < 8)
    return err(Errc::protocol_error, "short sequenced mcast datagram");
  McastOp op;
  uint64_t stamp = get_u64_le(datagram, 0);
  op.seq = stamp & kMcastSeqMask;
  op.view = static_cast<uint32_t>(stamp >> kMcastSeqBits);
  BERTHA_TRY_ASSIGN(frame, parse_mcast_frame(datagram.subspan(8)));
  op.reply_to = std::move(frame.first);
  op.payload = frame.second;
  return op;
}

Bytes mcast_fetch_frame(const Addr& reply_to, uint64_t from, uint64_t to) {
  Writer w;
  w.put_u8('M');
  w.put_u8('F');
  w.put_string(reply_to.to_string());
  w.put_varint(from);
  w.put_varint(to);
  return std::move(w).take();
}

Result<McastFetch> parse_mcast_fetch(BytesView datagram) {
  Reader r(datagram);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'M' || m1 != 'F')
    return err(Errc::protocol_error, "bad mcast fetch magic");
  BERTHA_TRY_ASSIGN(uri, r.get_string());
  BERTHA_TRY_ASSIGN(reply, Addr::parse(uri));
  McastFetch f;
  f.reply_to = std::move(reply);
  BERTHA_TRY_ASSIGN(from, r.get_varint());
  BERTHA_TRY_ASSIGN(to, r.get_varint());
  f.from = from;
  f.to = to;
  if (f.to < f.from) return err(Errc::protocol_error, "inverted fetch range");
  return f;
}

Bytes mcast_fetch_miss_frame(uint32_t view, uint64_t from, uint64_t to) {
  Writer w;
  w.put_u8('M');
  w.put_u8('X');
  w.put_varint(view);
  w.put_varint(from);
  w.put_varint(to);
  return std::move(w).take();
}

Result<McastFetchMiss> parse_mcast_fetch_miss(BytesView datagram) {
  Reader r(datagram);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'M' || m1 != 'X')
    return err(Errc::protocol_error, "bad mcast fetch-miss magic");
  McastFetchMiss m;
  BERTHA_TRY_ASSIGN(view, r.get_varint());
  if (view > 0xffff) return err(Errc::protocol_error, "fetch-miss view range");
  m.view = static_cast<uint32_t>(view);
  BERTHA_TRY_ASSIGN(from, r.get_varint());
  BERTHA_TRY_ASSIGN(to, r.get_varint());
  m.from = from;
  m.to = to;
  if (m.to < m.from)
    return err(Errc::protocol_error, "inverted fetch-miss range");
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing bytes after fetch-miss");
  return m;
}

Bytes mcast_view_start_frame(uint32_t view, uint64_t start_seq) {
  Writer w;
  w.put_u8('M');
  w.put_u8('S');
  w.put_varint(view);
  w.put_varint(start_seq);
  return std::move(w).take();
}

Result<McastViewStart> parse_mcast_view_start(BytesView datagram) {
  Reader r(datagram);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'M' || m1 != 'S')
    return err(Errc::protocol_error, "bad mcast view-start magic");
  McastViewStart vs;
  BERTHA_TRY_ASSIGN(view, r.get_varint());
  if (view == 0 || view > 0xffff)
    return err(Errc::protocol_error, "view-start view range");
  vs.view = static_cast<uint32_t>(view);
  BERTHA_TRY_ASSIGN(start, r.get_varint());
  if (start > kMcastSeqMask)
    return err(Errc::protocol_error, "view-start seq range");
  vs.start_seq = start;
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing bytes after view-start");
  return vs;
}

// --- replica-side shared state ---

class McastReplicaState {
 public:
  McastReplicaState(std::shared_ptr<Transport> transport, Duration gap_timeout)
      : transport_(std::move(transport)),
        gap_timeout_(gap_timeout),
        ordered_(65536) {
    thread_ = std::thread([this] { pump(); });
  }

  ~McastReplicaState() { stop(); }

  void stop() {
    transport_->close();
    ordered_.close();
    if (thread_.joinable()) thread_.join();
  }

  Result<Msg> next(Deadline deadline) { return ordered_.pop(deadline); }

  Result<void> reply(const Addr& to, BytesView payload) {
    return transport_->send_to(to, payload);
  }

  const Addr& member_addr() const { return transport_->local_addr(); }
  uint64_t gaps() const { return gaps_.load(std::memory_order_relaxed); }

 private:
  // Receives sequenced datagrams and releases them in global order.
  void pump() {
    std::map<uint64_t, Msg> holdback;
    uint64_t next_seq = 0;
    std::optional<TimePoint> gap_since;

    for (;;) {
      Deadline dl = gap_since ? Deadline::at(*gap_since + gap_timeout_)
                              : Deadline::never();
      auto pkt_r = transport_->recv(dl);
      if (pkt_r.ok()) {
        auto op_r = parse_sequenced_mcast(pkt_r.value().payload);
        if (!op_r.ok()) continue;
        const McastOp& op = op_r.value();
        if (op.seq < next_seq || holdback.count(op.seq)) continue;  // dup
        Msg m;
        m.src = op.reply_to;
        m.dst = member_addr();
        m.payload.assign(op.payload.begin(), op.payload.end());
        holdback.emplace(op.seq, std::move(m));
      } else if (pkt_r.error().code == Errc::timed_out) {
        // Head-of-line gap aged out: skip it (recovery would run here).
        if (!holdback.empty()) {
          gaps_.fetch_add(holdback.begin()->first - next_seq,
                          std::memory_order_relaxed);
          next_seq = holdback.begin()->first;
        }
        gap_since.reset();
      } else {
        return;  // closed
      }

      while (!holdback.empty() && holdback.begin()->first == next_seq) {
        (void)ordered_.push(std::move(holdback.begin()->second));
        holdback.erase(holdback.begin());
        next_seq++;
        gap_since.reset();
      }
      if (!holdback.empty() && !gap_since) gap_since = now();
    }
  }

  std::shared_ptr<Transport> transport_;
  Duration gap_timeout_;
  BlockingQueue<Msg> ordered_;
  std::atomic<uint64_t> gaps_{0};
  std::thread thread_;
};

namespace {

// Replica-facing connection: recv() = next globally-ordered op, send()
// = direct reply to a client.
class McastReplicaConnection final : public Connection {
 public:
  McastReplicaConnection(ConnPtr inner, std::shared_ptr<McastReplicaState> st)
      : inner_(std::move(inner)), st_(std::move(st)) {}

  Result<void> send(Msg m) override {
    if (!m.dst.valid())
      return err(Errc::invalid_argument,
                 "mcast replica reply needs dst (the request's src)");
    return st_->reply(m.dst, m.payload);
  }

  Result<Msg> recv(Deadline deadline) override {
    // The ordered stream is shared with sibling connections, so closing
    // this connection must not close the stream; instead we poll in
    // short slices so close() can interrupt a blocked reader.
    for (;;) {
      if (closed_.load(std::memory_order_acquire))
        return err(Errc::cancelled, "connection closed");
      Deadline slice = Deadline::after(ms(50));
      if (!deadline.is_never() &&
          deadline.as_time_point() < slice.as_time_point())
        slice = deadline;
      auto m = st_->next(slice);
      if (m.ok()) return m;
      if (m.error().code != Errc::timed_out) return m;  // stream closed
      if (deadline.expired()) return m;                 // caller's deadline
    }
  }

  const Addr& local_addr() const override { return st_->member_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }

  void close() override {
    closed_.store(true, std::memory_order_release);
    inner_->close();  // the shared state outlives this connection
  }

 private:
  ConnPtr inner_;
  std::shared_ptr<McastReplicaState> st_;
  std::atomic<bool> closed_{false};
};

// Client-facing connection: send() multicasts via the sequenced target,
// recv() collects replica replies on a private transport.
class McastClientConnection final : public Connection {
 public:
  McastClientConnection(ConnPtr inner, TransportPtr transport, Addr target)
      : inner_(std::move(inner)),
        transport_(std::move(transport)),
        target_(std::move(target)),
        local_(transport_->local_addr()) {}

  ~McastClientConnection() override { close(); }

  Result<void> send(Msg m) override {
    Bytes framed = mcast_frame(local_, m.payload);
    return transport_->send_to(target_, framed);
  }

  Result<Msg> recv(Deadline deadline) override {
    BERTHA_TRY_ASSIGN(pkt, transport_->recv(deadline));
    Msg m;
    m.src = std::move(pkt.src);
    m.dst = local_;
    m.payload = std::move(pkt.payload);
    return m;
  }

  const Addr& local_addr() const override { return local_; }
  const Addr& peer_addr() const override { return target_; }

  void close() override {
    transport_->close();
    inner_->close();
  }

 private:
  ConnPtr inner_;
  TransportPtr transport_;
  Addr target_;
  Addr local_;
};

}  // namespace

// --- chunnel base ---

OrderedMcastChunnelBase::~OrderedMcastChunnelBase() { teardown(); }

namespace {

// Replica states are shared *across* implementation instances: the
// switch and software impls of the same listener must use one member
// transport (only one bind of the member address can exist). Keyed by
// member address; weak so states die with their last listener.
std::mutex g_replica_mu;
std::map<std::string, std::weak_ptr<McastReplicaState>> g_replica_states;

Result<std::shared_ptr<McastReplicaState>> shared_replica_state(
    const Addr& member_addr, TransportFactory& transports, Duration gap) {
  std::lock_guard<std::mutex> lk(g_replica_mu);
  std::string key = member_addr.to_string();
  if (auto it = g_replica_states.find(key); it != g_replica_states.end()) {
    if (auto live = it->second.lock()) return live;
    g_replica_states.erase(it);
  }
  BERTHA_TRY_ASSIGN(t, transports.bind(member_addr));
  auto st = std::make_shared<McastReplicaState>(
      std::shared_ptr<Transport>(std::move(t)), gap);
  g_replica_states[key] = st;
  return st;
}

}  // namespace

Result<void> OrderedMcastChunnelBase::on_listen(ListenContext& ctx) {
  // Each replica binds its member address (provided by the application
  // in the DAG args, as each replica knows which group member it is).
  BERTHA_TRY_ASSIGN(member_uri, ctx.app_args.get("member_addr"));
  BERTHA_TRY_ASSIGN(member_addr, Addr::parse(member_uri));

  auto gap_us = ctx.app_args.get_u64_or("gap_timeout_us", 20000);
  BERTHA_TRY_ASSIGN(st,
                    shared_replica_state(member_addr, *ctx.transports,
                                         us(static_cast<int64_t>(gap_us))));
  std::lock_guard<std::mutex> lk(mu_);
  replicas_[ctx.listen_addr.to_string()] = std::move(st);
  return ok();
}

Result<ConnPtr> OrderedMcastChunnelBase::wrap(ConnPtr inner, WrapContext& ctx) {
  if (ctx.role == Role::server) {
    std::shared_ptr<McastReplicaState> st;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = replicas_.find(ctx.listen_addr.to_string());
      if (it != replicas_.end()) st = it->second;
    }
    if (!st)
      return err(Errc::internal,
                 "ordered_mcast: no replica state for this listener");
    return ConnPtr(
        std::make_shared<McastReplicaConnection>(std::move(inner), st));
  }

  // Client: send sequenced operations toward the negotiated target.
  BERTHA_TRY_ASSIGN(target_uri, ctx.args.get(target_arg_));
  BERTHA_TRY_ASSIGN(target, Addr::parse(target_uri));
  BERTHA_TRY_ASSIGN(
      t, ctx.transports->bind(ephemeral_like(target, ctx.local_host_id)));
  return ConnPtr(std::make_shared<McastClientConnection>(
      std::move(inner), std::move(t), std::move(target)));
}

void OrderedMcastChunnelBase::teardown() {
  // States are shared with the sibling implementation (and with live
  // connections); dropping our references stops each state when its
  // last owner goes away (~McastReplicaState joins the pump thread).
  std::lock_guard<std::mutex> lk(mu_);
  replicas_.clear();
}

uint64_t OrderedMcastChunnelBase::gaps_skipped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, st] : replicas_) total += st->gaps();
  return total;
}

SwitchOrderedMcastChunnel::SwitchOrderedMcastChunnel()
    : OrderedMcastChunnelBase("group_addr") {
  info_.type = "ordered_mcast";
  info_.name = "ordered_mcast/switch";
  info_.scope = Scope::rack;
  info_.endpoints = EndpointConstraint::server;
  info_.priority = 20;
  // Instantiation code only: usable when a switch advertises a group.
  info_.factory_only = true;
}

SoftwareOrderedMcastChunnel::SoftwareOrderedMcastChunnel()
    : OrderedMcastChunnelBase("sequencer_addr") {
  info_.type = "ordered_mcast";
  info_.name = "ordered_mcast/software";
  info_.scope = Scope::global;
  info_.endpoints = EndpointConstraint::server;
  info_.priority = 5;
  // Usable only against a running, discovery-advertised sequencer.
  info_.factory_only = true;
  // Offload synthesis (src/synth/): the sequencing duty can move into a
  // switch sequencer slot (stamp + forward to the group).
  info_.props["synth.pattern"] = "mcast_seq";
}

// --- software sequencer ---

SoftwareSequencer::SoftwareSequencer(std::shared_ptr<Transport> t,
                                     std::vector<Addr> members,
                                     size_t retransmit_window, uint32_t view,
                                     bool standby)
    : transport_(std::move(t)),
      addr_(transport_->local_addr()),
      members_(std::move(members)),
      window_(retransmit_window) {
  view_.store(view, std::memory_order_release);
  active_.store(!standby, std::memory_order_release);
  thread_ = std::thread([this] {
    // The retransmit log lives on this thread alone: stamped packet seq
    // s sits at log[s - log_base].
    std::deque<Bytes> log;
    uint64_t log_base = 0;
    auto multicast = [this](const Bytes& pkt) {
      std::vector<Addr> members;
      {
        std::lock_guard<std::mutex> lk(members_mu_);
        members = members_;
      }
      for (const auto& m : members) (void)transport_->send_to(m, pkt);
    };
    auto stamp_and_send = [&](BytesView frame) {
      uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      Bytes stamped;
      stamped.reserve(8 + frame.size());
      put_u64_le(stamped,
                 mcast_stamp(view_.load(std::memory_order_relaxed), seq));
      append(stamped, frame);
      multicast(stamped);
      if (window_ != 0) {
        log.push_back(std::move(stamped));
        while (log.size() > window_) {
          log.pop_front();
          log_base++;
        }
      }
      count_.fetch_add(1, std::memory_order_relaxed);
    };
    for (;;) {
      auto pkt_r = transport_->recv();
      if (!pkt_r.ok()) return;
      const Packet& pkt = pkt_r.value();
      if (auto vs_r = parse_mcast_view_start(pkt.payload); vs_r.ok()) {
        // Election result. Activation is idempotent and only moves
        // forward: a standby wakes at the elected view, an active
        // sequencer re-elected at a higher view (candidate-list
        // wrap-around) adopts it. The old log is from a dead view —
        // drop it and resume the seq chain at the quorum's agreed
        // point.
        const McastViewStart& vs = vs_r.value();
        uint32_t cur = view_.load(std::memory_order_relaxed);
        bool adopt = vs.view > cur ||
                     (vs.view == cur && !active_.load(std::memory_order_relaxed));
        if (!adopt) continue;
        view_.store(vs.view, std::memory_order_release);
        uint64_t ns =
            std::max(next_seq_.load(std::memory_order_relaxed), vs.start_seq);
        next_seq_.store(ns, std::memory_order_relaxed);
        log.clear();
        log_base = ns;
        active_.store(true, std::memory_order_release);
        // Announce the view with a stamped no-op so replicas adopt it
        // (and re-propose in-flight ops) even before any client op
        // reaches us.
        stamp_and_send(mcast_frame(addr_, BytesView{}));
        continue;
      }
      if (!active_.load(std::memory_order_relaxed)) continue;  // standby
      if (window_ != 0) {
        if (auto fetch_r = parse_mcast_fetch(pkt.payload); fetch_r.ok()) {
          // A replica saw a gap; re-send what the log still covers. For
          // the prefix already pruned from the log, answer with a miss
          // frame — the replica catches up from a peer snapshot instead
          // of skipping. Seqs beyond the log's head have simply not
          // been stamped yet and are not a miss.
          const McastFetch& f = fetch_r.value();
          if (f.from < log_base) {
            (void)transport_->send_to(
                f.reply_to,
                mcast_fetch_miss_frame(view_.load(std::memory_order_relaxed),
                                       f.from, std::min(f.to, log_base)));
          }
          uint64_t from = std::max(f.from, log_base);
          uint64_t to = std::min(f.to, log_base + log.size());
          for (uint64_t s = from; s < to; s++) {
            (void)transport_->send_to(f.reply_to, log[s - log_base]);
            retransmits_.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
      }
      // Validate before stamping; non-mcast datagrams are dropped.
      if (!parse_mcast_frame(pkt.payload).ok()) continue;
      stamp_and_send(pkt.payload);
    }
  });
}

void SoftwareSequencer::update_members(std::vector<Addr> members) {
  std::lock_guard<std::mutex> lk(members_mu_);
  members_ = std::move(members);
}

Result<std::unique_ptr<SoftwareSequencer>> SoftwareSequencer::start(
    TransportFactory& factory, const Addr& bind_addr,
    std::vector<Addr> members, size_t retransmit_window, uint32_t view,
    bool standby) {
  if (members.empty())
    return err(Errc::invalid_argument, "sequencer needs members");
  BERTHA_TRY_ASSIGN(t, factory.bind(bind_addr));
  return std::unique_ptr<SoftwareSequencer>(new SoftwareSequencer(
      std::shared_ptr<Transport>(std::move(t)), std::move(members),
      retransmit_window, view, standby));
}

Result<std::unique_ptr<SoftwareSequencer>> SoftwareSequencer::start_with(
    std::shared_ptr<Transport> transport, std::vector<Addr> members,
    size_t retransmit_window, uint32_t view, bool standby) {
  if (!transport) return err(Errc::invalid_argument, "null transport");
  if (members.empty())
    return err(Errc::invalid_argument, "sequencer needs members");
  return std::unique_ptr<SoftwareSequencer>(
      new SoftwareSequencer(std::move(transport), std::move(members),
                            retransmit_window, view, standby));
}

SoftwareSequencer::~SoftwareSequencer() { stop(); }

void SoftwareSequencer::stop() {
  transport_->close();
  if (thread_.joinable()) thread_.join();
}

Result<void> SoftwareSequencer::register_with(DiscoveryClient& discovery,
                                              const std::string& instance) {
  ImplInfo info;
  info.type = "ordered_mcast";
  info.name = "ordered_mcast/software:" + addr_.to_string();
  info.scope = Scope::global;
  info.endpoints = EndpointConstraint::server;
  info.priority = 5;
  info.props["sequencer_addr"] = addr_.to_string();
  info.props["sequencer"] = "software";
  info.props["instance"] = instance;
  info.props["synth.pattern"] = "mcast_seq";
  return discovery.register_impl(info);
}

}  // namespace bertha
