#include "chunnels/localfastpath.hpp"

#include "core/runtime.hpp"
#include "util/log.hpp"

namespace bertha {

LocalFastPathChunnel::LocalFastPathChunnel() {
  info_.type = "local_or_remote";
  info_.name = "local_or_remote/uds";
  info_.scope = Scope::host;  // the fast path only exists host-locally
  info_.endpoints = EndpointConstraint::server;
  info_.priority = 5;
}

Result<void> LocalFastPathChunnel::on_listen(ListenContext& ctx) {
  // Bind an auxiliary unix-socket listen path and advertise it. If the
  // platform/factory can't provide one (e.g. a SimNet-only runtime),
  // quietly skip: connections still work over the primary transport.
  auto t = ctx.transports->bind(Addr::uds("fp-" + make_unique_id()));
  if (!t.ok()) {
    BLOG(info, "local_or_remote")
        << "no unix transport available (" << t.error().to_string()
        << "); fast path disabled for this listener";
    return ok();
  }
  Addr uds_addr = t.value()->local_addr();
  BERTHA_TRY(ctx.add_listen_transport(std::move(t).value()));
  ctx.advertise("fastpath_addr", uds_addr.to_string());
  ctx.advertise("fastpath_host", ctx.host_id);
  BLOG(info, "local_or_remote") << "advertising fast path at "
                                << uds_addr.to_string();
  return ok();
}

Result<ConnPtr> LocalFastPathChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  if (ctx.role == Role::server) return inner;  // demux-by-token handles it

  // Client: switch to the unix socket when both ends share a host.
  std::string fp_addr = ctx.args.get_or("fastpath_addr", "");
  std::string fp_host = ctx.args.get_or("fastpath_host", "");
  if (fp_addr.empty() || fp_host != ctx.local_host_id || !ctx.rebase)
    return inner;  // remote (or no fast path offered): plain path

  auto addr_r = Addr::parse(fp_addr);
  if (!addr_r.ok()) {
    BLOG(warn, "local_or_remote") << "bad advertised fastpath addr: " << fp_addr;
    return inner;
  }
  auto t = ctx.transports->bind(Addr::uds(""));  // autobind our side
  if (!t.ok()) {
    BLOG(warn, "local_or_remote")
        << "cannot bind unix socket: " << t.error().to_string();
    return inner;
  }
  auto rebased = ctx.rebase(std::move(t).value(), addr_r.value());
  if (!rebased.ok()) {
    BLOG(warn, "local_or_remote") << "rebase failed: "
                                  << rebased.error().to_string();
    return inner;
  }
  BLOG(info, "local_or_remote") << "connection rebased onto " << fp_addr;
  return inner;
}

}  // namespace bertha
