// Deduplication chunnel: suppresses duplicate deliveries.
//
// At-least-once layers (application-level retries, retransmitting
// lower layers without their own dedup) can deliver the same message
// twice; this chunnel gives the receiver idempotent delivery by
// remembering recently seen message ids in a bounded window.
//
// Wire format: 'D' '1' | varint msg-id | payload. The sender stamps a
// fresh id per send; retransmissions of the *same logical message* must
// reuse the id (which application-level retry code does by re-sending
// the same encoded bytes).
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

struct DedupOptions {
  size_t window = 4096;  // remembered ids per connection
};

class DedupChunnel final : public ChunnelImpl {
 public:
  explicit DedupChunnel(DedupOptions opts);
  DedupChunnel() : DedupChunnel(DedupOptions{}) {}

  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  DedupOptions opts_;
};

// Helper used by application-level retry code: re-encode a previously
// sent dedup payload so a retry carries the same message id.
Bytes dedup_stamp(uint64_t msg_id, BytesView payload);

}  // namespace bertha
