#include "chunnels/framing.hpp"

#include "chunnels/encrypt.hpp"
#include "serialize/codec.hpp"

namespace bertha {

namespace {

// 4-byte stream header (stream id + flags placeholder) + varint length.
class FrameConnection final : public Connection {
 public:
  FrameConnection(ConnPtr inner, uint32_t stream_id)
      : inner_(std::move(inner)), stream_id_(stream_id) {}

  Result<void> send(Msg m) override {
    Writer w;
    w.put_u8(static_cast<uint8_t>(stream_id_));
    w.put_u8(static_cast<uint8_t>(stream_id_ >> 8));
    w.put_u8(static_cast<uint8_t>(stream_id_ >> 16));
    w.put_u8(0);  // flags
    w.put_bytes(m.payload);
    m.payload = std::move(w).take();
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      BERTHA_TRY_ASSIGN(m, inner_->recv(deadline));
      Reader r(m.payload);
      auto b0 = r.get_u8();
      auto b1 = r.get_u8();
      auto b2 = r.get_u8();
      auto flags = r.get_u8();
      if (!b0.ok() || !b1.ok() || !b2.ok() || !flags.ok()) continue;
      auto body = r.get_bytes();
      if (!body.ok() || !r.at_end()) continue;  // malformed: drop
      m.payload = std::move(body).value();
      return m;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
  uint32_t stream_id_;
};

}  // namespace

FrameChunnel::FrameChunnel() {
  info_.type = "frame";
  info_.name = "frame/http2ish";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
  info_.props["offloadable"] = "false";
  // The optimizer may move framing across encryption and reliability
  // (framing bytes are opaque to both).
  info_.props["commutes_with"] = "encrypt,tcpish,reliable";
  // Offload synthesis (src/synth/): the fixed header + length varint is
  // parseable (and strippable) by a compiled program.
  info_.props["synth.pattern"] = "frame";
}

Result<ConnPtr> FrameChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  uint32_t stream = static_cast<uint32_t>(ctx.args.get_u64_or("stream_id", 1));
  return ConnPtr(std::make_shared<FrameConnection>(std::move(inner), stream));
}

TcpishChunnel::TcpishChunnel() {
  info_.type = "tcpish";
  info_.name = "tcpish/sw";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
  info_.props["offloadable"] = "false";
  info_.props["commutes_with"] = "frame";
}

Result<ConnPtr> TcpishChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  return reliable_.wrap(std::move(inner), ctx);
}

TlsChunnel::TlsChunnel(std::shared_ptr<SimNic> nic) : nic_(std::move(nic)) {
  info_.type = "tls";
  info_.name = nic_ ? "tls/nic" : "tls/sw";
  info_.scope = nic_ ? Scope::host : Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = nic_ ? 15 : 0;
  info_.props["offloadable"] = nic_ ? "true" : "false";
  info_.props["commutes_with"] = "frame";
  if (nic_) {
    info_.props["device"] = nic_->name();
    info_.resources = {ResourceReq{nic_->crypto_pool(), 1}};
  }
}

Result<ConnPtr> TlsChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  // TLS = encrypt over a reliable stream; the merged engine does both in
  // one device pass, so the payload crosses PCIe once per direction.
  BERTHA_TRY_ASSIGN(reliable, reliable_.wrap(std::move(inner), ctx));
  uint64_t key = ctx.args.get_u64_or("key", 0x5eed);
  if (!nic_) {
    SwEncryptChunnel sw;
    ChunnelArgs args = ctx.args;
    args.set_u64("key", key);
    WrapContext sub = ctx;
    sub.args = args;
    return sw.wrap(std::move(reliable), sub);
  }
  NicEncryptChunnel nic_encrypt(nic_);
  WrapContext sub = ctx;
  return nic_encrypt.wrap(std::move(reliable), sub);
}

}  // namespace bertha
