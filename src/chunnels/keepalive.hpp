// Keepalive chunnel: connection liveness over datagrams.
//
// Datagram connections have no FIN/RST; a peer that vanishes (crash,
// network partition) just goes silent. This chunnel sends heartbeats
// when the connection is idle and fails recv() with Errc::unavailable
// once nothing — data or heartbeat — has arrived for `dead_after`.
// Heartbeats are filtered out before the application sees them.
//
// Wire format: data is passed through prefixed with 'K' 'D'; heartbeats
// are the two bytes 'K' 'H'.
#pragma once

#include "core/chunnel.hpp"

namespace bertha {

struct KeepaliveOptions {
  Duration interval = ms(200);    // heartbeat period when idle
  Duration dead_after = seconds(1);  // silence threshold
};

class KeepaliveChunnel final : public ChunnelImpl {
 public:
  explicit KeepaliveChunnel(KeepaliveOptions opts);
  KeepaliveChunnel() : KeepaliveChunnel(KeepaliveOptions{}) {}

  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  KeepaliveOptions opts_;
};

}  // namespace bertha
