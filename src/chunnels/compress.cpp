#include "chunnels/compress.hpp"

#include "serialize/codec.hpp"

namespace bertha {

Bytes rle_encode(BytesView data) {
  Writer w;
  size_t i = 0;
  while (i < data.size()) {
    uint8_t b = data[i];
    size_t run = 1;
    while (i + run < data.size() && data[i + run] == b) run++;
    w.put_u8(b);
    w.put_varint(run);
    i += run;
  }
  return std::move(w).take();
}

Result<Bytes> rle_decode(BytesView data) {
  Reader r(data);
  Bytes out;
  while (!r.at_end()) {
    BERTHA_TRY_ASSIGN(b, r.get_u8());
    BERTHA_TRY_ASSIGN(run, r.get_varint());
    if (run == 0 || out.size() + run > (1u << 26))
      return err(Errc::protocol_error, "bad rle run");
    out.insert(out.end(), run, b);
  }
  return out;
}

namespace {

class CompressConnection final : public Connection {
 public:
  explicit CompressConnection(ConnPtr inner) : inner_(std::move(inner)) {}

  Result<void> send(Msg m) override {
    m.payload = rle_encode(m.payload);
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      BERTHA_TRY_ASSIGN(m, inner_->recv(deadline));
      auto decoded = rle_decode(m.payload);
      if (!decoded.ok()) continue;  // not ours
      m.payload = std::move(decoded).value();
      return m;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
};

}  // namespace

CompressChunnel::CompressChunnel() {
  info_.type = "compress";
  info_.name = "compress/rle";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
  info_.props["offloadable"] = "false";
}

Result<ConnPtr> CompressChunnel::wrap(ConnPtr inner, WrapContext&) {
  return ConnPtr(std::make_shared<CompressConnection>(std::move(inner)));
}

}  // namespace bertha
