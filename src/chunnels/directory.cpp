#include "chunnels/directory.hpp"

#include <algorithm>

namespace bertha {

Result<void> ServiceDirectory::register_instance(const std::string& service,
                                                 const ServiceInstance& inst) {
  if (!inst.addr.valid())
    return err(Errc::invalid_argument, "instance needs a valid addr");
  ImplInfo info;
  info.type = type_for(service);
  info.name = info.type + "@" + inst.addr.to_string();
  info.scope = Scope::global;
  info.endpoints = EndpointConstraint::server;
  info.priority = 0;
  info.props["addr"] = inst.addr.to_string();
  info.props["host_id"] = inst.host_id;
  info.props["metric"] = std::to_string(inst.metric);
  return discovery_->register_impl(info);
}

Result<void> ServiceDirectory::unregister_instance(const std::string& service,
                                                   const Addr& addr) {
  return discovery_->unregister_impl(type_for(service),
                                     type_for(service) + "@" + addr.to_string());
}

Result<std::vector<ServiceInstance>> ServiceDirectory::resolve_all(
    const std::string& service) {
  BERTHA_TRY_ASSIGN(entries, discovery_->query(type_for(service)));
  std::vector<ServiceInstance> out;
  for (const auto& e : entries) {
    auto ait = e.props.find("addr");
    if (ait == e.props.end()) continue;
    auto addr_r = Addr::parse(ait->second);
    if (!addr_r.ok()) continue;
    ServiceInstance inst;
    inst.addr = std::move(addr_r).value();
    if (auto hit = e.props.find("host_id"); hit != e.props.end())
      inst.host_id = hit->second;
    if (auto mit = e.props.find("metric"); mit != e.props.end())
      inst.metric = static_cast<uint32_t>(std::strtoul(mit->second.c_str(),
                                                       nullptr, 10));
    out.push_back(std::move(inst));
  }
  return out;
}

Result<ServiceInstance> ServiceDirectory::resolve(
    const std::string& service, const std::string& local_host_id) {
  BERTHA_TRY_ASSIGN(instances, resolve_all(service));
  if (instances.empty())
    return err(Errc::not_found, "no instances of service '" + service + "'");
  std::sort(instances.begin(), instances.end(),
            [&](const ServiceInstance& a, const ServiceInstance& b) {
              bool a_local = a.host_id == local_host_id;
              bool b_local = b.host_id == local_host_id;
              if (a_local != b_local) return a_local;
              if (a.metric != b.metric) return a.metric < b.metric;
              return a.addr < b.addr;
            });
  return instances.front();
}

}  // namespace bertha
