// Encryption chunnel (used by the paper's §6 pipeline example:
// encrypt |> http2 |> tcp).
//
// The cipher is a keyed xor keystream — a stand-in, NOT secure crypto;
// what matters for the reproduction is that it is a byte-transforming
// stage with a software implementation and a (simulated) NIC-offloaded
// implementation whose placement the DAG optimizer reasons about.
//
//   encrypt/sw   runs on the host CPU (the fallback),
//   encrypt/nic  "runs on the SmartNIC": same transform, but charges the
//                SimNic PCIe model for moving the payload to the device
//                and back, and consumes a NIC crypto engine per
//                connection (resource admission, §6).
#pragma once

#include <memory>

#include "core/chunnel.hpp"
#include "sim/simnic.hpp"

namespace bertha {

// Keystream transform shared by both implementations (xor is its own
// inverse). Key comes from the "key" DAG arg.
void xor_keystream(Bytes& data, uint64_t key);

class SwEncryptChunnel final : public ChunnelImpl {
 public:
  SwEncryptChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

class NicEncryptChunnel final : public ChunnelImpl {
 public:
  // The factory needs the device it offloads to.
  explicit NicEncryptChunnel(std::shared_ptr<SimNic> nic);
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
  std::shared_ptr<SimNic> nic_;
};

}  // namespace bertha
