// Ordered multicast chunnel (paper §3.2 "Network-Assisted Consensus",
// Listing 2/3) — the NOPaxos/Speculative-Paxos building block.
//
// Clients send operations to a consensus group; every replica delivers
// them in one global order. Two implementations:
//
//   ordered_mcast/switch    packets are sequenced *in the network*: the
//                           SimSwitch installs a hardware-sequenced
//                           multicast group into SimNet, which stamps a
//                           global sequence number in transit with no
//                           extra hop (advertised via discovery by the
//                           switch; see sim/simswitch.hpp),
//   ordered_mcast/software  the host fallback: a SoftwareSequencer
//                           process receives each operation, stamps it,
//                           and re-multicasts — one extra network hop
//                           and a CPU on the critical path.
//
// Wire format reaching each replica:
//   [u64le stamp][ 'M' '1' | varint reply_uri_len | reply_uri | op ]
// where stamp packs a sequencer view number into the top 16 bits and
// the global sequence number into the low 48 (view 0 == the original
// unversioned format, so pre-view traffic parses unchanged). Replies
// are raw payloads sent directly to reply_uri.
//
// Server-side semantics: every replica sees ONE globally-ordered
// operation stream per listener; all accepted connections at that
// listener drain the same stream (consensus applies operations from all
// clients in one order). Gaps (drops) are skipped after a timeout and
// counted — a real protocol would trigger its recovery path here.
#pragma once

#include <atomic>
#include <thread>
#include <unordered_map>

#include "chunnels/common.hpp"
#include "core/chunnel.hpp"
#include "core/discovery.hpp"
#include "util/queue.hpp"

namespace bertha {

// Shared per-listener replica state: the member transport and the
// ordered delivery queue.
class McastReplicaState;

// Base for the two implementations (they differ only in where clients
// send: the group address vs the sequencer address).
class OrderedMcastChunnelBase : public ChunnelImpl {
 public:
  ~OrderedMcastChunnelBase() override;
  Result<void> on_listen(ListenContext& ctx) override;
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;
  void teardown() override;

  // Total head-of-line gaps skipped across replicas (lost sequenced
  // packets a real consensus protocol would recover).
  uint64_t gaps_skipped() const;

 protected:
  explicit OrderedMcastChunnelBase(std::string target_arg)
      : target_arg_(std::move(target_arg)) {}
  ImplInfo info_;

 private:
  std::string target_arg_;  // "group_addr" or "sequencer_addr"
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<McastReplicaState>> replicas_;
};

class SwitchOrderedMcastChunnel final : public OrderedMcastChunnelBase {
 public:
  SwitchOrderedMcastChunnel();
  const ImplInfo& info() const override { return info_; }
};

class SoftwareOrderedMcastChunnel final : public OrderedMcastChunnelBase {
 public:
  SoftwareOrderedMcastChunnel();
  const ImplInfo& info() const override { return info_; }
};

// The host-fallback sequencer: stamps and re-multicasts operations.
// Start one per group, then register_with() discovery so negotiation
// can pick it when no switch offload exists.
class SoftwareSequencer {
 public:
  // `retransmit_window`: stamped packets kept for gap recovery — a
  // replica that detects a sequence gap sends a fetch frame and the
  // sequencer re-sends the missing range from this bounded log. 0 (the
  // default) disables retransmission, matching the original skip-on-gap
  // behaviour.
  //
  // `standby`: start passive — drop all traffic until a view-start
  // frame activates this sequencer at some view > `view`. A view-change
  // round (src/control/replica) elects standbys in candidate-list
  // order.
  static Result<std::unique_ptr<SoftwareSequencer>> start(
      TransportFactory& factory, const Addr& bind_addr,
      std::vector<Addr> members, size_t retransmit_window = 0,
      uint32_t view = 0, bool standby = false);
  // Same, over an already-bound transport (the control plane pre-binds
  // fault-injecting transports for its sequencers).
  static Result<std::unique_ptr<SoftwareSequencer>> start_with(
      std::shared_ptr<Transport> transport, std::vector<Addr> members,
      size_t retransmit_window = 0, uint32_t view = 0, bool standby = false);
  ~SoftwareSequencer();

  // Advertise this sequencer as an ordered_mcast implementation
  // serving application instance `instance` (see the "instance" arg on
  // ordered_mcast DAG nodes).
  Result<void> register_with(DiscoveryClient& discovery,
                             const std::string& instance);

  const Addr& addr() const { return addr_; }
  uint64_t sequenced() const { return count_.load(std::memory_order_relaxed); }
  // Stamped packets re-sent in answer to fetch frames.
  uint64_t retransmitted() const {
    return retransmits_.load(std::memory_order_relaxed);
  }
  // The view this sequencer stamps with; advances when a view-start
  // frame re-elects it.
  uint32_t view() const { return view_.load(std::memory_order_acquire); }
  // False while standing by (pre-election).
  bool active() const { return active_.load(std::memory_order_acquire); }
  // Replace the multicast member list (membership reconfiguration).
  void update_members(std::vector<Addr> members);
  void stop();

 private:
  SoftwareSequencer(std::shared_ptr<Transport> t, std::vector<Addr> members,
                    size_t retransmit_window, uint32_t view, bool standby);

  std::shared_ptr<Transport> transport_;
  Addr addr_;
  mutable std::mutex members_mu_;
  std::vector<Addr> members_;
  size_t window_ = 0;
  std::atomic<uint32_t> view_{0};
  std::atomic<bool> active_{true};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::thread thread_;
};

// Framing helpers (shared with tests).

// The u64 stamp prefixed to every sequenced datagram packs the
// sequencer's view into the top 16 bits and the global sequence number
// into the low 48. Seq stays monotonic *across* views (a new sequencer
// resumes from the agreed last-contiguous seq), so ordered delivery
// logic keys on seq alone and view only gates staleness.
inline constexpr unsigned kMcastSeqBits = 48;
inline constexpr uint64_t kMcastSeqMask =
    (uint64_t(1) << kMcastSeqBits) - 1;
inline constexpr uint64_t mcast_stamp(uint32_t view, uint64_t seq) {
  return (uint64_t(view) << kMcastSeqBits) | (seq & kMcastSeqMask);
}

Bytes mcast_frame(const Addr& reply_to, BytesView op);
struct McastOp {
  uint64_t seq;
  uint32_t view = 0;
  Addr reply_to;
  BytesView payload;
};
// Parses [seq][frame] as delivered to a replica.
Result<McastOp> parse_sequenced_mcast(BytesView datagram);
// Parses just the frame (what a sequencer receives, before stamping).
Result<std::pair<Addr, BytesView>> parse_mcast_frame(BytesView datagram);

// Gap-recovery fetch: a replica asks the sequencer to re-send stamped
// packets with seq in [from, to).
struct McastFetch {
  Addr reply_to;
  uint64_t from = 0;
  uint64_t to = 0;
};
Bytes mcast_fetch_frame(const Addr& reply_to, uint64_t from, uint64_t to);
Result<McastFetch> parse_mcast_fetch(BytesView datagram);

// Fetch miss: the sequencer's answer when (part of) a fetched range
// has been evicted from its bounded resend log — those seqs cannot be
// retransmitted, and the replica should catch up from a peer snapshot
// instead of skipping.
struct McastFetchMiss {
  uint32_t view = 0;
  uint64_t from = 0;
  uint64_t to = 0;  // exclusive; the evicted subrange of the fetch
};
Bytes mcast_fetch_miss_frame(uint32_t view, uint64_t from, uint64_t to);
Result<McastFetchMiss> parse_mcast_fetch_miss(BytesView datagram);

// View start: sent by a replica that collected a view-change quorum to
// the elected candidate sequencer. Activates it at `view`, resuming the
// seq chain at `start_seq` (the quorum's max last-contiguous seq).
struct McastViewStart {
  uint32_t view = 0;
  uint64_t start_seq = 0;
};
Bytes mcast_view_start_frame(uint32_t view, uint64_t start_seq);
Result<McastViewStart> parse_mcast_view_start(BytesView datagram);

}  // namespace bertha
