// Sharding chunnel (paper Listings 4/5, evaluated in Fig 5).
//
// A server exposes one canonical address; requests are steered to one of
// several backend shards by hashing a fixed field of the request
// payload (the analogue of Listing 4's
//   shard_fn = |p| hash(p.payload[10..14]) % 3
// — declarative field/modulo so an XDP program or a switch could run it).
//
// Three implementations, matching the paper's evaluation scenarios:
//
//   shard/client-push  the client computes the shard and sends directly
//                      to it: no steering hop at all, best scalability
//                      ("a case where the presence of a fallback
//                      implementation improves performance, even in the
//                      absence of offloads"),
//   shard/xdp          an accelerated server-side dispatcher that steers
//                      on the raw field bytes without parsing the
//                      request (our stand-in for the 200-line XDP
//                      program; see DESIGN.md §1.4),
//   shard/fallback     the server's in-application dispatcher: fully
//                      parses each request before steering, single
//                      threaded — correct but slow.
//
// Data-plane format. Requests carry a small shard header so the backend
// can reply directly to the client (direct server return — the role the
// real XDP redirect plays by preserving the source address):
//   "S1" | varint reply_uri_len | reply_uri | app payload
// Replies are the raw app payload sent to reply_uri.
#pragma once

#include <atomic>
#include <thread>

#include "chunnels/common.hpp"
#include "core/chunnel.hpp"
#include "core/discovery.hpp"
#include "sim/simswitch.hpp"

namespace bertha {

// DAG-node args understood by all implementations:
//   shards       comma-separated backend addresses (required)
//   field_offset byte offset of the shard key field in the app payload
//   field_len    field length in bytes (default 4)
struct ShardArgs {
  std::vector<Addr> shards;
  uint64_t field_offset = 0;
  uint64_t field_len = 4;

  static Result<ShardArgs> from(const ChunnelArgs& args);
  // The steering function every implementation agrees on.
  size_t pick(BytesView app_payload) const;
};

// The raw consistent-hash step shared by every steering path —
// ShardArgs::pick above and the discovery control plane's PartitionMap
// (src/control/), which partitions the catalogue by chunnel type with
// the same function so a future in-network steer stays byte-compatible.
size_t shard_pick(BytesView key, size_t n);

// Request framing helpers (exposed for ShardWorker and tests).
Bytes shard_frame(const Addr& reply_to, BytesView app_payload);
struct ShardRequest {
  Addr reply_to;
  BytesView payload;  // view into the input
};
Result<ShardRequest> parse_shard_frame(BytesView datagram);

class ShardClientPushChunnel final : public ChunnelImpl {
 public:
  ShardClientPushChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

class ShardXdpChunnel final : public ChunnelImpl {
 public:
  ShardXdpChunnel();
  ~ShardXdpChunnel() override;
  const ImplInfo& info() const override { return info_; }
  Result<void> on_listen(ListenContext& ctx) override;
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;
  void teardown() override;

  uint64_t packets_steered() const {
    return steered_.load(std::memory_order_relaxed);
  }

 private:
  ImplInfo info_;
  std::mutex mu_;
  std::vector<std::shared_ptr<Transport>> dispatchers_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> steered_{0};
};

// In-network sharding — the paper's Fig-1 "P4 Sharding Implementation":
// the programmable switch steers each request to its shard in transit,
// with no steering hop and no server CPU. The factory below is
// instantiation code only (factory_only); availability comes from an
// installed+advertised switch program (install_switch_shard_offload).
class ShardSwitchChunnel final : public ChunnelImpl {
 public:
  ShardSwitchChunnel();
  const ImplInfo& info() const override { return info_; }
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;

 private:
  ImplInfo info_;
};

// Installs the sharding match-action program on `sw` at
// sim://<vip>:<port> (consuming a match-action slot) and advertises it
// to discovery for application instance `instance`. All shard addresses
// must be SimNet addresses. Returns the VIP.
Result<Addr> install_switch_shard_offload(SimSwitch& sw,
                                          DiscoveryClient& discovery,
                                          const std::string& vip,
                                          uint16_t port, const ShardArgs& args,
                                          const std::string& instance);

class ShardFallbackChunnel final : public ChunnelImpl {
 public:
  ShardFallbackChunnel();
  ~ShardFallbackChunnel() override;
  const ImplInfo& info() const override { return info_; }
  Result<void> on_listen(ListenContext& ctx) override;
  Result<ConnPtr> wrap(ConnPtr inner, WrapContext& ctx) override;
  void teardown() override;

 private:
  ImplInfo info_;
  std::mutex mu_;
  std::vector<std::shared_ptr<Transport>> dispatchers_;
  std::vector<std::thread> threads_;
};

// The backend side: one ShardWorker per shard, owned by the server
// application (Listing 4 passes the shard list in). recv() yields
// requests with src set to the client's reply address; send() replies
// directly to it (direct server return).
class ShardWorker {
 public:
  static Result<std::unique_ptr<ShardWorker>> bind(TransportFactory& factory,
                                                   const Addr& addr);
  ~ShardWorker();

  Result<Msg> recv(Deadline deadline = Deadline::never());
  Result<void> reply(const Addr& to, BytesView payload);
  const Addr& addr() const { return addr_; }
  void close();

 private:
  explicit ShardWorker(TransportPtr t)
      : transport_(std::move(t)), addr_(transport_->local_addr()) {}
  TransportPtr transport_;
  Addr addr_;
};

}  // namespace bertha
