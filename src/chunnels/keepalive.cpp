#include "chunnels/keepalive.hpp"

#include <condition_variable>
#include <thread>

namespace bertha {

namespace {

class KeepaliveConnection final : public Connection {
 public:
  KeepaliveConnection(ConnPtr inner, KeepaliveOptions opts,
                      ConnLivenessPtr liveness)
      : inner_(std::move(inner)),
        opts_(opts),
        live_(liveness ? std::move(liveness)
                       : std::make_shared<ConnLiveness>()) {
    // Shared-liveness carry-over: a stack rebuilt mid-transition inherits
    // the previous epoch's timestamps, so a peer that went silent before
    // the cutover still trips dead_after on the original schedule. Only
    // a fresh connection (zero timestamps) starts the clocks at now.
    int64_t t = now().time_since_epoch().count();
    int64_t zero = 0;
    live_->last_sent.compare_exchange_strong(zero, t,
                                             std::memory_order_relaxed);
    zero = 0;
    live_->last_heard.compare_exchange_strong(zero, t,
                                              std::memory_order_relaxed);
    beater_ = std::thread([this] { beat_loop(); });
  }

  ~KeepaliveConnection() override { close(); }

  Result<void> send(Msg m) override {
    Bytes framed;
    framed.reserve(m.payload.size() + 2);
    framed.push_back('K');
    framed.push_back('D');
    append(framed, m.payload);
    m.payload = std::move(framed);
    live_->last_sent.store(now().time_since_epoch().count(),
                           std::memory_order_relaxed);
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      // Wake at least every interval to check the silence threshold.
      auto silence_deadline =
          TimePoint(
              Duration(live_->last_heard.load(std::memory_order_relaxed))) +
          opts_.dead_after;
      if (now() >= silence_deadline)
        return err(Errc::unavailable, "peer silent beyond dead_after");
      Deadline slice = Deadline::at(silence_deadline);
      if (!deadline.is_never() &&
          deadline.as_time_point() < slice.as_time_point())
        slice = deadline;

      auto m = inner_->recv(slice);
      if (!m.ok()) {
        if (m.error().code == Errc::timed_out) {
          if (deadline.expired()) return m.error();
          continue;  // silence check fires at the top
        }
        return m.error();
      }
      live_->last_heard.store(now().time_since_epoch().count(),
                              std::memory_order_relaxed);
      const Bytes& p = m.value().payload;
      if (p.size() >= 2 && p[0] == 'K' && p[1] == 'H') continue;  // heartbeat
      if (p.size() < 2 || p[0] != 'K' || p[1] != 'D') continue;   // stray
      Msg out;
      out.src = std::move(m.value().src);
      out.dst = std::move(m.value().dst);
      out.payload.assign(p.begin() + 2, p.end());
      return out;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }

  void close() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      closed_ = true;
    }
    cv_.notify_all();
    inner_->close();
    if (beater_.joinable()) beater_.join();
  }

 private:
  void beat_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!closed_) {
      cv_.wait_for(lk, opts_.interval);
      if (closed_) return;
      auto idle = now().time_since_epoch().count() -
                  live_->last_sent.load(std::memory_order_relaxed);
      if (Duration(idle) < opts_.interval) continue;  // traffic is flowing
      lk.unlock();
      Msg hb;
      hb.payload = {'K', 'H'};
      (void)inner_->send(std::move(hb));
      live_->last_sent.store(now().time_since_epoch().count(),
                             std::memory_order_relaxed);
      lk.lock();
    }
  }

  ConnPtr inner_;
  KeepaliveOptions opts_;
  ConnLivenessPtr live_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::thread beater_;
};

}  // namespace

KeepaliveChunnel::KeepaliveChunnel(KeepaliveOptions opts) : opts_(opts) {
  info_.type = "keepalive";
  info_.name = "keepalive/heartbeat";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
}

Result<ConnPtr> KeepaliveChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  KeepaliveOptions opts = opts_;
  opts.interval = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "interval_us",
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(opts_.interval)
              .count()))));
  opts.dead_after = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "dead_after_us",
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                opts_.dead_after)
                                .count()))));
  return ConnPtr(std::make_shared<KeepaliveConnection>(std::move(inner), opts,
                                                       ctx.liveness));
}

}  // namespace bertha
