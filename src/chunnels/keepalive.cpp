#include "chunnels/keepalive.hpp"

#include <condition_variable>
#include <thread>

#include "io/timer_wheel.hpp"

namespace bertha {

namespace {

// Two beat engines share this connection class:
//  - Wheel mode (ctx.wheel set): a periodic timer-wheel entry fires
//    every `interval` and sends the heartbeat from the wheel's tick
//    thread. An idle connection costs one wheel entry and zero threads
//    — the property the 100k-connection soak asserts.
//  - Thread mode (no wheel): the original dedicated beater thread. Kept
//    as the fallback for raw stacks built without a runtime and as the
//    reference behaviour the chaos parity test compares against.
// Dead-peer detection is recv-side in both modes and identical.
class KeepaliveConnection final
    : public Connection,
      public std::enable_shared_from_this<KeepaliveConnection> {
 public:
  KeepaliveConnection(ConnPtr inner, KeepaliveOptions opts,
                      ConnLivenessPtr liveness, TimerWheelPtr wheel)
      : inner_(std::move(inner)),
        opts_(opts),
        live_(liveness ? std::move(liveness)
                       : std::make_shared<ConnLiveness>()),
        wheel_(std::move(wheel)) {
    // Shared-liveness carry-over: a stack rebuilt mid-transition inherits
    // the previous epoch's timestamps, so a peer that went silent before
    // the cutover still trips dead_after on the original schedule. Only
    // a fresh connection (zero timestamps) starts the clocks at now.
    int64_t t = now().time_since_epoch().count();
    int64_t zero = 0;
    live_->last_sent.compare_exchange_strong(zero, t,
                                             std::memory_order_relaxed);
    zero = 0;
    live_->last_heard.compare_exchange_strong(zero, t,
                                              std::memory_order_relaxed);
    if (!wheel_) beater_ = std::thread([this] { beat_loop(); });
  }

  // Wheel mode only; called by wrap() right after make_shared (a
  // weak_from_this inside the constructor would be empty). The callback
  // holds a weak self so an abandoned connection can't be kept alive by
  // its own timer; once the weak expires the callback cancels itself.
  void arm() {
    if (!wheel_) return;
    std::weak_ptr<KeepaliveConnection> wself = weak_from_this();
    std::weak_ptr<TimerWheel> wwheel = wheel_;
    auto id = std::make_shared<uint64_t>(0);
    *id = wheel_->schedule_periodic(opts_.interval, [wself, wwheel, id] {
      if (auto self = wself.lock()) {
        self->beat_once();
      } else if (auto w = wwheel.lock()) {
        (void)w->cancel(*id);
      }
    });
    std::lock_guard<std::mutex> lk(mu_);
    timer_id_ = *id;
  }

  ~KeepaliveConnection() override { close(); }

  Result<void> send(Msg m) override {
    Bytes framed;
    framed.reserve(m.payload.size() + 2);
    framed.push_back('K');
    framed.push_back('D');
    append(framed, m.payload);
    m.payload = std::move(framed);
    live_->last_sent.store(now().time_since_epoch().count(),
                           std::memory_order_relaxed);
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    for (;;) {
      // Wake at least every interval to check the silence threshold. A
      // stale last_heard alone is not a dead verdict: frames queued on the
      // inner transport are proof the peer spoke, so once the threshold
      // passes we switch to non-blocking pops and only an *empty* queue
      // plus silence condemns the peer. (A consumer that stays away from
      // recv longer than dead_after would otherwise false-kill a live
      // connection whose heartbeats were waiting the whole time.)
      auto silence_deadline =
          TimePoint(
              Duration(live_->last_heard.load(std::memory_order_relaxed))) +
          opts_.dead_after;
      bool silent = now() >= silence_deadline;
      Deadline slice =
          silent ? Deadline::after(Duration::zero()) : Deadline::at(silence_deadline);
      if (!deadline.is_never() &&
          deadline.as_time_point() < slice.as_time_point())
        slice = deadline;

      auto m = inner_->recv(slice);
      if (!m.ok()) {
        if (m.error().code == Errc::timed_out) {
          if (silent)
            return err(Errc::unavailable, "peer silent beyond dead_after");
          if (deadline.expired()) return m.error();
          continue;  // silence check fires at the top
        }
        return m.error();
      }
      live_->last_heard.store(now().time_since_epoch().count(),
                              std::memory_order_relaxed);
      const Bytes& p = m.value().payload;
      if (p.size() >= 2 && p[0] == 'K' && p[1] == 'H') continue;  // heartbeat
      if (p.size() < 2 || p[0] != 'K' || p[1] != 'D') continue;   // stray
      Msg out;
      out.src = std::move(m.value().src);
      out.dst = std::move(m.value().dst);
      out.payload.assign(p.begin() + 2, p.end());
      return out;
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }

  void close() override {
    uint64_t timer = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      closed_ = true;
      timer = timer_id_;
    }
    // Async cancel is enough: a beat that already started sees closed_
    // and returns without touching inner_ past its close().
    if (timer && wheel_) (void)wheel_->cancel(timer);
    cv_.notify_all();
    inner_->close();
    if (beater_.joinable()) beater_.join();
  }

 private:
  // One wheel-driven beat: send a heartbeat iff the connection has been
  // send-idle for a full interval. Runs on the wheel tick thread, so it
  // must stay short — a datagram send, no waits.
  void beat_once() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
    }
    auto idle = now().time_since_epoch().count() -
                live_->last_sent.load(std::memory_order_relaxed);
    if (Duration(idle) < opts_.interval) return;  // traffic is flowing
    Msg hb;
    hb.payload = {'K', 'H'};
    (void)inner_->send(std::move(hb));
    live_->last_sent.store(now().time_since_epoch().count(),
                           std::memory_order_relaxed);
  }

  void beat_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!closed_) {
      cv_.wait_for(lk, opts_.interval);
      if (closed_) return;
      auto idle = now().time_since_epoch().count() -
                  live_->last_sent.load(std::memory_order_relaxed);
      if (Duration(idle) < opts_.interval) continue;  // traffic is flowing
      lk.unlock();
      Msg hb;
      hb.payload = {'K', 'H'};
      (void)inner_->send(std::move(hb));
      live_->last_sent.store(now().time_since_epoch().count(),
                             std::memory_order_relaxed);
      lk.lock();
    }
  }

  ConnPtr inner_;
  KeepaliveOptions opts_;
  ConnLivenessPtr live_;
  TimerWheelPtr wheel_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  uint64_t timer_id_ = 0;  // wheel mode; guarded by mu_
  std::thread beater_;     // thread mode only
};

}  // namespace

KeepaliveChunnel::KeepaliveChunnel(KeepaliveOptions opts) : opts_(opts) {
  info_.type = "keepalive";
  info_.name = "keepalive/heartbeat";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
}

Result<ConnPtr> KeepaliveChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  KeepaliveOptions opts = opts_;
  opts.interval = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "interval_us",
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(opts_.interval)
              .count()))));
  opts.dead_after = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "dead_after_us",
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                opts_.dead_after)
                                .count()))));
  auto conn = std::make_shared<KeepaliveConnection>(std::move(inner), opts,
                                                    ctx.liveness, ctx.wheel);
  conn->arm();
  return ConnPtr(conn);
}

}  // namespace bertha
