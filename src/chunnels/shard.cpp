#include "chunnels/shard.hpp"

#include "io/batch.hpp"
#include "serialize/codec.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace bertha {

// --- args & framing ---

Result<ShardArgs> ShardArgs::from(const ChunnelArgs& args) {
  ShardArgs out;
  BERTHA_TRY_ASSIGN(csv, args.get("shards"));
  BERTHA_TRY_ASSIGN(shards, parse_addr_list(csv));
  out.shards = std::move(shards);
  out.field_offset = args.get_u64_or("field_offset", 0);
  out.field_len = args.get_u64_or("field_len", 4);
  if (out.field_len == 0 || out.field_len > 64)
    return err(Errc::invalid_argument, "bad shard field_len");
  return out;
}

size_t shard_pick(BytesView key, size_t n) {
  if (n <= 1) return 0;
  return static_cast<size_t>(fnv1a64(key) % n);
}

size_t ShardArgs::pick(BytesView app_payload) const {
  if (shards.size() <= 1) return 0;
  if (app_payload.size() < field_offset + field_len) return 0;
  return shard_pick(app_payload.subspan(field_offset, field_len),
                    shards.size());
}

Bytes shard_frame(const Addr& reply_to, BytesView app_payload) {
  Writer w;
  w.put_u8('S');
  w.put_u8('1');
  w.put_string(reply_to.to_string());
  w.put_raw(app_payload);
  return std::move(w).take();
}

Result<ShardRequest> parse_shard_frame(BytesView datagram) {
  Reader r(datagram);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'S' || m1 != '1')
    return err(Errc::protocol_error, "bad shard frame magic");
  BERTHA_TRY_ASSIGN(uri, r.get_string());
  BERTHA_TRY_ASSIGN(reply_to, Addr::parse(uri));
  ShardRequest out;
  out.reply_to = std::move(reply_to);
  out.payload = r.rest();
  return out;
}

namespace {

// Cheap header-peek steering: skips the frame without copying and reads
// only the shard field — what the XDP program does.
Result<size_t> steer_fast(BytesView datagram, const ShardArgs& args) {
  Reader r(datagram);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != 'S' || m1 != '1')
    return err(Errc::protocol_error, "bad shard frame magic");
  // Skip the reply uri without materializing it.
  BERTHA_TRY_ASSIGN(len, r.get_varint());
  BERTHA_TRY_ASSIGN(skipped, r.get_raw(len));
  (void)skipped;
  return args.pick(r.rest());
}

// --- client-side connection used by all three implementations ---

class ShardClientConnection final : public Connection {
 public:
  enum class Mode { push, forward };

  ShardClientConnection(ConnPtr inner, TransportPtr transport, Mode mode,
                        ShardArgs args, Addr forward_target)
      : inner_(std::move(inner)),
        transport_(std::move(transport)),
        mode_(mode),
        args_(std::move(args)),
        forward_target_(std::move(forward_target)),
        local_(transport_->local_addr()) {}

  ~ShardClientConnection() override { close(); }

  Result<void> send(Msg m) override {
    Bytes framed = shard_frame(local_, m.payload);
    const Addr& target = mode_ == Mode::push
                             ? args_.shards[args_.pick(m.payload)]
                             : forward_target_;
    return transport_->send_to(target, framed);
  }

  Result<Msg> recv(Deadline deadline) override {
    // The negotiated control connection carries no application data on
    // the shard path (backends reply straight to this transport), but
    // server-initiated live-transition offers do arrive on it, and they
    // are only processed inside its recv. Drain it without blocking so a
    // renegotiation onto a better dispatcher (e.g. a synthesized switch
    // program) can reach an established shard connection.
    (void)inner_->recv(Deadline::after(ms(0)));
    BERTHA_TRY_ASSIGN(pkt, transport_->recv(deadline));
    Msg m;
    m.src = std::move(pkt.src);
    m.dst = local_;
    m.payload = std::move(pkt.payload);
    return m;
  }

  const Addr& local_addr() const override { return local_; }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }

  void close() override {
    transport_->close();
    inner_->close();
  }

 private:
  ConnPtr inner_;  // the negotiated control connection (kept for close)
  TransportPtr transport_;
  Mode mode_;
  ShardArgs args_;
  Addr forward_target_;
  Addr local_;
};

Result<ConnPtr> make_client_conn(ConnPtr inner, WrapContext& ctx,
                                 ShardClientConnection::Mode mode,
                                 const std::string& target_arg) {
  BERTHA_TRY_ASSIGN(args, ShardArgs::from(ctx.args));
  Addr target;
  if (mode == ShardClientConnection::Mode::forward) {
    BERTHA_TRY_ASSIGN(uri, ctx.args.get(target_arg));
    BERTHA_TRY_ASSIGN(parsed, Addr::parse(uri));
    target = std::move(parsed);
  }
  const Addr& like = mode == ShardClientConnection::Mode::forward
                         ? target
                         : args.shards.front();
  BERTHA_TRY_ASSIGN(t, ctx.transports->bind(
                           ephemeral_like(like, ctx.local_host_id)));
  return ConnPtr(std::make_shared<ShardClientConnection>(
      std::move(inner), std::move(t), mode, std::move(args),
      std::move(target)));
}

}  // namespace

// --- client-push ---

ShardClientPushChunnel::ShardClientPushChunnel() {
  info_.type = "shard";
  info_.name = "shard/client-push";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::client;
  info_.priority = 5;
  // Offload synthesis (src/synth/): this stage's wire format is the
  // shard frame, recognizable and steerable by a compiled program.
  info_.props["synth.pattern"] = "shard";
}

Result<ConnPtr> ShardClientPushChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  if (ctx.role == Role::server) return inner;  // backends do the work
  return make_client_conn(std::move(inner), ctx,
                          ShardClientConnection::Mode::push, "");
}

// --- accelerated server dispatcher (XDP stand-in) ---

ShardXdpChunnel::ShardXdpChunnel() {
  info_.type = "shard";
  info_.name = "shard/xdp";
  info_.scope = Scope::host;
  info_.endpoints = EndpointConstraint::server;
  info_.priority = 10;
  info_.props["synth.pattern"] = "shard";
}

ShardXdpChunnel::~ShardXdpChunnel() { teardown(); }

Result<void> ShardXdpChunnel::on_listen(ListenContext& ctx) {
  BERTHA_TRY_ASSIGN(args, ShardArgs::from(ctx.app_args));
  BERTHA_TRY_ASSIGN(t, ctx.transports->bind(
                           ephemeral_like(ctx.listen_addr, ctx.host_id)));
  std::shared_ptr<Transport> transport(std::move(t));
  ctx.advertise("xdp_addr", transport->local_addr().to_string());
  BLOG(info, "shard/xdp") << "attach: would run `ip link set dev ... xdp obj "
                             "shard.o`; dispatcher at "
                          << transport->local_addr().to_string();

  std::lock_guard<std::mutex> lk(mu_);
  dispatchers_.push_back(transport);
  threads_.emplace_back([this, transport, args = std::move(args)] {
    // Batched fast path: drain up to a batch per wakeup, steer each
    // datagram, then forward all kept ones with one send_batch call
    // (one sendmmsg on UDP). Mirrors an XDP program's per-NAPI-poll
    // batch processing far better than packet-at-a-time recv/send.
    std::vector<Datagram> batch(32);
    for (;;) {
      auto n_r = recv_batch(*transport, std::span<Datagram>(batch));
      if (!n_r.ok()) return;
      size_t kept = 0;
      for (size_t i = 0; i < n_r.value(); i++) {
        auto idx = steer_fast(batch[i].payload.view(), args);
        if (!idx.ok()) continue;  // not a shard frame
        // Forward the datagram unchanged; the backend replies directly
        // to the client (reply addr travels in the frame).
        batch[i].dst = args.shards[idx.value()];
        if (kept != i) std::swap(batch[kept], batch[i]);
        kept++;
      }
      if (kept == 0) continue;
      (void)send_batch(*transport, std::span<Datagram>(batch.data(), kept));
      steered_.fetch_add(kept, std::memory_order_relaxed);
    }
  });
  return ok();
}

Result<ConnPtr> ShardXdpChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  if (ctx.role == Role::server) return inner;
  return make_client_conn(std::move(inner), ctx,
                          ShardClientConnection::Mode::forward, "xdp_addr");
}

void ShardXdpChunnel::teardown() {
  std::vector<std::shared_ptr<Transport>> dispatchers;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    dispatchers.swap(dispatchers_);
    threads.swap(threads_);
  }
  for (auto& d : dispatchers) d->close();
  for (auto& th : threads)
    if (th.joinable()) th.join();
}

// --- in-network (switch) sharding ---

ShardSwitchChunnel::ShardSwitchChunnel() {
  info_.type = "shard";
  info_.name = "shard/switch";
  info_.scope = Scope::rack;
  info_.endpoints = EndpointConstraint::server;
  info_.priority = 15;  // in-network beats the host XDP path
  info_.factory_only = true;  // usable only against an installed program
}

Result<ConnPtr> ShardSwitchChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  if (ctx.role == Role::server) return inner;  // the switch does the work
  return make_client_conn(std::move(inner), ctx,
                          ShardClientConnection::Mode::forward, "vip_addr");
}

Result<Addr> install_switch_shard_offload(SimSwitch& sw,
                                          DiscoveryClient& discovery,
                                          const std::string& vip,
                                          uint16_t port, const ShardArgs& args,
                                          const std::string& instance) {
  if (args.shards.empty())
    return err(Errc::invalid_argument, "switch sharding needs shards");
  for (const auto& s : args.shards)
    if (s.kind != AddrKind::sim)
      return err(Errc::invalid_argument,
                 "switch sharding requires sim shard addrs, got " +
                     s.to_string());

  // The program is exactly the dispatcher fast path: peek the shard
  // field through the frame, no payload copies.
  ShardArgs captured = args;
  auto steer = [captured](BytesView datagram) -> Result<Addr> {
    BERTHA_TRY_ASSIGN(idx, steer_fast(datagram, captured));
    return captured.shards[idx];
  };
  BERTHA_TRY_ASSIGN(vaddr, sw.install_match_action(vip, port, steer));

  ImplInfo info;
  info.type = "shard";
  info.name = "shard/switch:" + vaddr.to_string();
  info.scope = Scope::rack;
  info.endpoints = EndpointConstraint::server;
  info.priority = 15;
  info.props["vip_addr"] = vaddr.to_string();
  info.props["switch"] = sw.name();
  if (!instance.empty()) info.props["instance"] = instance;
  auto reg = discovery.register_impl(info);
  if (!reg.ok()) {
    (void)sw.remove_match_action(vip, port);
    return reg.error();
  }
  return vaddr;
}

// --- in-application fallback dispatcher ---

ShardFallbackChunnel::ShardFallbackChunnel() {
  info_.type = "shard";
  info_.name = "shard/fallback";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::server;
  info_.priority = 0;
  info_.props["synth.pattern"] = "shard";
}

ShardFallbackChunnel::~ShardFallbackChunnel() { teardown(); }

Result<void> ShardFallbackChunnel::on_listen(ListenContext& ctx) {
  BERTHA_TRY_ASSIGN(args, ShardArgs::from(ctx.app_args));
  BERTHA_TRY_ASSIGN(t, ctx.transports->bind(
                           ephemeral_like(ctx.listen_addr, ctx.host_id)));
  std::shared_ptr<Transport> transport(std::move(t));
  ctx.advertise("slowpath_addr", transport->local_addr().to_string());

  std::lock_guard<std::mutex> lk(mu_);
  dispatchers_.push_back(transport);
  threads_.emplace_back([transport, args = std::move(args)] {
    for (;;) {
      auto pkt_r = transport->recv();
      if (!pkt_r.ok()) return;
      const Packet& pkt = pkt_r.value();
      // The in-application path pays for a full parse: frame decode,
      // reply-address string parse, and a pass over the whole request
      // body (the application-level deserialization a real server would
      // do before it could consult its sharding logic).
      auto req = parse_shard_frame(pkt.payload);
      if (!req.ok()) continue;
      uint64_t body_digest = fnv1a64(req.value().payload);
      size_t idx = args.pick(req.value().payload);
      // Re-materialize the datagram (app -> socket copy) and forward.
      Bytes copy(pkt.payload.begin(), pkt.payload.end());
      copy[copy.size() - 1] ^= 0;  // keep the digest live
      (void)body_digest;
      (void)transport->send_to(args.shards[idx], copy);
    }
  });
  return ok();
}

Result<ConnPtr> ShardFallbackChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  if (ctx.role == Role::server) return inner;
  return make_client_conn(std::move(inner), ctx,
                          ShardClientConnection::Mode::forward,
                          "slowpath_addr");
}

void ShardFallbackChunnel::teardown() {
  std::vector<std::shared_ptr<Transport>> dispatchers;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    dispatchers.swap(dispatchers_);
    threads.swap(threads_);
  }
  for (auto& d : dispatchers) d->close();
  for (auto& th : threads)
    if (th.joinable()) th.join();
}

// --- ShardWorker ---

Result<std::unique_ptr<ShardWorker>> ShardWorker::bind(
    TransportFactory& factory, const Addr& addr) {
  BERTHA_TRY_ASSIGN(t, factory.bind(addr));
  return std::unique_ptr<ShardWorker>(new ShardWorker(std::move(t)));
}

ShardWorker::~ShardWorker() { close(); }

Result<Msg> ShardWorker::recv(Deadline deadline) {
  for (;;) {
    BERTHA_TRY_ASSIGN(pkt, transport_->recv(deadline));
    auto req = parse_shard_frame(pkt.payload);
    if (!req.ok()) continue;  // stray datagram
    Msg m;
    m.src = req.value().reply_to;
    m.dst = addr_;
    m.payload.assign(req.value().payload.begin(), req.value().payload.end());
    return m;
  }
}

Result<void> ShardWorker::reply(const Addr& to, BytesView payload) {
  return transport_->send_to(to, payload);
}

void ShardWorker::close() { transport_->close(); }

}  // namespace bertha
