#include "chunnels/ordering.hpp"

#include <map>

#include "serialize/codec.hpp"

namespace bertha {

namespace {

// Inline (no helper thread): recv() drives the reorder buffer. Gap
// skipping happens when the head-of-line wait exceeds gap_timeout.
class OrderingConnection final : public Connection {
 public:
  OrderingConnection(ConnPtr inner, OrderingOptions opts)
      : inner_(std::move(inner)), opts_(opts) {}

  Result<void> send(Msg m) override {
    Writer w;
    {
      std::lock_guard<std::mutex> lk(mu_);
      w.put_varint(next_send_seq_++);
    }
    w.put_raw(m.payload);
    m.payload = std::move(w).take();
    return inner_->send(std::move(m));
  }

  Result<Msg> recv(Deadline deadline) override {
    std::lock_guard<std::mutex> lk(mu_);
    for (;;) {
      // Deliverable from the buffer?
      if (!buffer_.empty()) {
        auto it = buffer_.begin();
        if (it->first == next_recv_seq_) {
          Msg m = std::move(it->second);
          buffer_.erase(it);
          next_recv_seq_++;
          gap_since_.reset();
          return m;
        }
        // Head-of-line gap: skip it once it has aged out.
        if (!gap_since_) gap_since_ = now();
        if (now() - *gap_since_ >= opts_.gap_timeout ||
            buffer_.size() >= opts_.max_buffer) {
          next_recv_seq_ = it->first;  // declare the gap lost
          gap_since_.reset();
          continue;
        }
      }
      // Pull more from below, bounded by both the caller's deadline and
      // the gap timeout so we wake up to skip.
      Deadline pull = deadline;
      if (gap_since_) {
        auto gap_deadline = *gap_since_ + opts_.gap_timeout;
        if (gap_deadline < deadline.as_time_point())
          pull = Deadline::at(gap_deadline);
      }
      auto m_r = inner_->recv(pull);
      if (!m_r.ok()) {
        if (m_r.error().code == Errc::timed_out && gap_since_ &&
            !deadline.expired())
          continue;  // the gap timer fired, not the caller's deadline
        return m_r.error();
      }
      Msg m = std::move(m_r).value();
      Reader r(m.payload);
      auto seq_r = r.get_varint();
      if (!seq_r.ok()) continue;  // malformed: drop
      uint64_t seq = seq_r.value();
      if (seq < next_recv_seq_) continue;  // stale duplicate
      Msg out;
      out.src = std::move(m.src);
      out.dst = std::move(m.dst);
      out.payload.assign(r.rest().begin(), r.rest().end());
      buffer_.emplace(seq, std::move(out));
    }
  }

  const Addr& local_addr() const override { return inner_->local_addr(); }
  const Addr& peer_addr() const override { return inner_->peer_addr(); }
  void close() override { inner_->close(); }

 private:
  ConnPtr inner_;
  OrderingOptions opts_;
  std::mutex mu_;
  uint64_t next_send_seq_ = 0;
  uint64_t next_recv_seq_ = 0;
  std::map<uint64_t, Msg> buffer_;
  std::optional<TimePoint> gap_since_;
};

}  // namespace

OrderingChunnel::OrderingChunnel(OrderingOptions opts) : opts_(opts) {
  info_.type = "ordering";
  info_.name = "ordering/buffer";
  info_.scope = Scope::application;
  info_.endpoints = EndpointConstraint::both;
  info_.priority = 0;
}

Result<ConnPtr> OrderingChunnel::wrap(ConnPtr inner, WrapContext& ctx) {
  OrderingOptions opts = opts_;
  opts.gap_timeout = us(static_cast<int64_t>(ctx.args.get_u64_or(
      "gap_timeout_us",
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(opts_.gap_timeout)
              .count()))));
  return ConnPtr(std::make_shared<OrderingConnection>(std::move(inner), opts));
}

}  // namespace bertha
