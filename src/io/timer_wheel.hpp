// TimerWheel: a hashed timer wheel for per-connection deadlines.
//
// The scale problem it solves: keepalive beaters, lease renewals, and
// sweep timers used to be one thread each, so a listener with 100k idle
// connections carried 100k parked threads. The wheel holds every armed
// timer in slots_ hash buckets keyed by (deadline / tick) and a single
// tick — the reactor's, in the datapath runtime — fires everything due,
// so an idle connection costs one wheel entry and zero threads.
//
// Semantics:
//  - Delays round UP to the next tick boundary and never fire early; a
//    zero delay fires on the next tick, not inline.
//  - Callbacks run on the driver thread (or inside advance() in manual
//    mode) and must not block: a slow callback stalls every other timer.
//    Blocking work belongs on its own thread, signalled from the timer.
//  - cancel() returns true iff it prevented a future fire. A timer whose
//    callback is mid-flight cannot be un-fired; cancel_sync() addition-
//    ally waits for that in-flight callback (self-cancel from inside the
//    callback is detected and does not deadlock).
//  - Periodic timers re-arm at fixed period multiples of their original
//    deadline and keep their id across fires, so cancel works forever.
//
// Deterministic-clock mode (Options.manual): no driver thread is
// started and virtual time only moves when advance() is called — the
// unit-test override the ISSUE's wheel suite runs on. Thread mode uses
// the process steady clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "trace/metrics.hpp"
#include "util/clock.hpp"

namespace bertha {

class TimerWheel {
 public:
  struct Options {
    Duration tick = ms(10);  // granularity; delays round up to this
    size_t slots = 512;      // rounded up to a power of two
    bool manual = false;     // no driver thread; tests call advance()
    MetricsPtr metrics;      // optional scale.wheel.* counters
  };

  using Callback = std::function<void()>;

  static std::shared_ptr<TimerWheel> create(Options opts);
  static std::shared_ptr<TimerWheel> create() { return create(Options{}); }
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // One-shot timer ~delay from now (rounded up to the tick). Returns an
  // id valid for cancel() until after the callback finishes. Never 0.
  uint64_t schedule(Duration delay, Callback cb);

  // Fires every `period` (first fire one period from now) until
  // cancelled. The id stays stable across fires.
  uint64_t schedule_periodic(Duration period, Callback cb);

  // True iff the timer will no longer fire and its callback was not and
  // will not be invoked (for periodic timers: no further invocations;
  // returns true even if past fires happened). False for unknown ids.
  bool cancel(uint64_t id);

  // cancel(), then wait until any in-flight invocation of this timer's
  // callback has returned. Safe to call from the callback itself (the
  // wait is skipped; the current invocation is the last).
  void cancel_sync(uint64_t id);

  // Manual mode: move virtual time forward and fire everything due.
  // Thread mode: no-op (the driver owns the clock).
  void advance(Duration d);

  // Stops the driver thread (idempotent; destructor calls it). Armed
  // timers stop firing; cancel() still works.
  void stop();

  struct Stats {
    uint64_t scheduled = 0;
    uint64_t fired = 0;
    uint64_t cancelled = 0;
    uint64_t ticks = 0;      // slots processed
    uint64_t armed = 0;      // currently armed timers
    uint64_t max_fired_in_tick = 0;  // largest single-tick expiry batch
  };
  Stats stats() const;

  Duration tick() const { return opts_.tick; }

 private:
  enum State : int { kArmed = 0, kFiring = 1, kDone = 2, kCancelled = 3 };

  struct Entry {
    uint64_t id = 0;
    int64_t deadline_ns = 0;
    uint64_t deadline_tick = 0;
    int64_t period_ns = 0;  // 0: one-shot
    Callback cb;
    std::atomic<int> state{kArmed};
    // Set by cancel() while the callback is in flight: suppresses the
    // periodic re-arm after the callback returns.
    std::atomic<bool> cancel_requested{false};
  };
  using EntryPtr = std::shared_ptr<Entry>;

  struct Slot {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, EntryPtr> entries;
  };

  explicit TimerWheel(Options opts);
  uint64_t arm(Duration delay, int64_t period_ns, Callback cb);
  void insert(const EntryPtr& e);
  int64_t now_ns() const;
  void advance_to(int64_t now);
  void process_slot(Slot& slot, uint64_t cutoff_tick,
                    std::vector<EntryPtr>& due);
  void fire(std::vector<EntryPtr>& due);
  void driver_loop();

  Options opts_;
  int64_t tick_ns_;
  int64_t base_ns_ = 0;  // steady-clock origin in thread mode
  size_t mask_;
  std::vector<Slot> slots_;

  std::atomic<uint64_t> next_id_{1};
  // id -> entry, for cancel(). Sharded by id so schedule/cancel from
  // many connections do not serialize on one lock.
  std::vector<Slot> index_;

  // Serializes advancers (the driver thread, or tests in manual mode).
  // Callbacks therefore run with advance_mu_ held: they may schedule()
  // and cancel() freely but must not call advance() re-entrantly.
  std::mutex advance_mu_;
  // Written only under advance_mu_; read racily by arm() to clamp new
  // deadlines into the future (a stale read only delays by one tick).
  std::atomic<uint64_t> last_tick_{0};
  std::atomic<int64_t> manual_now_{0};
  std::vector<EntryPtr> due_scratch_;  // guarded by advance_mu_

  // cancel_sync() waits here for in-flight callbacks.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<std::thread::id> firing_thread_{};

  std::atomic<uint64_t> armed_{0};
  std::atomic<uint64_t> n_scheduled_{0};
  std::atomic<uint64_t> n_fired_{0};
  std::atomic<uint64_t> n_cancelled_{0};
  std::atomic<uint64_t> n_ticks_{0};
  std::atomic<uint64_t> max_batch_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // guarded by stop_mu_
  std::mutex join_mu_;     // serializes concurrent stop() joins
  std::thread driver_;
};

using TimerWheelPtr = std::shared_ptr<TimerWheel>;

// Folds scale.wheel.* counters into the registry (provider style: the
// wheel's stats() remains the source of truth).
void attach_timer_wheel_provider(MetricsRegistry& m, TimerWheelPtr wheel);

}  // namespace bertha
