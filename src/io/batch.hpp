// Batched datagram I/O: the syscall-amortization layer under the
// chunnel stack.
//
// BatchTransport is an extension interface a Transport may additionally
// implement (UDP/UDS via sendmmsg/recvmmsg, mem/sim via single-lock bulk
// dequeue). The free functions send_batch()/recv_batch() dispatch to the
// native implementation when present and otherwise adapt the plain
// Transport API, so every transport — including decorators that know
// nothing about batching — works through one call site.
#pragma once

#include <span>

#include "io/buffer_pool.hpp"
#include "net/transport.hpp"

namespace bertha {

// One datagram in a batch. `src` is filled on receive, `dst` consulted
// on send. Payloads live in pooled buffers so a reused Datagram array
// makes the steady-state rx path allocation-free.
struct Datagram {
  Addr src;
  Addr dst;
  PooledBytes payload;
};

class BatchTransport {
 public:
  virtual ~BatchTransport() = default;

  // Sends every datagram; returns how many were handed to the network.
  // Like Transport::send_to, transient network-side pressure counts as a
  // silent drop (still "sent"); errors are local problems only, and a
  // local error may abort the batch partway (the count says where).
  virtual Result<size_t> send_batch(std::span<const Datagram> batch) = 0;

  // Blocks until at least one datagram arrives (or deadline/close), then
  // fills as many slots of `out` as are immediately available. Returns
  // the number filled. An already-expired deadline acts as a
  // non-blocking poll.
  virtual Result<size_t> recv_batch(std::span<Datagram> out,
                                    Deadline deadline = Deadline::never()) = 0;
};

// The native batch interface of `t`, or nullptr if it has none.
inline BatchTransport* as_batch(Transport* t) {
  return dynamic_cast<BatchTransport*>(t);
}

// Batched send/recv over any Transport: native when implemented,
// adapted (send_to loop / recv-then-drain with payload copies into the
// pooled slots) when not.
Result<size_t> send_batch(Transport& t, std::span<const Datagram> batch);
Result<size_t> recv_batch(Transport& t, std::span<Datagram> out,
                          Deadline deadline = Deadline::never());

}  // namespace bertha
