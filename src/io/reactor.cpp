#include "io/reactor.hpp"

#include <sys/epoll.h>

#include <cerrno>

namespace bertha {

namespace {
// epoll user-data tag for the shutdown eventfd; real ids start at 1.
constexpr uint64_t kWakeTag = 0;
}  // namespace

Result<ReactorPtr> Reactor::create() { return create(Options{}); }

Result<ReactorPtr> Reactor::create(Options opts) {
  if (opts.workers < 1) opts.workers = 1;
  if (opts.batch_size == 0) opts.batch_size = 1;
  Fd ep(::epoll_create1(EPOLL_CLOEXEC));
  if (!ep.valid()) return errno_error(Errc::io_error, "epoll_create1");
  BERTHA_TRY_ASSIGN(wake, make_wake_eventfd());
  // The wake eventfd is level-triggered and never drained: once fired at
  // shutdown, every worker's epoll_wait returns immediately.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(ep.get(), EPOLL_CTL_ADD, wake.get(), &ev) < 0)
    return errno_error(Errc::io_error, "epoll_ctl add wake");
  auto r = std::shared_ptr<Reactor>(
      new Reactor(opts, std::move(ep), std::move(wake)));
  // Workers capture the raw pointer: the destructor joins them (via
  // shutdown) before any member is torn down, and a shared_ptr capture
  // would cycle and leak the reactor.
  for (int i = 0; i < opts.workers; i++)
    r->workers_.emplace_back([raw = r.get()] { raw->worker_loop(); });
  return r;
}

Reactor::Reactor(Options opts, Fd epoll, Fd wake)
    : opts_(std::move(opts)), epoll_(std::move(epoll)), wake_(std::move(wake)) {}

Reactor::~Reactor() { shutdown(); }

Result<uint64_t> Reactor::add(std::shared_ptr<Transport> transport,
                              Handler handler) {
  if (!transport || !handler)
    return err(Errc::invalid_argument, "reactor needs a transport and handler");
  auto reg = std::make_shared<Reg>();
  reg->transport = std::move(transport);
  reg->handler = std::move(handler);
  reg->fd = reg->transport->poll_fd();
  reg->buf.resize(opts_.batch_size);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return err(Errc::cancelled, "reactor shut down");
    reg->id = next_id_++;
    regs_[reg->id] = reg;
  }
  if (reg->fd >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLONESHOT;
    ev.data.u64 = reg->id;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, reg->fd, &ev) < 0)
      reg->fd = -1;  // unsupported fd type: pull thread instead
  }
  if (reg->fd < 0)
    reg->puller = std::thread([this, reg] { fallback_loop(reg); });
  return reg->id;
}

void Reactor::remove(uint64_t id) {
  RegPtr reg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = regs_.find(id);
    if (it == regs_.end()) return;
    reg = it->second;
    regs_.erase(it);
  }
  reg->dead.store(true, std::memory_order_release);
  if (reg->fd >= 0) {
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, reg->fd, nullptr);
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !reg->running; });
  } else if (reg->puller.joinable()) {
    reg->puller.join();
  }
}

void Reactor::shutdown() {
  std::vector<RegPtr> regs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [id, reg] : regs_) regs.push_back(reg);
    regs_.clear();
  }
  for (auto& reg : regs) {
    reg->dead.store(true, std::memory_order_release);
    if (reg->fd >= 0)
      (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, reg->fd, nullptr);
  }
  fire_wake_eventfd(wake_.get());
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  for (auto& reg : regs)
    if (reg->puller.joinable()) reg->puller.join();
  TimerWheelPtr wheel;
  {
    std::lock_guard<std::mutex> lk(wheel_mu_);
    wheel = std::move(wheel_);
  }
  if (wheel) wheel->stop();
}

TimerWheelPtr Reactor::wheel() {
  std::lock_guard<std::mutex> lk(wheel_mu_);
  if (!wheel_) {
    {
      std::lock_guard<std::mutex> slk(mu_);
      if (stopping_) return nullptr;
    }
    TimerWheel::Options wopts;
    wopts.tick = opts_.wheel_tick;
    wopts.slots = opts_.wheel_slots;
    wopts.metrics = opts_.metrics;
    wheel_ = TimerWheel::create(wopts);
    if (opts_.metrics) attach_timer_wheel_provider(*opts_.metrics, wheel_);
  }
  return wheel_;
}

Reactor::Stats Reactor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool Reactor::drain(const RegPtr& reg) {
  for (;;) {
    if (reg->dead.load(std::memory_order_acquire)) return false;
    // Expired deadline == non-blocking poll of the already-readable
    // socket; blocking here would pin the worker to one endpoint.
    auto r = bertha::recv_batch(*reg->transport,
                                std::span<Datagram>(reg->buf),
                                Deadline::after(Duration::zero()));
    if (!r.ok())
      return r.error().code == Errc::timed_out;  // dry: re-arm; else retire
    size_t n = r.value();
    if (n == 0) return true;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.batches++;
      stats_.datagrams += n;
    }
    metrics_add(opts_.metrics, "io.reactor.batches");
    metrics_add(opts_.metrics, "io.reactor.datagrams", n);
    reg->handler(std::span<Datagram>(reg->buf.data(), n));
    if (n < reg->buf.size()) return true;  // socket likely dry
  }
}

void Reactor::worker_loop() {
  for (;;) {
    epoll_event evs[16];
    int rc = ::epoll_wait(epoll_.get(), evs, 16, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.polls++;
      if (stopping_) return;
    }
    for (int i = 0; i < rc; i++) {
      uint64_t id = evs[i].data.u64;
      if (id == kWakeTag) continue;  // shutdown checked above
      RegPtr reg;
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = regs_.find(id);
        if (it == regs_.end()) continue;
        reg = it->second;
        if (reg->running) continue;  // paranoia: ONESHOT should prevent this
        reg->running = true;
      }
      bool rearm = drain(reg);
      {
        std::lock_guard<std::mutex> lk(mu_);
        reg->running = false;
      }
      cv_.notify_all();
      if (rearm && !reg->dead.load(std::memory_order_acquire)) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLONESHOT;
        ev.data.u64 = id;
        // ENOENT after a concurrent remove() is fine.
        (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, reg->fd, &ev);
      } else if (!rearm) {
        // Transport closed under us: retire the registration.
        std::lock_guard<std::mutex> lk(mu_);
        regs_.erase(id);
      }
    }
  }
}

void Reactor::fallback_loop(RegPtr reg) {
  // Short slices so remove() (which only sets `dead`) is honoured even
  // when the transport stays open and quiet.
  while (!reg->dead.load(std::memory_order_acquire)) {
    auto r = bertha::recv_batch(*reg->transport, std::span<Datagram>(reg->buf),
                                Deadline::after(ms(50)));
    if (!r.ok()) {
      if (r.error().code == Errc::timed_out) continue;
      return;  // closed
    }
    if (reg->dead.load(std::memory_order_acquire)) return;
    size_t n = r.value();
    if (n == 0) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.batches++;
      stats_.datagrams += n;
    }
    metrics_add(opts_.metrics, "io.reactor.batches");
    metrics_add(opts_.metrics, "io.reactor.datagrams", n);
    reg->handler(std::span<Datagram>(reg->buf.data(), n));
  }
}

}  // namespace bertha
