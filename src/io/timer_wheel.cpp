#include "io/timer_wheel.hpp"

#include <algorithm>

namespace bertha {

namespace {

size_t round_up_pow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::shared_ptr<TimerWheel> TimerWheel::create(Options opts) {
  auto w = std::shared_ptr<TimerWheel>(new TimerWheel(std::move(opts)));
  if (!w->opts_.manual) {
    w->driver_ = std::thread([w] { w->driver_loop(); });
  }
  return w;
}

TimerWheel::TimerWheel(Options opts) : opts_(std::move(opts)) {
  if (opts_.tick.count() <= 0) opts_.tick = ms(1);
  tick_ns_ = opts_.tick.count();
  size_t n = round_up_pow2(std::max<size_t>(opts_.slots, 2));
  mask_ = n - 1;
  slots_ = std::vector<Slot>(n);
  index_ = std::vector<Slot>(16);
  if (!opts_.manual) base_ns_ = steady_ns();
}

TimerWheel::~TimerWheel() { stop(); }

int64_t TimerWheel::now_ns() const {
  if (opts_.manual) return manual_now_.load(std::memory_order_acquire);
  return steady_ns() - base_ns_;
}

uint64_t TimerWheel::schedule(Duration delay, Callback cb) {
  return arm(delay, 0, std::move(cb));
}

uint64_t TimerWheel::schedule_periodic(Duration period, Callback cb) {
  if (period.count() <= 0) period = opts_.tick;
  return arm(period, period.count(), std::move(cb));
}

uint64_t TimerWheel::arm(Duration delay, int64_t period_ns, Callback cb) {
  auto e = std::make_shared<Entry>();
  e->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  int64_t d = std::max<int64_t>(delay.count(), 0);
  e->deadline_ns = now_ns() + d;
  e->period_ns = period_ns;
  e->cb = std::move(cb);
  // Round up to the tick boundary and never allow a deadline at or
  // before the last processed tick: a zero delay fires on the NEXT
  // tick, never inline and never "already missed".
  uint64_t t = uint64_t((e->deadline_ns + tick_ns_ - 1) / tick_ns_);
  uint64_t floor = last_tick_.load(std::memory_order_relaxed) + 1;
  e->deadline_tick = std::max(t, floor);
  {
    Slot& ix = index_[e->id & (index_.size() - 1)];
    std::lock_guard<std::mutex> lk(ix.mu);
    ix.entries.emplace(e->id, e);
  }
  insert(e);
  armed_.fetch_add(1, std::memory_order_relaxed);
  n_scheduled_.fetch_add(1, std::memory_order_relaxed);
  return e->id;
}

void TimerWheel::insert(const EntryPtr& e) {
  Slot& s = slots_[e->deadline_tick & mask_];
  std::lock_guard<std::mutex> lk(s.mu);
  s.entries.emplace(e->id, e);
}

bool TimerWheel::cancel(uint64_t id) {
  EntryPtr e;
  {
    Slot& ix = index_[id & (index_.size() - 1)];
    std::lock_guard<std::mutex> lk(ix.mu);
    auto it = ix.entries.find(id);
    if (it != ix.entries.end()) e = it->second;
  }
  if (!e) return false;
  int expected = kArmed;
  if (e->state.compare_exchange_strong(expected, kCancelled)) {
    // Won against the fire path: the callback will never run (again).
    {
      Slot& s = slots_[e->deadline_tick & mask_];
      std::lock_guard<std::mutex> lk(s.mu);
      s.entries.erase(id);
    }
    {
      Slot& ix = index_[id & (index_.size() - 1)];
      std::lock_guard<std::mutex> lk(ix.mu);
      ix.entries.erase(id);
    }
    armed_.fetch_sub(1, std::memory_order_relaxed);
    n_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (expected == kFiring) {
    // Callback in flight: can't un-fire it, but suppress any periodic
    // re-arm so this invocation is the last.
    e->cancel_requested.store(true, std::memory_order_release);
  }
  return false;
}

void TimerWheel::cancel_sync(uint64_t id) {
  EntryPtr e;
  {
    Slot& ix = index_[id & (index_.size() - 1)];
    std::lock_guard<std::mutex> lk(ix.mu);
    auto it = ix.entries.find(id);
    if (it != ix.entries.end()) e = it->second;
  }
  cancel(id);
  if (!e) return;
  if (firing_thread_.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    return;  // self-cancel from inside the callback; no wait
  }
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [&] {
    int s = e->state.load(std::memory_order_acquire);
    return s != kFiring;
  });
}

void TimerWheel::advance(Duration d) {
  if (!opts_.manual) return;  // the driver thread owns the clock
  int64_t now =
      manual_now_.fetch_add(d.count(), std::memory_order_acq_rel) + d.count();
  std::lock_guard<std::mutex> lk(advance_mu_);
  advance_to(now);
}

void TimerWheel::advance_to(int64_t now) {
  // Caller holds advance_mu_.
  uint64_t target = uint64_t(std::max<int64_t>(now, 0) / tick_ns_);
  uint64_t last = last_tick_.load(std::memory_order_relaxed);
  if (target <= last) return;
  due_scratch_.clear();
  uint64_t span = target - last;
  size_t nslots = mask_ + 1;
  if (span >= nslots) {
    // The gap covers every slot at least once (e.g. a test advancing
    // hours of virtual time): one pass over all slots with the final
    // cutoff, instead of billions of per-tick iterations.
    for (size_t i = 0; i < nslots; ++i) {
      process_slot(slots_[i], target, due_scratch_);
    }
    n_ticks_.fetch_add(nslots, std::memory_order_relaxed);
  } else {
    for (uint64_t t = last + 1; t <= target; ++t) {
      process_slot(slots_[t & mask_], target, due_scratch_);
    }
    n_ticks_.fetch_add(span, std::memory_order_relaxed);
  }
  last_tick_.store(target, std::memory_order_relaxed);
  if (!due_scratch_.empty()) fire(due_scratch_);
  due_scratch_.clear();
}

void TimerWheel::process_slot(Slot& slot, uint64_t cutoff_tick,
                              std::vector<EntryPtr>& due) {
  std::lock_guard<std::mutex> lk(slot.mu);
  for (auto it = slot.entries.begin(); it != slot.entries.end();) {
    if (it->second->deadline_tick <= cutoff_tick) {
      due.push_back(it->second);
      it = slot.entries.erase(it);
    } else {
      ++it;  // a later revolution of the wheel
    }
  }
}

void TimerWheel::fire(std::vector<EntryPtr>& due) {
  // Deterministic firing order (deadline, then id) so mass-expiry tests
  // and same-tick timers behave reproducibly.
  std::sort(due.begin(), due.end(), [](const EntryPtr& a, const EntryPtr& b) {
    if (a->deadline_tick != b->deadline_tick)
      return a->deadline_tick < b->deadline_tick;
    return a->id < b->id;
  });
  firing_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  uint64_t batch = 0;
  for (auto& e : due) {
    int expected = kArmed;
    if (!e->state.compare_exchange_strong(expected, kFiring)) {
      continue;  // cancel() won the race after we pulled it off the slot
    }
    e->cb();
    ++batch;
    n_fired_.fetch_add(1, std::memory_order_relaxed);
    bool rearm = e->period_ns > 0 &&
                 !e->cancel_requested.load(std::memory_order_acquire);
    if (rearm) {
      // Fixed multiples of the original deadline; skip missed periods
      // rather than bursting to catch up.
      int64_t nownow = now_ns();
      do {
        e->deadline_ns += e->period_ns;
      } while (e->deadline_ns <= nownow);
      uint64_t t = uint64_t((e->deadline_ns + tick_ns_ - 1) / tick_ns_);
      e->deadline_tick =
          std::max(t, last_tick_.load(std::memory_order_relaxed) + 1);
      e->state.store(kArmed, std::memory_order_release);
      insert(e);
    } else {
      e->state.store(kDone, std::memory_order_release);
      Slot& ix = index_[e->id & (index_.size() - 1)];
      {
        std::lock_guard<std::mutex> lk(ix.mu);
        ix.entries.erase(e->id);
      }
      armed_.fetch_sub(1, std::memory_order_relaxed);
    }
    // Wake any cancel_sync() waiting for this invocation to finish.
    {
      std::lock_guard<std::mutex> lk(done_mu_);
    }
    done_cv_.notify_all();
  }
  firing_thread_.store(std::thread::id(), std::memory_order_release);
  uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (batch > prev &&
         !max_batch_.compare_exchange_weak(prev, batch,
                                           std::memory_order_relaxed)) {
  }
}

void TimerWheel::driver_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(stop_mu_);
      stop_cv_.wait_for(lk, opts_.tick, [&] { return stopping_; });
      if (stopping_) return;
    }
    std::lock_guard<std::mutex> lk(advance_mu_);
    advance_to(now_ns());
  }
}

void TimerWheel::stop() {
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  std::lock_guard<std::mutex> jlk(join_mu_);
  if (driver_.joinable()) driver_.join();
}

TimerWheel::Stats TimerWheel::stats() const {
  Stats s;
  s.scheduled = n_scheduled_.load(std::memory_order_relaxed);
  s.fired = n_fired_.load(std::memory_order_relaxed);
  s.cancelled = n_cancelled_.load(std::memory_order_relaxed);
  s.ticks = n_ticks_.load(std::memory_order_relaxed);
  s.armed = armed_.load(std::memory_order_relaxed);
  s.max_fired_in_tick = max_batch_.load(std::memory_order_relaxed);
  return s;
}

void attach_timer_wheel_provider(MetricsRegistry& m, TimerWheelPtr wheel) {
  m.attach_provider("timer_wheel", [wheel](MetricsRegistry::Snapshot& snap) {
    auto s = wheel->stats();
    snap.counters["scale.wheel.scheduled"] += s.scheduled;
    snap.counters["scale.wheel.fired"] += s.fired;
    snap.counters["scale.wheel.cancelled"] += s.cancelled;
    snap.counters["scale.wheel.ticks"] += s.ticks;
    snap.counters["scale.wheel.armed"] += s.armed;
    snap.counters["scale.wheel.max_fired_in_tick"] =
        std::max(snap.counters["scale.wheel.max_fired_in_tick"],
                 s.max_fired_in_tick);
  });
}

}  // namespace bertha
