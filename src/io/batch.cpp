#include "io/batch.hpp"

namespace bertha {

Result<size_t> send_batch(Transport& t, std::span<const Datagram> batch) {
  if (auto* b = as_batch(&t)) return b->send_batch(batch);
  size_t sent = 0;
  for (const Datagram& d : batch) {
    BERTHA_TRY(t.send_to(d.dst, d.payload.view()));
    sent++;
  }
  return sent;
}

Result<size_t> recv_batch(Transport& t, std::span<Datagram> out,
                          Deadline deadline) {
  if (out.empty()) return size_t(0);
  if (auto* b = as_batch(&t)) return b->recv_batch(out, deadline);
  // Adapter: one (possibly blocking) receive, then drain whatever is
  // already queued with expired deadlines — on both poll-based and
  // queue-based transports that behaves as a non-blocking try.
  BERTHA_TRY_ASSIGN(first, t.recv(deadline));
  out[0].src = std::move(first.src);
  out[0].payload.assign(first.payload);
  size_t n = 1;
  while (n < out.size()) {
    auto more = t.recv(Deadline::after(Duration::zero()));
    if (!more.ok()) break;  // timed_out: drained; cancelled: next call sees it
    out[n].src = std::move(more.value().src);
    out[n].payload.assign(more.value().payload);
    n++;
  }
  return n;
}

}  // namespace bertha
