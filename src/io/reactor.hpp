// Reactor: epoll-based rx multiplexer. Many endpoints share a small
// worker pool instead of one blocking thread per socket — the listener's
// demux loops, the shard dispatcher, and anything else that consumes
// whole transports register a handler and get called with batches.
//
// fd-backed transports (poll_fd() >= 0) join one epoll set with
// EPOLLONESHOT, so exactly one worker drains a given endpoint at a time
// and re-arms it when the socket runs dry. Transports without an fd
// (mem/sim/fault decorators) fall back to a dedicated pull thread per
// registration — same handler contract, no behavioural difference.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/batch.hpp"
#include "io/timer_wheel.hpp"
#include "net/fd_util.hpp"
#include "trace/metrics.hpp"

namespace bertha {

class Reactor {
 public:
  struct Options {
    int workers = 2;         // epoll worker threads
    size_t batch_size = 32;  // rx slots per registration / handler call
    MetricsPtr metrics;      // optional io.reactor.* counters
    Duration wheel_tick = ms(10);  // timer wheel granularity (wheel())
    size_t wheel_slots = 512;      // timer wheel slot count
  };

  // Called with a borrowed batch: the datagrams (and their pooled
  // payloads) are reused for the next receive, so handlers copy what
  // they keep. At most one invocation per registration runs at a time.
  using Handler = std::function<void(std::span<Datagram>)>;

  static Result<std::shared_ptr<Reactor>> create();  // default Options
  static Result<std::shared_ptr<Reactor>> create(Options opts);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers a transport. The reactor shares ownership but never closes
  // it; closing the transport elsewhere retires the registration (the
  // handler stops being called). Handlers must not call back into
  // remove()/shutdown() for their own registration.
  Result<uint64_t> add(std::shared_ptr<Transport> transport, Handler handler);

  // Unregisters and blocks until the handler is not running and will not
  // run again. No-op for unknown ids.
  void remove(uint64_t id);

  // Retires every registration and joins all threads. Idempotent; called
  // by the destructor. Also stops the timer wheel, if one was created.
  void shutdown();

  // The reactor's timer wheel, created lazily on first call and driven
  // by its own tick thread for the reactor's lifetime (stopped in
  // shutdown()). This is where per-connection keepalive/lease deadlines
  // live, so 100k idle connections cost one tick thread, not 100k.
  TimerWheelPtr wheel();

  struct Stats {
    uint64_t batches = 0;    // handler invocations
    uint64_t datagrams = 0;  // datagrams delivered to handlers
    uint64_t polls = 0;      // epoll_wait returns
  };
  Stats stats() const;

 private:
  struct Reg {
    uint64_t id = 0;
    std::shared_ptr<Transport> transport;
    Handler handler;
    int fd = -1;  // -1 => fallback pull thread
    std::vector<Datagram> buf;
    std::thread puller;               // fallback only
    std::atomic<bool> dead{false};    // no further handler calls wanted
    bool running = false;             // guarded by reactor mu_
  };
  using RegPtr = std::shared_ptr<Reg>;

  Reactor(Options opts, Fd epoll, Fd wake);
  void worker_loop();
  void fallback_loop(RegPtr reg);
  // Drains until the transport runs dry; false when the registration
  // should be retired (transport closed or marked dead).
  bool drain(const RegPtr& reg);

  Options opts_;
  Fd epoll_;
  Fd wake_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signals handler-not-running
  bool stopping_ = false;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, RegPtr> regs_;
  Stats stats_;  // guarded by mu_
  std::vector<std::thread> workers_;

  std::mutex wheel_mu_;
  TimerWheelPtr wheel_;  // guarded by wheel_mu_
};

using ReactorPtr = std::shared_ptr<Reactor>;

}  // namespace bertha
