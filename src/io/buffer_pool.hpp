// BufferPool: size-classed datagram buffers with thread-cached free
// lists, so the steady-state rx path recycles storage instead of
// allocating per packet.
//
// PooledBytes is the RAII handle. Unlike std::vector it does NOT
// zero-fill on resize: recvmmsg overwrites the buffer anyway, and
// zeroing 64 KiB per small packet dominates latency (the same reason
// udp.cpp kept a thread_local scratch vector). Growing may leave the
// new tail uninitialized — callers resize to a capacity, let the kernel
// (or an assign) fill it, then resize down to the produced length.
//
// Lifetime: buffers and thread caches hold a shared_ptr to the pool
// core, so returning a buffer after its pool was destroyed (or from a
// thread that outlives it) is safe — the block is recycled or freed
// against the still-alive core.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "util/bytes.hpp"

namespace bertha {

class MetricsRegistry;
class BufferPool;

class PooledBytes {
 public:
  PooledBytes() = default;
  ~PooledBytes() { reset(); }
  PooledBytes(PooledBytes&& o) noexcept { move_from(o); }
  PooledBytes& operator=(PooledBytes&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  // Grows capacity through the pool when needed; bytes past the old size
  // are UNINITIALIZED (existing content is preserved). Shrinking keeps
  // the block.
  void resize(size_t n);
  void clear() { size_ = 0; }

  void assign(BytesView b) {
    resize(b.size());
    if (!b.empty()) std::memcpy(data_, b.data(), b.size());
  }

  BytesView view() const { return BytesView(data_, size_); }
  operator BytesView() const { return view(); }
  Bytes to_bytes() const { return Bytes(data_, data_ + size_); }

  // Returns the block to its pool and empties the handle. Idempotent.
  void reset();

 private:
  friend class BufferPool;

  void move_from(PooledBytes& o) {
    core_ = std::move(o.core_);
    data_ = o.data_;
    size_ = o.size_;
    cap_ = o.cap_;
    cls_ = o.cls_;
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
    o.cls_ = -1;
  }

  std::shared_ptr<struct PoolCore> core_;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
  int cls_ = -1;  // size class; -1 for oversize (plain malloc) blocks
};

class BufferPool {
 public:
  struct Options {
    // Blocks kept per class in the shared free list; overflow is freed.
    size_t max_per_class = 256;
    // Blocks kept per class in each thread's private cache before
    // spilling to the shared list.
    size_t thread_cache_per_class = 8;
  };

  // Size classes are powers of two, 256 B .. 64 KiB (>= kMaxDatagram).
  static constexpr size_t kMinClassShift = 8;
  static constexpr size_t kClasses = 9;
  static constexpr size_t kMaxClassBytes = 1ull << (kMinClassShift + kClasses - 1);

  struct Stats {
    uint64_t acquires = 0;     // total blocks handed out
    uint64_t thread_hits = 0;  // served from the caller's thread cache
    uint64_t shared_hits = 0;  // served from the shared free list
    uint64_t fresh = 0;        // served by a new allocation
    uint64_t oversize = 0;     // > kMaxClassBytes, never cached
    uint64_t trimmed = 0;      // returns freed because both lists were full
  };

  BufferPool();  // default Options
  explicit BufferPool(Options opts);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // A buffer with capacity >= min_cap and size() == min_cap (content
  // uninitialized). Requests above kMaxClassBytes fall back to plain
  // allocation (still returned through the handle, never cached).
  PooledBytes acquire(size_t min_cap);

  Stats stats() const;

  // Process-wide pool used by transports' rx paths and by PooledBytes
  // growth when a handle has no pool yet. Leaked on purpose: thread
  // caches and in-flight buffers may drain into it during program exit.
  static BufferPool& default_pool();

 private:
  friend class PooledBytes;
  std::shared_ptr<PoolCore> core_;
};

// Folds the default pool's counters into the snapshot as io.pool.*.
void attach_buffer_pool_provider(MetricsRegistry& m);

}  // namespace bertha
