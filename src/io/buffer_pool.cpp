#include "io/buffer_pool.hpp"

#include <cstdlib>

#include "trace/metrics.hpp"

namespace bertha {

namespace {

// Class index for a capacity, or -1 when it exceeds the largest class.
int class_for(size_t n) {
  size_t cap = size_t(1) << BufferPool::kMinClassShift;
  for (size_t c = 0; c < BufferPool::kClasses; c++, cap <<= 1)
    if (n <= cap) return static_cast<int>(c);
  return -1;
}

size_t class_bytes(int cls) {
  return size_t(1) << (BufferPool::kMinClassShift + static_cast<size_t>(cls));
}

}  // namespace

struct PoolCore {
  BufferPool::Options opts;

  std::mutex mu;
  std::array<std::vector<uint8_t*>, BufferPool::kClasses> shared;  // mu

  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> thread_hits{0};
  std::atomic<uint64_t> shared_hits{0};
  std::atomic<uint64_t> fresh{0};
  std::atomic<uint64_t> oversize{0};
  std::atomic<uint64_t> trimmed{0};

  ~PoolCore() {
    for (auto& list : shared)
      for (uint8_t* b : list) std::free(b);
  }

  uint8_t* take(int cls) {
    {
      std::lock_guard<std::mutex> lk(mu);
      auto& list = shared[static_cast<size_t>(cls)];
      if (!list.empty()) {
        uint8_t* b = list.back();
        list.pop_back();
        shared_hits.fetch_add(1, std::memory_order_relaxed);
        return b;
      }
    }
    fresh.fetch_add(1, std::memory_order_relaxed);
    return static_cast<uint8_t*>(std::malloc(class_bytes(cls)));
  }

  void give(int cls, uint8_t* block) {
    {
      std::lock_guard<std::mutex> lk(mu);
      auto& list = shared[static_cast<size_t>(cls)];
      if (list.size() < opts.max_per_class) {
        list.push_back(block);
        return;
      }
    }
    trimmed.fetch_add(1, std::memory_order_relaxed);
    std::free(block);
  }
};

namespace {

// Per-thread free lists, one entry per pool the thread has touched.
// Entries pin their core with a shared_ptr, so a thread outliving a pool
// flushes into a still-valid core.
struct ThreadCache {
  struct Entry {
    std::shared_ptr<PoolCore> core;
    std::array<std::vector<uint8_t*>, BufferPool::kClasses> free;
  };
  std::vector<Entry> entries;

  Entry& entry_for(const std::shared_ptr<PoolCore>& core) {
    for (auto& e : entries)
      if (e.core.get() == core.get()) return e;
    entries.push_back(Entry{core, {}});
    return entries.back();
  }

  ~ThreadCache() {
    for (auto& e : entries)
      for (size_t c = 0; c < e.free.size(); c++)
        for (uint8_t* b : e.free[c]) e.core->give(static_cast<int>(c), b);
  }
};

ThreadCache& thread_cache() {
  thread_local ThreadCache cache;
  return cache;
}

uint8_t* acquire_block(const std::shared_ptr<PoolCore>& core, int cls) {
  auto& e = thread_cache().entry_for(core);
  auto& list = e.free[static_cast<size_t>(cls)];
  if (!list.empty()) {
    uint8_t* b = list.back();
    list.pop_back();
    core->thread_hits.fetch_add(1, std::memory_order_relaxed);
    return b;
  }
  return core->take(cls);
}

void release_block(const std::shared_ptr<PoolCore>& core, int cls,
                   uint8_t* block) {
  auto& e = thread_cache().entry_for(core);
  auto& list = e.free[static_cast<size_t>(cls)];
  if (list.size() < core->opts.thread_cache_per_class) {
    list.push_back(block);
    return;
  }
  core->give(cls, block);
}

}  // namespace

void PooledBytes::resize(size_t n) {
  if (n <= cap_) {
    size_ = n;
    return;
  }
  // Grow through the handle's pool; a detached handle adopts the default
  // pool so transports can fill default-constructed Datagram slots.
  std::shared_ptr<PoolCore> core =
      core_ ? core_ : BufferPool::default_pool().core_;
  PooledBytes grown;
  grown.core_ = core;
  int cls = class_for(n);
  core->acquires.fetch_add(1, std::memory_order_relaxed);
  if (cls >= 0) {
    grown.data_ = acquire_block(core, cls);
    grown.cap_ = class_bytes(cls);
  } else {
    core->oversize.fetch_add(1, std::memory_order_relaxed);
    grown.data_ = static_cast<uint8_t*>(std::malloc(n));
    grown.cap_ = n;
  }
  grown.cls_ = cls;
  if (size_ > 0) std::memcpy(grown.data_, data_, size_);
  grown.size_ = n;
  *this = std::move(grown);
}

void PooledBytes::reset() {
  if (!data_) {
    core_.reset();
    return;
  }
  if (cls_ >= 0 && core_) {
    release_block(core_, cls_, data_);
  } else {
    std::free(data_);
  }
  core_.reset();
  data_ = nullptr;
  size_ = cap_ = 0;
  cls_ = -1;
}

BufferPool::BufferPool() : BufferPool(Options{}) {}

BufferPool::BufferPool(Options opts) : core_(std::make_shared<PoolCore>()) {
  core_->opts = opts;
}

BufferPool::~BufferPool() = default;

PooledBytes BufferPool::acquire(size_t min_cap) {
  PooledBytes b;
  b.core_ = core_;
  int cls = class_for(min_cap);
  core_->acquires.fetch_add(1, std::memory_order_relaxed);
  if (cls >= 0) {
    b.data_ = acquire_block(core_, cls);
    b.cap_ = class_bytes(cls);
  } else {
    core_->oversize.fetch_add(1, std::memory_order_relaxed);
    b.data_ = static_cast<uint8_t*>(std::malloc(min_cap));
    b.cap_ = min_cap;
  }
  b.cls_ = cls;
  b.size_ = min_cap;
  return b;
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.acquires = core_->acquires.load(std::memory_order_relaxed);
  s.thread_hits = core_->thread_hits.load(std::memory_order_relaxed);
  s.shared_hits = core_->shared_hits.load(std::memory_order_relaxed);
  s.fresh = core_->fresh.load(std::memory_order_relaxed);
  s.oversize = core_->oversize.load(std::memory_order_relaxed);
  s.trimmed = core_->trimmed.load(std::memory_order_relaxed);
  return s;
}

BufferPool& BufferPool::default_pool() {
  static BufferPool* pool = new BufferPool();  // leaked: see header
  return *pool;
}

void attach_buffer_pool_provider(MetricsRegistry& m) {
  m.attach_provider("io.pool", [](MetricsRegistry::Snapshot& snap) {
    BufferPool::Stats s = BufferPool::default_pool().stats();
    snap.counters["io.pool.acquires"] += s.acquires;
    snap.counters["io.pool.thread_hits"] += s.thread_hits;
    snap.counters["io.pool.shared_hits"] += s.shared_hits;
    snap.counters["io.pool.fresh"] += s.fresh;
    snap.counters["io.pool.oversize"] += s.oversize;
    snap.counters["io.pool.trimmed"] += s.trimmed;
  });
}

}  // namespace bertha
