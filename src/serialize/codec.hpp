// Binary serialization framework (bincode-style).
//
// Writer appends primitives to a byte buffer; Reader consumes them with
// full bounds checking (every get returns a Result). Integers use LEB128
// varints (zigzag for signed) so small values stay small on the wire.
//
// User types hook in by providing free functions found by ADL:
//   void serialize(Writer&, const T&);
//   Result<T> deserialize_T(Reader&);   // or the Serde<T> specialization
//
// The Serde<T> trait below is what generic code (object connections, the
// serialization chunnel) uses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

class Writer {
 public:
  Writer() = default;
  explicit Writer(Bytes initial) : buf_(std::move(initial)) {}

  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_varint(uint64_t v);
  void put_svarint(int64_t v);  // zigzag
  void put_f64(double v);
  void put_bytes(BytesView b);                 // length-prefixed
  void put_string(std::string_view s);         // length-prefixed
  void put_raw(BytesView b) { append(buf_, b); }  // no length prefix

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  Result<uint8_t> get_u8();
  Result<bool> get_bool();
  Result<uint64_t> get_varint();
  Result<int64_t> get_svarint();
  Result<double> get_f64();
  Result<Bytes> get_bytes();
  Result<std::string> get_string();
  // Consumes exactly n raw bytes.
  Result<Bytes> get_raw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  // The unconsumed tail without advancing.
  BytesView rest() const { return data_.subspan(pos_); }

 private:
  BytesView data_;
  size_t pos_ = 0;
};

// Serde trait: specialize for user types, or rely on the built-in
// specializations below (integers, bool, string, bytes, vector, map,
// optional, pair).
template <typename T, typename Enable = void>
struct Serde;  // intentionally undefined for unsupported types

template <typename T>
void serde_put(Writer& w, const T& v) {
  Serde<T>::put(w, v);
}
template <typename T>
Result<T> serde_get(Reader& r) {
  return Serde<T>::get(r);
}

// Convenience: serialize a whole value to bytes / parse from bytes,
// requiring all input consumed.
template <typename T>
Bytes serialize_to_bytes(const T& v) {
  Writer w;
  serde_put(w, v);
  return std::move(w).take();
}

template <typename T>
Result<T> deserialize_from_bytes(BytesView b) {
  Reader r(b);
  BERTHA_TRY_ASSIGN(v, serde_get<T>(r));
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing bytes after value");
  return v;
}

// --- Built-in Serde specializations ---

template <typename T>
struct Serde<T, std::enable_if_t<std::is_unsigned_v<T> && std::is_integral_v<T>>> {
  static void put(Writer& w, T v) { w.put_varint(v); }
  static Result<T> get(Reader& r) {
    BERTHA_TRY_ASSIGN(v, r.get_varint());
    if (v > std::numeric_limits<T>::max())
      return err(Errc::protocol_error, "varint out of range");
    return static_cast<T>(v);
  }
};

template <typename T>
struct Serde<T, std::enable_if_t<std::is_signed_v<T> && std::is_integral_v<T>>> {
  static void put(Writer& w, T v) { w.put_svarint(v); }
  static Result<T> get(Reader& r) {
    BERTHA_TRY_ASSIGN(v, r.get_svarint());
    if (v > std::numeric_limits<T>::max() || v < std::numeric_limits<T>::min())
      return err(Errc::protocol_error, "svarint out of range");
    return static_cast<T>(v);
  }
};

template <>
struct Serde<bool> {
  static void put(Writer& w, bool v) { w.put_bool(v); }
  static Result<bool> get(Reader& r) { return r.get_bool(); }
};

template <>
struct Serde<double> {
  static void put(Writer& w, double v) { w.put_f64(v); }
  static Result<double> get(Reader& r) { return r.get_f64(); }
};

template <>
struct Serde<std::string> {
  static void put(Writer& w, const std::string& v) { w.put_string(v); }
  static Result<std::string> get(Reader& r) { return r.get_string(); }
};

template <>
struct Serde<Bytes> {
  static void put(Writer& w, const Bytes& v) { w.put_bytes(v); }
  static Result<Bytes> get(Reader& r) { return r.get_bytes(); }
};

template <typename T>
struct Serde<std::vector<T>, std::enable_if_t<!std::is_same_v<T, uint8_t>>> {
  static void put(Writer& w, const std::vector<T>& v) {
    w.put_varint(v.size());
    for (const auto& e : v) serde_put(w, e);
  }
  static Result<std::vector<T>> get(Reader& r) {
    BERTHA_TRY_ASSIGN(n, r.get_varint());
    if (n > r.remaining())  // each element is >= 1 byte
      return err(Errc::protocol_error, "vector length exceeds input");
    std::vector<T> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; i++) {
      BERTHA_TRY_ASSIGN(e, serde_get<T>(r));
      v.push_back(std::move(e));
    }
    return v;
  }
};

template <typename K, typename V>
struct Serde<std::map<K, V>> {
  static void put(Writer& w, const std::map<K, V>& m) {
    w.put_varint(m.size());
    for (const auto& [k, v] : m) {
      serde_put(w, k);
      serde_put(w, v);
    }
  }
  static Result<std::map<K, V>> get(Reader& r) {
    BERTHA_TRY_ASSIGN(n, r.get_varint());
    if (n > r.remaining())
      return err(Errc::protocol_error, "map length exceeds input");
    std::map<K, V> m;
    for (uint64_t i = 0; i < n; i++) {
      BERTHA_TRY_ASSIGN(k, serde_get<K>(r));
      BERTHA_TRY_ASSIGN(v, serde_get<V>(r));
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }
};

template <typename T>
struct Serde<std::optional<T>> {
  static void put(Writer& w, const std::optional<T>& v) {
    w.put_bool(v.has_value());
    if (v) serde_put(w, *v);
  }
  static Result<std::optional<T>> get(Reader& r) {
    BERTHA_TRY_ASSIGN(has, r.get_bool());
    if (!has) return std::optional<T>{};
    BERTHA_TRY_ASSIGN(v, serde_get<T>(r));
    return std::optional<T>(std::move(v));
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void put(Writer& w, const std::pair<A, B>& v) {
    serde_put(w, v.first);
    serde_put(w, v.second);
  }
  static Result<std::pair<A, B>> get(Reader& r) {
    BERTHA_TRY_ASSIGN(a, serde_get<A>(r));
    BERTHA_TRY_ASSIGN(b, serde_get<B>(r));
    return std::pair<A, B>(std::move(a), std::move(b));
  }
};

}  // namespace bertha
