#include "serialize/codec.hpp"

#include <cstring>

namespace bertha {

void Writer::put_varint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Writer::put_svarint(int64_t v) {
  // zigzag encode
  put_varint((static_cast<uint64_t>(v) << 1) ^
             static_cast<uint64_t>(v >> 63));
}

void Writer::put_f64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; i++)
    buf_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
}

void Writer::put_bytes(BytesView b) {
  put_varint(b.size());
  append(buf_, b);
}

void Writer::put_string(std::string_view s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Result<uint8_t> Reader::get_u8() {
  if (pos_ >= data_.size()) return err(Errc::protocol_error, "eof reading u8");
  return data_[pos_++];
}

Result<bool> Reader::get_bool() {
  BERTHA_TRY_ASSIGN(b, get_u8());
  if (b > 1) return err(Errc::protocol_error, "bad bool encoding");
  return b == 1;
}

Result<uint64_t> Reader::get_varint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size())
      return err(Errc::protocol_error, "eof reading varint");
    uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7e))
      return err(Errc::protocol_error, "varint overflow");
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 63) return err(Errc::protocol_error, "varint too long");
  }
}

Result<int64_t> Reader::get_svarint() {
  BERTHA_TRY_ASSIGN(z, get_varint());
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

Result<double> Reader::get_f64() {
  if (remaining() < 8) return err(Errc::protocol_error, "eof reading f64");
  uint64_t bits = get_u64_le(data_, pos_);
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<Bytes> Reader::get_bytes() {
  BERTHA_TRY_ASSIGN(n, get_varint());
  if (n > remaining())
    return err(Errc::protocol_error, "bytes length exceeds input");
  Bytes b(data_.begin() + static_cast<ptrdiff_t>(pos_),
          data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

Result<std::string> Reader::get_string() {
  BERTHA_TRY_ASSIGN(n, get_varint());
  if (n > remaining())
    return err(Errc::protocol_error, "string length exceeds input");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> Reader::get_raw(size_t n) {
  if (n > remaining())
    return err(Errc::protocol_error, "raw read exceeds input");
  Bytes b(data_.begin() + static_cast<ptrdiff_t>(pos_),
          data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace bertha
