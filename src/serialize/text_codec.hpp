// Textual wire encoding: the deliberately-portable, deliberately-slow
// fallback serializer.
//
// The serialization chunnel (§3.2 of the paper) demonstrates that an
// application can pick up a faster serializer with no code change. This
// codec is the "before": it re-encodes the compact binary frame as
// hex text with a decimal length header ("TXT <len>\n<hex>"), costing
// character-level processing and ~2x size — analogous to a JSON/text
// protocol versus bincode.
#pragma once

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

Bytes text_encode(BytesView binary);
Result<Bytes> text_decode(BytesView text);

}  // namespace bertha
