#include "serialize/text_codec.hpp"

#include <cstdio>
#include <cstring>

namespace bertha {

namespace {
const char kHex[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}
}  // namespace

Bytes text_encode(BytesView binary) {
  char header[32];
  int hlen = std::snprintf(header, sizeof(header), "TXT %zu\n", binary.size());
  Bytes out;
  out.reserve(static_cast<size_t>(hlen) + binary.size() * 2);
  out.insert(out.end(), header, header + hlen);
  for (uint8_t b : binary) {
    out.push_back(static_cast<uint8_t>(kHex[b >> 4]));
    out.push_back(static_cast<uint8_t>(kHex[b & 0xf]));
  }
  return out;
}

Result<Bytes> text_decode(BytesView text) {
  if (text.size() < 6 || std::memcmp(text.data(), "TXT ", 4) != 0)
    return err(Errc::protocol_error, "missing TXT header");
  size_t i = 4;
  size_t len = 0;
  bool any = false;
  while (i < text.size() && text[i] != '\n') {
    if (text[i] < '0' || text[i] > '9')
      return err(Errc::protocol_error, "bad TXT length");
    len = len * 10 + static_cast<size_t>(text[i] - '0');
    if (len > (1u << 26))
      return err(Errc::protocol_error, "TXT length too large");
    any = true;
    i++;
  }
  if (!any || i == text.size())
    return err(Errc::protocol_error, "truncated TXT header");
  i++;  // consume '\n'
  if (text.size() - i != len * 2)
    return err(Errc::protocol_error, "TXT body length mismatch");
  Bytes out;
  out.reserve(len);
  for (size_t j = 0; j < len; j++) {
    int hi = nibble(static_cast<char>(text[i + 2 * j]));
    int lo = nibble(static_cast<char>(text[i + 2 * j + 1]));
    if (hi < 0 || lo < 0) return err(Errc::protocol_error, "bad TXT hex");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace bertha
