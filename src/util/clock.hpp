// Time utilities: nanosecond durations, deadlines, and monotonic time.
//
// All bertha blocking calls take a Deadline; Deadline::never() means "block
// until the operation completes or the owner closes".
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

namespace bertha {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

inline TimePoint now() { return std::chrono::steady_clock::now(); }

inline constexpr Duration ns(int64_t v) { return Duration(v); }
inline constexpr Duration us(int64_t v) { return std::chrono::microseconds(v); }
inline constexpr Duration ms(int64_t v) { return std::chrono::milliseconds(v); }
inline constexpr Duration seconds(int64_t v) { return std::chrono::seconds(v); }

// A point in time after which a blocking call gives up with Errc::timed_out.
class Deadline {
 public:
  // Blocks forever (until success or close()).
  static Deadline never() { return Deadline(); }
  // Expires `d` from now.
  static Deadline after(Duration d) { return Deadline(now() + d); }
  // Expires at an absolute steady-clock time.
  static Deadline at(TimePoint tp) { return Deadline(tp); }

  bool is_never() const { return !when_.has_value(); }
  bool expired() const { return when_.has_value() && now() >= *when_; }

  // Remaining time; Duration::max() when never.
  Duration remaining() const {
    if (!when_) return Duration::max();
    auto r = *when_ - now();
    return r.count() > 0 ? r : Duration::zero();
  }

  // Absolute expiry for condition_variable::wait_until; a far-future point
  // when never.
  TimePoint as_time_point() const {
    if (when_) return *when_;
    return now() + std::chrono::hours(24 * 365);
  }

 private:
  Deadline() = default;
  explicit Deadline(TimePoint tp) : when_(tp) {}
  std::optional<TimePoint> when_;
};

// Busy-measurement helper: elapsed wall time since construction.
class Stopwatch {
 public:
  Stopwatch() : start_(now()) {}
  void reset() { start_ = now(); }
  Duration elapsed() const { return now() - start_; }
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(elapsed()).count();
  }

 private:
  TimePoint start_;
};

void sleep_for(Duration d);

}  // namespace bertha
