#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace bertha {

std::string FaultStats::to_string() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "rpc_retries=%llu rpc_failures=%llu dedup_hits=%llu lease_grants=%llu "
      "lease_renewals=%llu lease_expiries=%llu heartbeats_sent=%llu "
      "lease_recoveries=%llu degraded_entries=%llu degraded_exits=%llu "
      "catalogue_hits=%llu watch_batches=%llu watch_resubscribes=%llu "
      "watch_snapshots=%llu server_failovers=%llu view_changes=%llu "
      "catchups=%llu gap_misses=%llu reshard_fences=%llu "
      "reshard_installs=%llu reshard_cutovers=%llu reshard_forwards=%llu",
      static_cast<unsigned long long>(rpc_retries.load()),
      static_cast<unsigned long long>(rpc_failures.load()),
      static_cast<unsigned long long>(dedup_hits.load()),
      static_cast<unsigned long long>(lease_grants.load()),
      static_cast<unsigned long long>(lease_renewals.load()),
      static_cast<unsigned long long>(lease_expiries.load()),
      static_cast<unsigned long long>(heartbeats_sent.load()),
      static_cast<unsigned long long>(lease_recoveries.load()),
      static_cast<unsigned long long>(degraded_entries.load()),
      static_cast<unsigned long long>(degraded_exits.load()),
      static_cast<unsigned long long>(catalogue_hits.load()),
      static_cast<unsigned long long>(watch_batches.load()),
      static_cast<unsigned long long>(watch_resubscribes.load()),
      static_cast<unsigned long long>(watch_snapshots.load()),
      static_cast<unsigned long long>(server_failovers.load()),
      static_cast<unsigned long long>(view_changes.load()),
      static_cast<unsigned long long>(catchups.load()),
      static_cast<unsigned long long>(gap_misses.load()),
      static_cast<unsigned long long>(reshard_fences.load()),
      static_cast<unsigned long long>(reshard_installs.load()),
      static_cast<unsigned long long>(reshard_cutovers.load()),
      static_cast<unsigned long long>(reshard_forwards.load()));
  return buf;
}

std::string Summary::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2f min=%.2f p5=%.2f p25=%.2f p50=%.2f "
                "p75=%.2f p95=%.2f p99=%.2f max=%.2f",
                count, mean, min, p5, p25, p50, p75, p95, p99, max);
  return buf;
}

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

Summary SampleSet::summarize() const {
  Summary s;
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double q) {
    double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  };
  s.count = sorted.size();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p5 = pct(5);
  s.p25 = pct(25);
  s.p50 = pct(50);
  s.p75 = pct(75);
  s.p95 = pct(95);
  s.p99 = pct(99);
  return s;
}

LogHistogram::LogHistogram()
    : buckets_(static_cast<size_t>(kBucketsPerOctave) * kOctaves, 0) {}

int LogHistogram::bucket_for(double v) const {
  if (v < 1.0) return 0;
  double l = std::log2(v);
  int idx = static_cast<int>(l * kBucketsPerOctave);
  return std::min(idx, static_cast<int>(buckets_.size()) - 1);
}

double LogHistogram::bucket_value(int i) const {
  // Midpoint of the bucket in log space.
  return std::exp2((static_cast<double>(i) + 0.5) / kBucketsPerOctave);
}

void LogHistogram::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  buckets_[static_cast<size_t>(bucket_for(v))]++;
  count_++;
  sum_ += v;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); i++) buckets_[i] += other.buckets_[i];
  if (other.count_) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  uint64_t target =
      static_cast<uint64_t>(q / 100.0 * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen > target) {
      double v = bucket_value(static_cast<int>(i));
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

}  // namespace bertha
