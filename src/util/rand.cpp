#include "util/rand.hpp"

namespace bertha {

namespace {
uint64_t splitmix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::next_in(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  next_below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xdeadbeefcafef00dULL); }

}  // namespace bertha
