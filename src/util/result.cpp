#include "util/result.hpp"

namespace bertha {

std::string_view errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::unavailable: return "unavailable";
    case Errc::timed_out: return "timed_out";
    case Errc::connection_failed: return "connection_failed";
    case Errc::protocol_error: return "protocol_error";
    case Errc::incompatible: return "incompatible";
    case Errc::io_error: return "io_error";
    case Errc::cancelled: return "cancelled";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string s(errc_name(code));
  if (!message.empty()) {
    s += ": ";
    s += message;
  }
  return s;
}

}  // namespace bertha
