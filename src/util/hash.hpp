// Non-cryptographic hashing used by the sharding chunnel and data structures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace bertha {

// FNV-1a, 64-bit. Stable across platforms: sharding decisions made by a
// client must match those a server-side dispatcher would make.
uint64_t fnv1a64(BytesView data);
uint64_t fnv1a64(std::string_view s);

// A stronger finalizer (splitmix-style avalanche) for combining values.
uint64_t mix64(uint64_t x);

inline uint64_t hash_combine(uint64_t a, uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace bertha
