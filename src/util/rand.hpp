// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every randomized component in bertha-cpp (SimNet loss, workload
// generators, property tests) takes an explicit seed so runs are
// reproducible.
#pragma once

#include <cstdint>

namespace bertha {

// xoshiro256** 1.0 (Blackman & Vigna, public domain algorithm),
// seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t next_in(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // True with probability p (clamped to [0,1]).
  bool chance(double p);

  // Fork a statistically independent child stream.
  Rng split();

 private:
  uint64_t s_[4];
};

}  // namespace bertha
