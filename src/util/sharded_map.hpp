// ShardedMap: a lock-striped hash map for hot-path token routing.
//
// The listener's per-datagram demux and the client group's route() both
// do token -> connection lookups on every received frame; a single
// mutex around one unordered_map serializes every rx worker at 100k+
// connections. Striping the table into S shards keyed by a mixed token
// hash bounds contention to 1/S and keeps each shard's table (and its
// rehash pauses) small.
//
// The key is always a 64-bit token here. std::hash<uint64_t> is the
// identity on libstdc++ and tokens are not uniformly distributed, so
// the stripe selector runs the token through a splitmix64 finalizer.
//
// Lock ordering: callers that hold a coarser structure lock (e.g. the
// listener's mu_) may take a shard lock under it, never the reverse.
// for_each/size take the shard locks one at a time, so they see a
// consistent per-shard (not global) snapshot — fine for sweeps and
// stats, which is all they serve.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace bertha {

inline uint64_t mix_token_hash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename V>
class ShardedMap {
 public:
  explicit ShardedMap(size_t shards = 16) {
    size_t n = 1;
    while (n < shards) n <<= 1;
    mask_ = n - 1;
    shards_ = std::vector<Shard>(n);
  }

  // Inserts or overwrites.
  void put(uint64_t key, V value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    s.map[key] = std::move(value);
  }

  // Insert only if absent; returns false (leaving the map unchanged)
  // when the key already exists.
  bool put_if_absent(uint64_t key, V value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.emplace(key, std::move(value)).second;
  }

  // Copy-out lookup: returns true and writes *out when present. The
  // value is copied under the shard lock (values are shared_ptr /
  // weak_ptr here, so a copy is a refcount bump).
  bool get(uint64_t key, V* out) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    *out = it->second;
    return true;
  }

  bool contains(uint64_t key) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.count(key) != 0;
  }

  bool erase(uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.erase(key) != 0;
  }

  // Removes and returns the value when present (erase + get in one
  // shard-lock hold, for teardown paths that need the victim).
  bool take(uint64_t key, V* out) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    *out = std::move(it->second);
    s.map.erase(it);
    return true;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

  // Visits every entry, one shard lock at a time. `f` must not call
  // back into this map (self-deadlock on the held shard).
  void for_each(const std::function<void(uint64_t, const V&)>& f) const {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& [k, v] : s.map) f(k, v);
    }
  }

  // Erases entries for which `pred` returns true; returns the number
  // removed. One shard at a time — the sweep never stops the world.
  size_t erase_if(const std::function<bool(uint64_t, const V&)>& pred) {
    size_t removed = 0;
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if (pred(it->first, it->second)) {
          it = s.map.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
    }
    return removed;
  }

  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      s.map.clear();
    }
  }

  size_t shard_count() const { return mask_ + 1; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, V> map;
  };

  Shard& shard(uint64_t key) { return shards_[mix_token_hash(key) & mask_]; }
  const Shard& shard(uint64_t key) const {
    return shards_[mix_token_hash(key) & mask_];
  }

  size_t mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace bertha
