#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace bertha {

namespace {

LogLevel level_from_env() {
  const char* e = std::getenv("BERTHA_LOG");
  if (!e) return LogLevel::warn;
  std::string_view s(e);
  if (s == "trace") return LogLevel::trace;
  if (s == "debug") return LogLevel::debug;
  if (s == "info") return LogLevel::info;
  if (s == "warn") return LogLevel::warn;
  if (s == "error") return LogLevel::error;
  if (s == "off") return LogLevel::off;
  return LogLevel::warn;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_emit_mu;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel lvl, std::string_view component, std::string_view msg) {
  if (lvl < log_level()) return;
  using namespace std::chrono;
  auto us = duration_cast<microseconds>(steady_clock::now().time_since_epoch())
                .count();
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::fprintf(stderr, "[%10lld.%06lld] [%s] [%.*s] %.*s\n",
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000), level_tag(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace bertha
