// Blocking multi-producer multi-consumer queue with deadlines and close().
//
// This is the backbone of every in-process transport and demux layer:
// closing a queue wakes all blocked consumers with Errc::cancelled, which
// is how connection close propagates through a chunnel stack.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/clock.hpp"
#include "util/result.hpp"

namespace bertha {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = 0) : capacity_(capacity) {}

  // Enqueue. Fails with resource_exhausted if a capacity is set and the
  // queue is full (bounded queues drop rather than block: transports are
  // datagram-like), or cancelled if closed.
  Result<void> push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return err(Errc::cancelled, "queue closed");
      if (capacity_ != 0 && q_.size() >= capacity_)
        return err(Errc::resource_exhausted, "queue full");
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
    return ok();
  }

  // Dequeue, blocking until an item arrives, the deadline expires, or the
  // queue is closed (and drained).
  Result<T> pop(Deadline deadline = Deadline::never()) {
    std::unique_lock<std::mutex> lk(mu_);
    while (q_.empty()) {
      if (closed_) return err(Errc::cancelled, "queue closed");
      if (deadline.is_never()) {
        cv_.wait(lk);
      } else {
        if (cv_.wait_until(lk, deadline.as_time_point()) ==
                std::cv_status::timeout &&
            q_.empty()) {
          if (closed_) return err(Errc::cancelled, "queue closed");
          return err(Errc::timed_out, "queue pop deadline expired");
        }
      }
    }
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  // Bulk dequeue under one lock acquisition: blocks like pop() for the
  // first item, then moves out up to `max` already-queued items. This is
  // the batched-receive path for queue-backed transports.
  Result<size_t> pop_batch(T* out, size_t max,
                           Deadline deadline = Deadline::never()) {
    if (max == 0) return size_t(0);
    std::unique_lock<std::mutex> lk(mu_);
    while (q_.empty()) {
      if (closed_) return err(Errc::cancelled, "queue closed");
      if (deadline.is_never()) {
        cv_.wait(lk);
      } else {
        if (cv_.wait_until(lk, deadline.as_time_point()) ==
                std::cv_status::timeout &&
            q_.empty()) {
          if (closed_) return err(Errc::cancelled, "queue closed");
          return err(Errc::timed_out, "queue pop deadline expired");
        }
      }
    }
    size_t n = 0;
    while (n < max && !q_.empty()) {
      out[n++] = std::move(q_.front());
      q_.pop_front();
    }
    return n;
  }

  // Non-blocking dequeue.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  // Wake all waiters; subsequent pushes fail. Items already queued are
  // still drained by pop().
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace bertha
