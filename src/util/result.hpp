// Result<T> / Error: the library-wide error channel.
//
// bertha-cpp does not throw exceptions on the data path. Every operation
// that can fail returns Result<T>, which holds either a value or an Error
// (a code from Errc plus a human-readable message). This mirrors the
// Rust prototype's use of Result and keeps failure handling explicit at
// every call site.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace bertha {

// Error codes, loosely modeled on absl::StatusCode / POSIX errno classes.
enum class Errc {
  ok = 0,
  invalid_argument,    // caller passed something malformed
  not_found,           // named entity does not exist
  already_exists,      // named entity exists and must not
  resource_exhausted,  // a capacity pool or queue is full
  unavailable,         // transient: peer/service not reachable right now
  timed_out,           // deadline expired
  connection_failed,   // establishment (dial/negotiate) failed
  protocol_error,      // malformed wire message
  incompatible,        // negotiation found no mutually usable configuration
  io_error,            // OS-level I/O failure
  cancelled,           // operation aborted because the owner is closing
  internal,            // invariant violation inside bertha itself
};

// Human-readable name for an error code ("timed_out", ...).
std::string_view errc_name(Errc c);

// An error: a code plus context. Cheap to move, fine to copy.
struct Error {
  Errc code = Errc::internal;
  std::string message;

  Error() = default;
  Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}

  // "timed_out: recv deadline expired"
  std::string to_string() const;
};

inline Error err(Errc c, std::string msg) { return Error(c, std::move(msg)); }

// Result<T>: either a T or an Error. A minimal tl::expected-like type;
// Result<void> is specialized below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error e) : rep_(std::move(e)) {}      // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  // Preconditions: ok() for value(), !ok() for error().
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(rep_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

  // Monadic map: apply f to the value, pass errors through.
  template <typename F>
  auto map(F&& f) && -> Result<decltype(f(std::declval<T&&>()))> {
    if (!ok()) return std::get<Error>(std::move(rep_));
    return f(std::get<T>(std::move(rep_)));
  }

 private:
  std::variant<T, Error> rep_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error e) : err_(std::move(e)), has_err_(true) {}  // NOLINT

  bool ok() const { return !has_err_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(has_err_);
    return err_;
  }

 private:
  Error err_;
  bool has_err_ = false;
};

inline Result<void> ok() { return Result<void>(); }

}  // namespace bertha

// Propagate an error from an expression returning Result<void>.
#define BERTHA_TRY(expr)                                \
  do {                                                  \
    auto bertha_try_tmp_ = (expr);                      \
    if (!bertha_try_tmp_.ok()) return bertha_try_tmp_.error(); \
  } while (0)

// Evaluate a Result<T> expression; on success bind the value to `var`,
// on failure propagate the error. Uses a GNU statement expression (we
// target GCC/Clang on Linux).
#define BERTHA_TRY_ASSIGN(var, expr)                 \
  auto var##_res_ = (expr);                          \
  if (!var##_res_.ok()) return var##_res_.error();   \
  auto var = std::move(var##_res_).value()
