// Token-bucket rate limiter used by the load-generating benchmark clients
// (Fig 5's offered-load sweep) and by SimNet's bandwidth model.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/clock.hpp"

namespace bertha {

// Not thread-safe: each generator thread owns its own limiter.
class TokenBucket {
 public:
  // rate: tokens per second; burst: bucket depth.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst), last_(now()) {}

  // Consume n tokens, sleeping until they are available.
  void acquire(double n = 1.0) {
    refill();
    while (tokens_ < n) {
      double deficit = n - tokens_;
      auto wait = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(deficit / rate_));
      sleep_for(std::max<Duration>(wait, us(1)));
      refill();
    }
    tokens_ -= n;
  }

  // Consume n tokens if available now; returns false (and consumes
  // nothing) otherwise.
  bool try_acquire(double n = 1.0) {
    refill();
    if (tokens_ < n) return false;
    tokens_ -= n;
    return true;
  }

  double rate() const { return rate_; }

 private:
  void refill() {
    auto t = now();
    double dt = std::chrono::duration<double>(t - last_).count();
    last_ = t;
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
  }

  double rate_;
  double burst_;
  double tokens_;
  TimePoint last_;
};

}  // namespace bertha
