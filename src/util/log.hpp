// Leveled logging to stderr.
//
// Logging is off by default above `warn` so benchmarks are not perturbed;
// set the level with set_log_level() or the BERTHA_LOG environment variable
// (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace bertha {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

void set_log_level(LogLevel lvl);
LogLevel log_level();

// Internal: emit one line ("[level] [component] message") with a timestamp.
void log_line(LogLevel lvl, std::string_view component, std::string_view msg);

namespace detail {
// Builds the message with an ostringstream; destructor emits it.
class LogMessage {
 public:
  LogMessage(LogLevel lvl, std::string_view component)
      : lvl_(lvl), component_(component) {}
  ~LogMessage() { log_line(lvl_, component_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace bertha

// Usage: BLOG(info, "discovery") << "registered " << name;
#define BLOG(level, component)                                    \
  if (::bertha::LogLevel::level >= ::bertha::log_level())         \
  ::bertha::detail::LogMessage(::bertha::LogLevel::level, component)
