// Exponential backoff with jitter for retry loops.
//
// Retrying at a fixed period turns a transient outage into a synchronized
// retry storm: every client that failed together retries together. Each
// delay here is drawn uniformly from [step*(1-jitter), step*(1+jitter)]
// around a geometrically growing step, capped at `max`. Seeded (via Rng)
// so tests are reproducible.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/clock.hpp"
#include "util/rand.hpp"

namespace bertha {

class ExponentialBackoff {
 public:
  struct Options {
    Duration base = ms(10);
    double multiplier = 2.0;
    Duration max = seconds(1);
    double jitter = 0.5;  // spread as a fraction of the current step
  };

  ExponentialBackoff(Options opts, uint64_t seed) : opts_(opts), rng_(seed) {
    if (opts_.base <= Duration::zero()) opts_.base = ms(1);
    if (opts_.max < opts_.base) opts_.max = opts_.base;
    opts_.multiplier = std::max(1.0, opts_.multiplier);
    opts_.jitter = std::clamp(opts_.jitter, 0.0, 1.0);
    step_ = opts_.base;
  }

  // The delay to sleep before the next attempt. Advances the step.
  Duration next() {
    attempts_++;
    double step = static_cast<double>(step_.count());
    double lo = step * (1.0 - opts_.jitter);
    double span = step * 2.0 * opts_.jitter;
    auto delay = Duration(static_cast<int64_t>(lo + span * rng_.next_double()));
    double grown = step * opts_.multiplier;
    double cap = static_cast<double>(opts_.max.count());
    step_ = Duration(static_cast<int64_t>(std::min(grown, cap)));
    return std::min(delay, opts_.max);
  }

  void reset() {
    step_ = opts_.base;
    attempts_ = 0;
  }

  int attempts() const { return attempts_; }
  // The undecorated (jitter-free) step the next next() draws around.
  Duration current_step() const { return step_; }

 private:
  Options opts_;
  Rng rng_;
  Duration step_;
  int attempts_ = 0;
};

}  // namespace bertha
