#include "util/bytes.hpp"

namespace bertha {

std::string hex_dump(BytesView b, size_t max) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  size_t n = std::min(b.size(), max);
  out.reserve(n * 3);
  for (size_t i = 0; i < n; i++) {
    if (i) out.push_back(' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (b.size() > max) out += " ...";
  return out;
}

}  // namespace bertha
