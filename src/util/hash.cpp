#include "util/hash.hpp"

namespace bertha {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

uint64_t fnv1a64(BytesView data) {
  uint64_t h = kFnvOffset;
  for (uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv1a64(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;  // avoid the all-zero fixed point
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace bertha
