// Byte-buffer helpers used throughout the data path.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bertha {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

// Fixed-width little-endian encode/append.
inline void put_u16_le(Bytes& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
}
inline void put_u32_le(Bytes& b, uint32_t v) {
  for (int i = 0; i < 4; i++) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void put_u64_le(Bytes& b, uint64_t v) {
  for (int i = 0; i < 8; i++) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

// Fixed-width little-endian decode at an offset the caller has bounds-checked.
inline uint16_t get_u16_le(BytesView b, size_t off) {
  return static_cast<uint16_t>(b[off]) | static_cast<uint16_t>(b[off + 1]) << 8;
}
inline uint32_t get_u32_le(BytesView b, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) v |= static_cast<uint32_t>(b[off + i]) << (8 * i);
  return v;
}
inline uint64_t get_u64_le(BytesView b, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v |= static_cast<uint64_t>(b[off + i]) << (8 * i);
  return v;
}

// Debugging aid: "de ad be ef" (at most `max` bytes, then "...").
std::string hex_dump(BytesView b, size_t max = 64);

}  // namespace bertha
