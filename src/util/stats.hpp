// Latency statistics: sample sets with percentile summaries, and a
// log-bucketed histogram for long-running measurement with bounded memory.
//
// The benchmark harnesses report the same statistics as the paper's
// figures: Fig 3 uses p5/p25/p50/p75/p95 box stats, Fig 5 uses p95.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace bertha {

// Fault-tolerance counters shared across the discovery/negotiation fault
// path: RemoteDiscovery (retries, heartbeats), DiscoveryState/Server
// (leases, dedup) and CachingDiscovery (degraded mode). One instance per
// runtime, exposed via Runtime::fault_stats(); all fields are atomics so
// any thread may bump them.
struct FaultStats {
  std::atomic<uint64_t> rpc_retries{0};     // resends after an RPC timeout
  std::atomic<uint64_t> rpc_failures{0};    // RPCs that exhausted retries
  std::atomic<uint64_t> dedup_hits{0};      // replays served from the cache
  std::atomic<uint64_t> lease_grants{0};
  std::atomic<uint64_t> lease_renewals{0};
  std::atomic<uint64_t> lease_expiries{0};  // owners reaped by the sweeper
  std::atomic<uint64_t> heartbeats_sent{0};
  std::atomic<uint64_t> lease_recoveries{0};  // re-registers after lost lease
  std::atomic<uint64_t> degraded_entries{0};
  std::atomic<uint64_t> degraded_exits{0};
  std::atomic<uint64_t> catalogue_hits{0};  // degraded queries from cache
  // Server-push watch streams (RemoteDiscovery subscriptions).
  std::atomic<uint64_t> watch_batches{0};       // pushed batches applied
  std::atomic<uint64_t> watch_resubscribes{0};  // seq gaps -> resume sent
  std::atomic<uint64_t> watch_snapshots{0};     // snapshot batches applied
  // Multi-server failover (replicated discovery control plane).
  std::atomic<uint64_t> server_failovers{0};  // rotations to the next replica
  // Control-plane self-healing (src/control/replica).
  std::atomic<uint64_t> view_changes{0};  // sequencer views adopted
  std::atomic<uint64_t> catchups{0};      // peer snapshots installed
  std::atomic<uint64_t> gap_misses{0};    // fetches past the resend log
  // Online repartitioning (src/control/reshard).
  std::atomic<uint64_t> reshard_fences{0};    // ranges frozen at a source
  std::atomic<uint64_t> reshard_installs{0};  // payloads ingested at a dest
  std::atomic<uint64_t> reshard_cutovers{0};  // ranges flipped to forwarding
  std::atomic<uint64_t> reshard_forwards{0};  // stale requests forwarded

  std::string to_string() const;
};

using FaultStatsPtr = std::shared_ptr<FaultStats>;

// Box-plot style summary of a sample set.
struct Summary {
  size_t count = 0;
  double mean = 0;
  double min = 0;
  double p5 = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;

  // One line: "n=100 mean=1.2 p50=1.1 p95=2.0 ..." (values in the sample's
  // own unit; callers record microseconds by convention).
  std::string to_string() const;
};

// Collects raw samples; exact percentiles on demand. Not thread-safe —
// each measuring thread owns one and merges at the end.
class SampleSet {
 public:
  void reserve(size_t n) { samples_.reserve(n); }
  void add(double v) { samples_.push_back(v); }
  void add_duration_us(Duration d) {
    samples_.push_back(std::chrono::duration<double, std::micro>(d).count());
  }
  void merge(const SampleSet& other);
  void clear() { samples_.clear(); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  // Exact percentile by nearest-rank on a sorted copy. q in [0,100].
  double percentile(double q) const;
  Summary summarize() const;

 private:
  std::vector<double> samples_;
};

// Log-bucketed histogram: ~2% relative error, constant memory, suitable
// for values spanning nanoseconds to seconds. Thread-compatible (not
// thread-safe); merge per-thread instances.
class LogHistogram {
 public:
  LogHistogram();

  void add(double v);
  void merge(const LogHistogram& other);

  size_t count() const { return count_; }
  double percentile(double q) const;  // q in [0,100]
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }

 private:
  static constexpr int kBucketsPerOctave = 32;
  static constexpr int kOctaves = 48;  // covers [1, 2^48)
  int bucket_for(double v) const;
  double bucket_value(int i) const;

  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace bertha
