#include "util/clock.hpp"

#include <thread>

namespace bertha {

void sleep_for(Duration d) { std::this_thread::sleep_for(d); }

}  // namespace bertha
