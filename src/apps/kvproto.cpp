#include "apps/kvproto.hpp"

#include "serialize/codec.hpp"
#include "util/hash.hpp"

namespace bertha {

Bytes encode_kv_request(const KvRequest& req) {
  Bytes out;
  out.reserve(14 + req.key.size() + req.value.size() + 4);
  out.push_back('K');
  out.push_back(static_cast<uint8_t>(req.op));
  put_u64_le(out, req.id);
  put_u32_le(out, static_cast<uint32_t>(fnv1a64(req.key)));
  Writer w(std::move(out));
  w.put_string(req.key);
  w.put_string(req.value);
  return std::move(w).take();
}

Result<KvRequest> decode_kv_request(BytesView b) {
  if (b.size() < 14 || b[0] != 'K')
    return err(Errc::protocol_error, "bad kv request header");
  KvRequest req;
  if (b[1] < 1 || b[1] > 4)
    return err(Errc::protocol_error, "bad kv op");
  req.op = static_cast<KvOp>(b[1]);
  req.id = get_u64_le(b, 2);
  uint32_t key_hash = get_u32_le(b, 10);
  Reader r(b.subspan(14));
  BERTHA_TRY_ASSIGN(key, r.get_string());
  BERTHA_TRY_ASSIGN(value, r.get_string());
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing bytes in kv request");
  if (key_hash != static_cast<uint32_t>(fnv1a64(key)))
    return err(Errc::protocol_error, "kv shard-field hash mismatch");
  req.key = std::move(key);
  req.value = std::move(value);
  return req;
}

Bytes encode_kv_response(const KvResponse& rsp) {
  Bytes out;
  out.reserve(10 + rsp.value.size() + 4);
  out.push_back('k');
  out.push_back(static_cast<uint8_t>(rsp.status));
  put_u64_le(out, rsp.id);
  Writer w(std::move(out));
  w.put_string(rsp.value);
  return std::move(w).take();
}

Result<KvResponse> decode_kv_response(BytesView b) {
  if (b.size() < 10 || b[0] != 'k')
    return err(Errc::protocol_error, "bad kv response header");
  if (b[1] > 2) return err(Errc::protocol_error, "bad kv status");
  KvResponse rsp;
  rsp.status = static_cast<KvStatus>(b[1]);
  rsp.id = get_u64_le(b, 2);
  Reader r(b.subspan(10));
  BERTHA_TRY_ASSIGN(value, r.get_string());
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing bytes in kv response");
  rsp.value = std::move(value);
  return rsp;
}

}  // namespace bertha
