#include "apps/kvstore.hpp"

namespace bertha {

void KvStore::put(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lk(mu_);
  map_[key] = std::move(value);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::erase(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.erase(key) > 0;
}

size_t KvStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

}  // namespace bertha
