#include "apps/kvclient.hpp"

namespace bertha {

Result<std::unique_ptr<KvClient>> KvClient::connect(
    std::shared_ptr<Runtime> rt, const Addr& server, Options opts,
    Deadline deadline) {
  if (!rt) return err(Errc::invalid_argument, "KvClient needs a runtime");
  if (opts.rpc_timeout <= Duration::zero() || opts.retries < 0)
    return err(Errc::invalid_argument, "bad KvClient options");
  BERTHA_TRY_ASSIGN(ep, rt->endpoint("kv-client", ChunnelDag::empty()));
  BERTHA_TRY_ASSIGN(conn, ep.connect(server, deadline));
  return std::unique_ptr<KvClient>(new KvClient(std::move(conn), opts));
}

Result<KvResponse> KvClient::call(KvRequest req) {
  req.id = next_id_++;
  Bytes wire = encode_kv_request(req);
  rpcs_++;

  Error last = err(Errc::timed_out, "kv rpc timed out");
  for (int attempt = 0; attempt <= opts_.retries; attempt++) {
    if (attempt > 0) retransmissions_++;
    Msg m;
    m.payload = wire;  // identical bytes: idempotent retransmission
    BERTHA_TRY(conn_->send(std::move(m)));
    Deadline dl = Deadline::after(opts_.rpc_timeout);
    for (;;) {
      auto reply = conn_->recv(dl);
      if (!reply.ok()) {
        last = reply.error();
        if (last.code == Errc::timed_out) break;  // retransmit
        return last;                              // closed/unavailable
      }
      auto rsp = decode_kv_response(reply.value().payload);
      if (!rsp.ok()) continue;                      // stray datagram
      if (rsp.value().id != req.id) continue;       // stale response
      return rsp;
    }
  }
  return err(Errc::unavailable,
             "kv rpc failed after " + std::to_string(opts_.retries + 1) +
                 " attempts (" + last.to_string() + ")");
}

Result<std::string> KvClient::get(const std::string& key) {
  KvRequest req;
  req.op = KvOp::get;
  req.key = key;
  BERTHA_TRY_ASSIGN(rsp, call(std::move(req)));
  if (rsp.status == KvStatus::not_found)
    return err(Errc::not_found, "no such key: " + key);
  if (rsp.status != KvStatus::ok)
    return err(Errc::internal, "kv server error for key: " + key);
  return std::move(rsp.value);
}

Result<void> KvClient::put(const std::string& key, std::string value) {
  KvRequest req;
  req.op = KvOp::put;
  req.key = key;
  req.value = std::move(value);
  BERTHA_TRY_ASSIGN(rsp, call(std::move(req)));
  if (rsp.status != KvStatus::ok)
    return err(Errc::internal, "kv put failed for key: " + key);
  return ok();
}

Result<void> KvClient::erase(const std::string& key) {
  KvRequest req;
  req.op = KvOp::del;
  req.key = key;
  BERTHA_TRY_ASSIGN(rsp, call(std::move(req)));
  if (rsp.status == KvStatus::not_found)
    return err(Errc::not_found, "no such key: " + key);
  return ok();
}

}  // namespace bertha
