#include "apps/ycsb.hpp"

#include <cmath>
#include <cstdio>

#include "util/hash.hpp"

namespace bertha {

namespace {

double zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, Rng rng)
    : n_(n ? n : 1), theta_(theta), rng_(rng) {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  zetan_ = zeta(n_, theta_);
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::next() {
  double u = rng_.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

YcsbGenerator::YcsbGenerator(YcsbConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      zipf_(cfg.record_count, cfg.zipf_theta, Rng(cfg.seed ^ 0x51f0f)) {}

std::string YcsbGenerator::key_for(uint64_t record) {
  // Scramble so hot zipfian records don't cluster on one shard.
  uint64_t scrambled = mix64(record) % 1000000000000ULL;
  char buf[20];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(scrambled));
  return buf;
}

std::string YcsbGenerator::value_of(size_t len) {
  std::string v(len, '\0');
  for (auto& c : v)
    c = static_cast<char>('a' + static_cast<char>(rng_.next_below(26)));
  return v;
}

KvRequest YcsbGenerator::load_request(uint64_t record) {
  KvRequest req;
  req.op = KvOp::put;
  req.id = next_id_++;
  req.key = key_for(record);
  req.value = value_of(cfg_.value_size);
  return req;
}

uint64_t YcsbGenerator::next_record() {
  uint64_t live = cfg_.record_count + insert_count_;
  switch (cfg_.distribution) {
    case KeyDistribution::uniform:
      return rng_.next_below(live);
    case KeyDistribution::zipfian:
      return zipf_.next();
    case KeyDistribution::latest: {
      // Skew toward recently inserted records: newest = rank 0.
      uint64_t rank = zipf_.next();
      return rank >= live ? 0 : (live - 1 - rank);
    }
  }
  return 0;
}

KvRequest YcsbGenerator::next() {
  KvRequest req;
  req.id = next_id_++;
  double p = rng_.next_double();

  auto read = [&] {
    req.op = KvOp::get;
    req.key = key_for(next_record());
  };
  auto update = [&] {
    req.op = KvOp::update;
    req.key = key_for(next_record());
    req.value = value_of(cfg_.value_size);
  };
  auto insert = [&] {
    req.op = KvOp::put;
    req.key = key_for(cfg_.record_count + insert_count_++);
    req.value = value_of(cfg_.value_size);
  };

  switch (cfg_.workload) {
    case YcsbWorkload::a:
      p < 0.5 ? read() : update();
      break;
    case YcsbWorkload::b:
      p < 0.95 ? read() : update();
      break;
    case YcsbWorkload::c:
      read();
      break;
    case YcsbWorkload::d:
      p < 0.95 ? read() : insert();
      break;
    case YcsbWorkload::e:
      // Callers wanting true scans use next_batch(); single-op callers
      // get the first key of the scan.
      p < 0.95 ? read() : insert();
      break;
    case YcsbWorkload::f:
      // Read-modify-write issues as an update here; callers that model
      // RMW as read-then-write can pair next() calls.
      p < 0.5 ? read() : update();
      break;
  }
  return req;
}

std::vector<KvRequest> YcsbGenerator::next_batch() {
  if (cfg_.workload != YcsbWorkload::e) return {next()};
  double p = rng_.next_double();
  if (p >= 0.95) return {next()};  // the insert slice
  // A scan: consecutive records from a random start.
  uint64_t start = next_record();
  uint64_t len = 1 + rng_.next_below(cfg_.max_scan_len);
  std::vector<KvRequest> out;
  uint64_t live = cfg_.record_count + insert_count_;
  for (uint64_t i = 0; i < len && start + i < live; i++) {
    KvRequest req;
    req.op = KvOp::get;
    req.id = next_id_++;
    req.key = key_for(start + i);
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace bertha
