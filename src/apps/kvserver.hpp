// Sharded KV server plumbing shared by the Fig 5 bench, the example and
// the integration tests: shard workers that serve the KV protocol over
// the shard chunnel's data plane.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/kvproto.hpp"
#include "apps/kvstore.hpp"
#include "chunnels/shard.hpp"

namespace bertha {

// One backend shard: a ShardWorker + its own KvStore + a service thread.
class KvShard {
 public:
  static Result<std::unique_ptr<KvShard>> start(TransportFactory& factory,
                                                const Addr& addr);
  ~KvShard();

  const Addr& addr() const { return worker_->addr(); }
  KvStore& store() { return store_; }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  void stop();

 private:
  explicit KvShard(std::unique_ptr<ShardWorker> worker);
  void serve();

  std::unique_ptr<ShardWorker> worker_;
  KvStore store_;
  std::atomic<uint64_t> served_{0};
  std::thread thread_;
};

// A full sharded KV backend: N shards on ephemeral addresses of the
// same family as `like`.
class KvBackend {
 public:
  static Result<std::unique_ptr<KvBackend>> start(TransportFactory& factory,
                                                  const Addr& like,
                                                  const std::string& host_id,
                                                  size_t num_shards);
  std::vector<Addr> shard_addrs() const;
  KvShard& shard(size_t i) { return *shards_[i]; }
  size_t size() const { return shards_.size(); }
  uint64_t total_served() const;
  void stop();

 private:
  std::vector<std::unique_ptr<KvShard>> shards_;
};

// Executes one request against a store (shared by KvShard and the RSM
// example's state machine).
KvResponse apply_kv_request(KvStore& store, const KvRequest& req);

}  // namespace bertha
