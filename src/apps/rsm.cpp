#include "apps/rsm.hpp"

#include "apps/kvserver.hpp"
#include "util/log.hpp"

namespace bertha {

// --- SequencedApplyWindow ---

std::vector<std::pair<uint64_t, Bytes>> SequencedApplyWindow::offer(
    uint64_t seq, Bytes item) {
  if (seq < next_ || holdback_.count(seq)) return {};  // dup
  holdback_.emplace(seq, std::move(item));
  return drain();
}

std::vector<std::pair<uint64_t, Bytes>> SequencedApplyWindow::skip_to(
    uint64_t up_to) {
  if (up_to > next_) {
    next_ = up_to;
    holdback_.erase(holdback_.begin(), holdback_.lower_bound(up_to));
  }
  return drain();
}

std::vector<std::pair<uint64_t, Bytes>> SequencedApplyWindow::drain() {
  std::vector<std::pair<uint64_t, Bytes>> out;
  while (!holdback_.empty() && holdback_.begin()->first == next_) {
    out.emplace_back(next_, std::move(holdback_.begin()->second));
    holdback_.erase(holdback_.begin());
    next_++;
  }
  return out;
}

Result<std::unique_ptr<RsmReplica>> RsmReplica::start(RsmReplicaConfig cfg) {
  if (!cfg.rt) return err(Errc::invalid_argument, "RsmReplica needs a runtime");
  ChunnelArgs args = cfg.extra_mcast_args;
  args.set("member_addr", cfg.member_addr.to_string());
  if (!cfg.group.empty()) args.set("instance", cfg.group);
  BERTHA_TRY_ASSIGN(ep, cfg.rt->endpoint("rsm-replica",
                                         wrap(ChunnelSpec("ordered_mcast",
                                                          std::move(args)))));
  BERTHA_TRY_ASSIGN(listener, ep.listen(cfg.listen_addr));
  return std::unique_ptr<RsmReplica>(
      new RsmReplica(std::move(cfg), std::move(listener)));
}

RsmReplica::RsmReplica(RsmReplicaConfig cfg, std::unique_ptr<Listener> listener)
    : cfg_(std::move(cfg)), listener_(std::move(listener)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

RsmReplica::~RsmReplica() { stop(); }

const Addr& RsmReplica::control_addr() const { return listener_->addr(); }

void RsmReplica::stop() {
  if (stopping_.exchange(true)) return;
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  std::vector<ConnPtr> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    threads.swap(threads_);
    conns.swap(conns_);
  }
  for (auto& c : conns) c->close();  // unblocks the drain threads
  for (auto& t : threads)
    if (t.joinable()) t.join();
}

void RsmReplica::accept_loop() {
  for (;;) {
    auto conn_r = listener_->accept();
    if (!conn_r.ok()) return;  // closed
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_.load()) {
      conn_r.value()->close();
      return;
    }
    ConnPtr conn = std::move(conn_r).value();
    conns_.push_back(conn);
    threads_.emplace_back([this, conn] { drain(conn); });
  }
}

void RsmReplica::drain(ConnPtr conn) {
  // All connections at this replica share one globally-ordered stream;
  // each operation is drained (and applied) exactly once, by whichever
  // drainer pops it.
  for (;;) {
    auto msg_r = conn->recv();
    if (!msg_r.ok()) return;
    const Msg& msg = msg_r.value();
    auto op_r = decode_kv_request(msg.payload);
    if (!op_r.ok()) {
      BLOG(debug, "rsm") << "bad op: " << op_r.error().to_string();
      continue;
    }
    KvResponse rsp = apply_kv_request(store_, op_r.value());
    applied_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.replier) {
      Msg reply;
      reply.dst = msg.src;  // the client's reply address
      reply.payload = encode_kv_response(rsp);
      (void)conn->send(std::move(reply));
    }
  }
}

Result<std::unique_ptr<RsmClient>> RsmClient::connect(
    std::shared_ptr<Runtime> rt, const std::vector<Addr>& replicas,
    Deadline deadline) {
  // Listing 5 pattern: the client specifies no chunnels; the replicas'
  // DAG (ordered_mcast) governs.
  BERTHA_TRY_ASSIGN(ep, rt->endpoint("rsm-client", ChunnelDag::empty()));
  BERTHA_TRY_ASSIGN(conn, ep.connect(replicas, deadline));
  return std::unique_ptr<RsmClient>(new RsmClient(std::move(conn)));
}

Result<KvResponse> RsmClient::execute(const KvRequest& op, Deadline deadline) {
  Msg m;
  m.payload = encode_kv_request(op);
  BERTHA_TRY(conn_->send(std::move(m)));
  for (;;) {
    BERTHA_TRY_ASSIGN(reply, conn_->recv(deadline));
    auto rsp = decode_kv_response(reply.payload);
    if (!rsp.ok()) continue;  // stray datagram
    if (rsp.value().id != op.id) continue;  // stale reply
    return rsp;
  }
}

}  // namespace bertha
