// Replicated state machine over the ordered multicast chunnel
// (paper §3.2 / Listing 2: the Speculative-Paxos / NOPaxos pattern —
// the network orders operations, replicas apply them in sequence).
//
// The replicated state machine is a KV store; operations are KvRequests.
// Every replica applies every operation in the global order; one
// designated replica replies to clients (clients treat its response as
// the commit acknowledgement — full view-change/recovery machinery is
// out of scope, gaps are counted by the chunnel).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "apps/kvproto.hpp"
#include "apps/kvstore.hpp"
#include "core/endpoint.hpp"

namespace bertha {

// In-order release of a sequenced operation stream: the holdback/apply
// half of the RSM pattern, extracted so other replicated state machines
// (the discovery control plane's DiscoveryReplica) reuse it instead of
// re-deriving the gap bookkeeping. Feed it (seq, op) pairs in any order;
// it returns the maximal contiguous run starting at the expected next
// seq. Not thread-safe — own it from one apply thread.
class SequencedApplyWindow {
 public:
  explicit SequencedApplyWindow(uint64_t first_seq = 0) : next_(first_seq) {}

  // Offers one sequenced item; returns every (seq, item) now releasable
  // in order (empty while a gap blocks the head). Duplicates and
  // already-released seqs are dropped.
  std::vector<std::pair<uint64_t, Bytes>> offer(uint64_t seq, Bytes item);

  // Next seq the window expects (everything below has been released).
  uint64_t next_seq() const { return next_; }
  // True when items are buffered behind a missing seq.
  bool has_gap() const { return !holdback_.empty(); }
  // Lowest buffered seq (call only when has_gap()): the missing range is
  // [next_seq(), gap_end()).
  uint64_t gap_end() const { return holdback_.begin()->first; }
  size_t buffered() const { return holdback_.size(); }

  // Gap recovery gave up on [next_seq(), up_to): skip ahead and release
  // whatever is now contiguous.
  std::vector<std::pair<uint64_t, Bytes>> skip_to(uint64_t up_to);

  // Hands back the buffered holdback, emptying the window — used when a
  // catch-up replaces the window wholesale: the caller re-offers these
  // into the replacement so received-but-gapped items aren't lost.
  std::vector<std::pair<uint64_t, Bytes>> take_buffered() {
    std::vector<std::pair<uint64_t, Bytes>> out;
    out.reserve(holdback_.size());
    for (auto& [seq, item] : holdback_) out.emplace_back(seq, std::move(item));
    holdback_.clear();
    return out;
  }

 private:
  std::vector<std::pair<uint64_t, Bytes>> drain();

  uint64_t next_;
  std::map<uint64_t, Bytes> holdback_;
};

struct RsmReplicaConfig {
  std::shared_ptr<Runtime> rt;
  Addr listen_addr;  // control address (negotiation)
  Addr member_addr;  // where sequenced operations arrive (group member)
  // Name of the consensus group this replica belongs to; negotiation
  // only binds sequencers advertised for this instance.
  std::string group;
  bool replier = false;
  ChunnelArgs extra_mcast_args;  // e.g. explicit group/sequencer override
};

class RsmReplica {
 public:
  static Result<std::unique_ptr<RsmReplica>> start(RsmReplicaConfig cfg);
  ~RsmReplica();

  const Addr& control_addr() const;
  KvStore& store() { return store_; }
  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }
  void stop();

 private:
  RsmReplica(RsmReplicaConfig cfg, std::unique_ptr<Listener> listener);
  void accept_loop();
  void drain(ConnPtr conn);

  RsmReplicaConfig cfg_;
  std::unique_ptr<Listener> listener_;
  KvStore store_;
  std::atomic<uint64_t> applied_{0};
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<ConnPtr> conns_;  // accepted connections, closed at stop()
  std::thread accept_thread_;
};

// Client: executes operations against the group and waits for the
// designated replier's response.
class RsmClient {
 public:
  // Connects (and negotiates) with every replica's control address.
  static Result<std::unique_ptr<RsmClient>> connect(
      std::shared_ptr<Runtime> rt, const std::vector<Addr>& replicas,
      Deadline deadline = Deadline::never());

  Result<KvResponse> execute(const KvRequest& op,
                             Deadline deadline = Deadline::never());
  void close() { conn_->close(); }

 private:
  explicit RsmClient(ConnPtr conn) : conn_(std::move(conn)) {}
  ConnPtr conn_;
};

}  // namespace bertha
