// Replicated state machine over the ordered multicast chunnel
// (paper §3.2 / Listing 2: the Speculative-Paxos / NOPaxos pattern —
// the network orders operations, replicas apply them in sequence).
//
// The replicated state machine is a KV store; operations are KvRequests.
// Every replica applies every operation in the global order; one
// designated replica replies to clients (clients treat its response as
// the commit acknowledgement — full view-change/recovery machinery is
// out of scope, gaps are counted by the chunnel).
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/kvproto.hpp"
#include "apps/kvstore.hpp"
#include "core/endpoint.hpp"

namespace bertha {

struct RsmReplicaConfig {
  std::shared_ptr<Runtime> rt;
  Addr listen_addr;  // control address (negotiation)
  Addr member_addr;  // where sequenced operations arrive (group member)
  // Name of the consensus group this replica belongs to; negotiation
  // only binds sequencers advertised for this instance.
  std::string group;
  bool replier = false;
  ChunnelArgs extra_mcast_args;  // e.g. explicit group/sequencer override
};

class RsmReplica {
 public:
  static Result<std::unique_ptr<RsmReplica>> start(RsmReplicaConfig cfg);
  ~RsmReplica();

  const Addr& control_addr() const;
  KvStore& store() { return store_; }
  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }
  void stop();

 private:
  RsmReplica(RsmReplicaConfig cfg, std::unique_ptr<Listener> listener);
  void accept_loop();
  void drain(ConnPtr conn);

  RsmReplicaConfig cfg_;
  std::unique_ptr<Listener> listener_;
  KvStore store_;
  std::atomic<uint64_t> applied_{0};
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<ConnPtr> conns_;  // accepted connections, closed at stop()
  std::thread accept_thread_;
};

// Client: executes operations against the group and waits for the
// designated replier's response.
class RsmClient {
 public:
  // Connects (and negotiates) with every replica's control address.
  static Result<std::unique_ptr<RsmClient>> connect(
      std::shared_ptr<Runtime> rt, const std::vector<Addr>& replicas,
      Deadline deadline = Deadline::never());

  Result<KvResponse> execute(const KvRequest& op,
                             Deadline deadline = Deadline::never());
  void close() { conn_->close(); }

 private:
  explicit RsmClient(ConnPtr conn) : conn_(std::move(conn)) {}
  ConnPtr conn_;
};

}  // namespace bertha
