#include "apps/kvserver.hpp"

#include "chunnels/common.hpp"
#include "util/log.hpp"

namespace bertha {

KvResponse apply_kv_request(KvStore& store, const KvRequest& req) {
  KvResponse rsp;
  rsp.id = req.id;
  switch (req.op) {
    case KvOp::get: {
      auto v = store.get(req.key);
      if (v) {
        rsp.status = KvStatus::ok;
        rsp.value = std::move(*v);
      } else {
        rsp.status = KvStatus::not_found;
      }
      break;
    }
    case KvOp::put:
    case KvOp::update:
      store.put(req.key, req.value);
      rsp.status = KvStatus::ok;
      break;
    case KvOp::del:
      rsp.status = store.erase(req.key) ? KvStatus::ok : KvStatus::not_found;
      break;
  }
  return rsp;
}

KvShard::KvShard(std::unique_ptr<ShardWorker> worker)
    : worker_(std::move(worker)) {
  thread_ = std::thread([this] { serve(); });
}

Result<std::unique_ptr<KvShard>> KvShard::start(TransportFactory& factory,
                                                const Addr& addr) {
  BERTHA_TRY_ASSIGN(worker, ShardWorker::bind(factory, addr));
  return std::unique_ptr<KvShard>(new KvShard(std::move(worker)));
}

KvShard::~KvShard() { stop(); }

void KvShard::stop() {
  worker_->close();
  if (thread_.joinable()) thread_.join();
}

void KvShard::serve() {
  for (;;) {
    auto msg_r = worker_->recv();
    if (!msg_r.ok()) return;  // closed
    const Msg& msg = msg_r.value();
    auto req_r = decode_kv_request(msg.payload);
    if (!req_r.ok()) {
      BLOG(debug, "kvshard") << "bad request: " << req_r.error().to_string();
      continue;
    }
    KvResponse rsp = apply_kv_request(store_, req_r.value());
    served_.fetch_add(1, std::memory_order_relaxed);
    (void)worker_->reply(msg.src, encode_kv_response(rsp));
  }
}

Result<std::unique_ptr<KvBackend>> KvBackend::start(TransportFactory& factory,
                                                    const Addr& like,
                                                    const std::string& host_id,
                                                    size_t num_shards) {
  if (num_shards == 0)
    return err(Errc::invalid_argument, "need at least one shard");
  auto backend = std::make_unique<KvBackend>();
  for (size_t i = 0; i < num_shards; i++) {
    BERTHA_TRY_ASSIGN(shard,
                      KvShard::start(factory, ephemeral_like(like, host_id)));
    backend->shards_.push_back(std::move(shard));
  }
  return backend;
}

std::vector<Addr> KvBackend::shard_addrs() const {
  std::vector<Addr> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s->addr());
  return out;
}

uint64_t KvBackend::total_served() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->requests_served();
  return total;
}

void KvBackend::stop() {
  for (auto& s : shards_) s->stop();
}

}  // namespace bertha
