// Ping/echo RPC app — the "simple ping application" of Fig 3/4.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/endpoint.hpp"
#include "util/stats.hpp"

namespace bertha {

// Echo server: accepts connections on a Bertha endpoint and echoes
// every message back.
class PingServer {
 public:
  static Result<std::unique_ptr<PingServer>> start(std::shared_ptr<Runtime> rt,
                                                   ChunnelDag dag,
                                                   const Addr& listen_addr);
  ~PingServer();

  const Addr& addr() const;
  uint64_t echoed() const { return echoed_.load(std::memory_order_relaxed); }
  void stop();

 private:
  explicit PingServer(std::unique_ptr<Listener> listener);
  void accept_loop();

  std::unique_ptr<Listener> listener_;
  std::atomic<uint64_t> echoed_{0};
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::thread accept_thread_;
};

// One round trip: send `payload_size` bytes, wait for the echo, return
// the elapsed time.
Result<Duration> ping_once(Connection& conn, size_t payload_size,
                           Deadline deadline);

// Fig 3's unit of measurement: establish a connection, run `pings`
// round trips, close. Returns per-request latencies and the
// connection-establishment time.
struct PingRun {
  Duration connect_time{};
  std::vector<Duration> rtts;
};
Result<PingRun> ping_over_new_connection(Endpoint& ep, const Addr& server,
                                         size_t payload_size, int pings,
                                         Deadline deadline);

}  // namespace bertha
