// KV wire protocol.
//
// The request layout is designed the way the paper's sharding function
// expects (Listing 4: `hash(p.payload[10..14]) % 3`): a fixed-offset
// shard-key field lives at bytes [10,14) of every request, so a
// header-peeking dispatcher (XDP stand-in) or a programmable switch can
// steer without parsing the variable-length tail.
//
//   offset 0      'K'
//   offset 1      op (1=get 2=put 3=update 4=del)
//   offset 2..10  request id, u64 LE
//   offset 10..14 shard key field: fnv1a32(key), u32 LE
//   then          varint key_len | key | varint val_len | val
//
// Responses: 'k' | status (0=ok 1=not_found 2=error) | id u64 LE |
//            varint val_len | val.
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

enum class KvOp : uint8_t { get = 1, put = 2, update = 3, del = 4 };
enum class KvStatus : uint8_t { ok = 0, not_found = 1, error = 2 };

struct KvRequest {
  KvOp op = KvOp::get;
  uint64_t id = 0;
  std::string key;
  std::string value;

  bool operator==(const KvRequest& o) const {
    return op == o.op && id == o.id && key == o.key && value == o.value;
  }
};

struct KvResponse {
  KvStatus status = KvStatus::ok;
  uint64_t id = 0;
  std::string value;

  bool operator==(const KvResponse& o) const {
    return status == o.status && id == o.id && value == o.value;
  }
};

// The byte range the sharding function hashes (for ShardArgs).
inline constexpr uint64_t kKvShardFieldOffset = 10;
inline constexpr uint64_t kKvShardFieldLen = 4;

Bytes encode_kv_request(const KvRequest& req);
Result<KvRequest> decode_kv_request(BytesView b);
Bytes encode_kv_response(const KvResponse& rsp);
Result<KvResponse> decode_kv_response(BytesView b);

}  // namespace bertha
