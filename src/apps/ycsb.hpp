// YCSB-style workload generator (Cooper et al., SoCC '10) — built from
// scratch since the reference implementation is Java (DESIGN.md §1.4).
//
// Implements the standard core workload mixes:
//   A  50% read / 50% update          (the paper's Fig 5 workload)
//   B  95% read /  5% update
//   C  100% read
//   D  95% read /  5% insert, skewed to recent keys
//   E  95% scan /  5% insert (scans issued as short multi-get batches)
//   F  50% read / 50% read-modify-write
// with uniform, zipfian (theta = 0.99, Gray et al. formulation) and
// latest request distributions. Deterministic under a fixed seed.
#pragma once

#include <string>
#include <vector>

#include "apps/kvproto.hpp"
#include "util/rand.hpp"

namespace bertha {

enum class YcsbWorkload { a, b, c, d, e, f };
enum class KeyDistribution { uniform, zipfian, latest };

struct YcsbConfig {
  YcsbWorkload workload = YcsbWorkload::a;
  KeyDistribution distribution = KeyDistribution::uniform;
  size_t record_count = 1000;
  size_t value_size = 100;
  double zipf_theta = 0.99;
  size_t max_scan_len = 10;
  uint64_t seed = 42;
};

// Zipfian sampler over [0, n) (reusable on its own).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, Rng rng);
  uint64_t next();
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
  Rng rng_;
};

class YcsbGenerator {
 public:
  explicit YcsbGenerator(YcsbConfig cfg);

  // Keys are "user<12 digits>"; the digits are a scrambled record index
  // so zipfian-popular records are spread across shards.
  static std::string key_for(uint64_t record);
  std::string value_of(size_t len);

  // The load phase: one put per record, in index order.
  KvRequest load_request(uint64_t record);
  size_t record_count() const { return cfg_.record_count; }

  // The run phase: next operation per the workload mix. Scans (workload
  // E) are returned as `scan_len` get-requests on consecutive records
  // via next_batch().
  KvRequest next();
  std::vector<KvRequest> next_batch();

  const YcsbConfig& config() const { return cfg_; }

 private:
  uint64_t next_record();

  YcsbConfig cfg_;
  Rng rng_;
  ZipfianGenerator zipf_;
  uint64_t next_id_ = 1;
  uint64_t insert_count_ = 0;  // records appended by insert ops (D/E)
};

}  // namespace bertha
