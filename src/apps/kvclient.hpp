// KvClient: the client library for the sharded KV service (the polished
// form of Listing 5's get_key). Wraps a negotiated Bertha connection
// with request/response matching, per-RPC timeouts, and idempotent
// retransmission (GET/PUT/UPDATE/DEL are all idempotent, so resending
// the identical request is safe).
#pragma once

#include <memory>

#include "apps/kvproto.hpp"
#include "core/endpoint.hpp"

namespace bertha {

class KvClient {
 public:
  struct Options {
    Duration rpc_timeout = ms(500);
    int retries = 3;
  };

  // Connects with an empty DAG: the server's chain (typically
  // shard |> ...) governs, exactly as in Listing 5.
  static Result<std::unique_ptr<KvClient>> connect(
      std::shared_ptr<Runtime> rt, const Addr& server, Options opts,
      Deadline deadline = Deadline::never());
  static Result<std::unique_ptr<KvClient>> connect(
      std::shared_ptr<Runtime> rt, const Addr& server,
      Deadline deadline = Deadline::never()) {
    return connect(std::move(rt), server, Options{}, deadline);
  }

  // Not thread-safe: one KvClient per calling thread (load generators
  // that pipeline manage the connection directly).
  Result<std::string> get(const std::string& key);
  Result<void> put(const std::string& key, std::string value);
  Result<void> erase(const std::string& key);

  // Generic call: assigns the request id, retries idempotently.
  Result<KvResponse> call(KvRequest req);

  uint64_t rpcs_sent() const { return rpcs_; }
  uint64_t retransmissions() const { return retransmissions_; }
  void close() { conn_->close(); }

 private:
  KvClient(ConnPtr conn, Options opts) : conn_(std::move(conn)), opts_(opts) {}

  ConnPtr conn_;
  Options opts_;
  uint64_t next_id_ = 1;
  uint64_t rpcs_ = 0;
  uint64_t retransmissions_ = 0;
};

}  // namespace bertha
