#include "apps/ping.hpp"

namespace bertha {

Result<std::unique_ptr<PingServer>> PingServer::start(
    std::shared_ptr<Runtime> rt, ChunnelDag dag, const Addr& listen_addr) {
  BERTHA_TRY_ASSIGN(ep, rt->endpoint("ping-server", std::move(dag)));
  BERTHA_TRY_ASSIGN(listener, ep.listen(listen_addr));
  return std::unique_ptr<PingServer>(new PingServer(std::move(listener)));
}

PingServer::PingServer(std::unique_ptr<Listener> listener)
    : listener_(std::move(listener)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PingServer::~PingServer() { stop(); }

const Addr& PingServer::addr() const { return listener_->addr(); }

void PingServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
}

void PingServer::accept_loop() {
  for (;;) {
    auto conn_r = listener_->accept();
    if (!conn_r.ok()) return;
    ConnPtr conn = std::move(conn_r).value();
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_.load()) {
      conn->close();
      return;
    }
    threads_.emplace_back([this, conn] {
      for (;;) {
        auto msg_r = conn->recv();
        if (!msg_r.ok()) return;
        Msg reply;
        reply.dst = msg_r.value().src;
        reply.payload = std::move(msg_r.value().payload);
        // Count before sending: an observer that already received the
        // echo must see the counter updated.
        echoed_.fetch_add(1, std::memory_order_relaxed);
        if (!conn->send(std::move(reply)).ok()) return;
      }
    });
  }
}

Result<Duration> ping_once(Connection& conn, size_t payload_size,
                           Deadline deadline) {
  Msg m;
  m.payload.assign(payload_size, 0xab);
  Stopwatch sw;
  BERTHA_TRY(conn.send(std::move(m)));
  BERTHA_TRY_ASSIGN(echo, conn.recv(deadline));
  if (echo.payload.size() != payload_size)
    return err(Errc::protocol_error, "echo size mismatch");
  return sw.elapsed();
}

Result<PingRun> ping_over_new_connection(Endpoint& ep, const Addr& server,
                                         size_t payload_size, int pings,
                                         Deadline deadline) {
  PingRun run;
  Stopwatch connect_sw;
  BERTHA_TRY_ASSIGN(conn, ep.connect(server, deadline));
  run.connect_time = connect_sw.elapsed();
  for (int i = 0; i < pings; i++) {
    BERTHA_TRY_ASSIGN(rtt, ping_once(*conn, payload_size, deadline));
    run.rtts.push_back(rtt);
  }
  conn->close();
  return run;
}

}  // namespace bertha
