// In-memory key-value store — the server application of Listing 4 and
// the Fig 5 evaluation ("a key-value store which uses the hashmap
// implementation from Rust's standard library").
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace bertha {

// Thread-safe string KV store. Shards each own one instance, so the
// internal lock is uncontended in the sharded deployment; it exists so
// unsharded examples are also correct.
class KvStore {
 public:
  void put(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  bool erase(const std::string& key);
  // Read-modify-write (YCSB "update" semantics: replace).
  void update(const std::string& key, std::string value) { put(key, std::move(value)); }
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace bertha
