// Sharded, replicated discovery control plane.
//
// Two pieces:
//
//  * ClusterDiscovery — the client-side router. Implements
//    DiscoveryClient over N partitions, each served by a replica group:
//    ops are steered to their partition with the shard chunnel's
//    consistent hash (PartitionMap), and each partition is reached
//    through a multi-server RemoteDiscovery that fails over between the
//    partition's replicas on RPC timeout or watch-stream silence. The
//    catalogue-wide watch (empty filter) fans in every partition's
//    stream into one watcher. apply_membership() adopts a newer
//    versioned cluster config (replicas added/removed online) and
//    re-steers every partition client.
//
//  * DiscoveryCluster — the in-process harness that stands up the whole
//    control plane (per partition: a sequencer candidate list plus R
//    DiscoveryReplicas) on mem transports, used by tests, the chaos
//    suite and the failover bench. kill_replica()/kill_sequencer() tear
//    components down the hard way, exactly like a process death: their
//    transports close and clients discover it by timeout.
//    restart_replica() and add_replica() exercise the recovery layer:
//    the (re)joining replica boots with catch_up and installs a peer
//    snapshot before serving.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chunnels/ordered_mcast.hpp"
#include "control/partition_map.hpp"
#include "control/replica.hpp"
#include "core/discovery.hpp"
#include "core/runtime.hpp"

namespace bertha {

class ClusterDiscovery final : public DiscoveryClient {
 public:
  struct Config {
    // partitions[i] = the rpc addresses of partition i's replicas.
    std::vector<std::vector<Addr>> partitions;
    std::shared_ptr<TransportFactory> transports;
    std::string host_id;  // client bind identity (mem/sim channels)
    RemoteDiscovery::Options rpc;  // per-partition client options
  };

  static Result<std::shared_ptr<ClusterDiscovery>> connect(Config cfg);
  ~ClusterDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  // Non-empty filter: the partition owning that type serves the stream
  // directly (seq-resumable across that partition's replicas). Empty
  // filter: one fan-in watcher over every partition, re-sequenced
  // locally (the merged stream has its own seq domain).
  Result<WatcherPtr> watch(const std::string& type_filter) override;
  bool degraded() const override;

  // Adopts a newer cluster config: records the epoch (and any steering
  // change — split/merge re-homes hash buckets) in the partition map and
  // re-steers every partition client at the config's replica list (the
  // client keeps its current server when it is still a member). Grows
  // new partition clients on a split (active fan-in watches subscribe to
  // the new partitions; the snapshot batch makes that idempotent) and
  // drops retired ones on a merge. Rejects stale/equal epochs and
  // steering-modulo regressions.
  Result<void> apply_membership(const ClusterMembership& m);

  const PartitionMap& partition_map() const { return map_; }
  // The per-partition client (diagnostics/tests).
  RemoteDiscovery& partition_client(size_t i) { return *client_for(i); }
  size_t partitions() const;
  // Total replica failovers across all partition clients.
  size_t server_failovers() const;

 private:
  explicit ClusterDiscovery(size_t partitions) : map_(partitions) {}
  void fan_in_loop(WatcherPtr upstream, WatcherPtr out);
  std::shared_ptr<RemoteDiscovery> client_for(size_t idx) const;
  Result<std::shared_ptr<RemoteDiscovery>> connect_partition(
      const std::vector<Addr>& servers) const;

  Config cfg_;  // retained so apply_membership can grow new partitions
  PartitionMap map_;
  // clients_ changes size under cl_mu_ when a membership push adds or
  // retires partitions; ops grab the shared_ptr under the lock and call
  // outside it.
  mutable std::mutex cl_mu_;
  std::vector<std::shared_ptr<RemoteDiscovery>> clients_;

  // Fan-in watch plumbing (empty-filter watches only). Upstreams are
  // tagged with their partition index so a merge can cancel the streams
  // of retired partitions.
  std::mutex fan_mu_;
  std::atomic<uint64_t> fan_seq_{0};
  std::vector<std::pair<size_t, WatcherPtr>> fan_upstreams_;
  std::vector<WatcherPtr> fan_outs_;
  std::vector<std::thread> fan_threads_;
  std::atomic<bool> stopping_{false};
};

// The full control plane, dogfooded on Bertha's own stacks: ordered
// multicast for replication, the shard hash for partitioning, the
// discovery server/client protocol for RPCs and watch push.
class DiscoveryCluster {
 public:
  struct Config {
    size_t partitions = 2;
    size_t replicas = 3;
    std::shared_ptr<TransportFactory> transports;
    // Mem-channel prefix: partition p replica r binds
    // mem://<prefix>-p<p>-r<r>:{1,2} (rpc, member); sequencer candidate
    // 0 binds mem://<prefix>-p<p>-seq:1, candidate k > 0
    // mem://<prefix>-p<p>-seq<k>:1.
    std::string prefix = "ctrl";
    // Template for every replica. replica_id / partition_index /
    // sequencer(s) / peers are filled per replica; the recovery knobs
    // (catchup / view-change timeouts) come from `tuning` below, not
    // from this template.
    DiscoveryReplicaOptions replica;
    // Sequencer candidates per partition. Candidate 0 starts active in
    // view 0; the rest stand by until a view change elects them
    // (view v -> candidate v % sequencer_candidates). 1 = no sequencer
    // failover (and view-change detection stays disabled).
    size_t sequencer_candidates = 1;
    // Recovery tuning: sequencer resend-log bound, catch-up and
    // view-change timeouts, client watchdog poll (see core/runtime.hpp).
    // view_silence_timeout only takes effect with >= 2 candidates.
    ControlTuning tuning;
    // Optional wrapper applied to every bound transport; `role` is
    // "<prefix>-p<p>-r<r>-rpc", "<prefix>-p<p>-r<r>-member",
    // "<prefix>-p<p>-seq" (candidate 0) or "<prefix>-p<p>-seq<k>" so a
    // test can fault-inject one component and leave the rest clean.
    std::function<TransportPtr(TransportPtr, const std::string& role)> decorate;
  };

  static Result<std::unique_ptr<DiscoveryCluster>> start(Config cfg);
  ~DiscoveryCluster();

  // Total partition slots ever created, retired ones included (their
  // replica pointers are null). active_partitions() is the number that
  // the current membership steers traffic to.
  size_t partitions() const { return replicas_.size(); }
  size_t active_partitions() const;
  size_t replicas(size_t p) const { return replicas_[p].size(); }
  // Replica rpc address list of one partition under the current
  // membership (grows with add_replica; a restarted replica rebinds the
  // same channel, so kills don't shrink it).
  std::vector<Addr> partition_servers(size_t p) const;
  std::vector<std::vector<Addr>> all_servers() const;

  // The current versioned cluster config (epoch starts at 1; every
  // add_replica bumps it). Feed to ClusterDiscovery::apply_membership.
  ClusterMembership membership() const;

  // Hard-kills one replica: transports close, in-flight RPCs time out,
  // clients rotate. Idempotent.
  void kill_replica(size_t p, size_t r);
  bool alive(size_t p, size_t r) const;
  // Boots the killed replica again on the same addresses, catch_up set:
  // it installs a peer snapshot (state + watch event log + dedup) and
  // replays the sequenced suffix before serving. No-op error when still
  // alive. With no peers (single-replica partition) the restart comes
  // back empty instead.
  Result<void> restart_replica(size_t p, size_t r);
  // Grows partition p by one catch-up replica, steers the partition's
  // live sequencers at the widened member list and bumps the membership
  // epoch. Returns the new replica's index.
  Result<size_t> add_replica(size_t p);

  // Hard-kills one sequencer candidate (the view-change trigger when
  // it's the active one). Idempotent.
  void kill_sequencer(size_t p, size_t c = 0);
  bool sequencer_alive(size_t p, size_t c = 0) const;

  // --- Online repartitioning hooks (driven by ReshardCoordinator) ---
  //
  // prepare_partition() appends one fully-replicated partition (replica
  // group + sequencer candidates) that no membership steers traffic to
  // yet; revive_partition() reboots a retired slot the same way. Both
  // leave steering untouched: the new group idles until set_steering()
  // re-homes hash buckets onto it and push_membership() tells every
  // registered client. retire_partition() hard-stops a partition's
  // replicas and sequencers after a merge drained it.
  Result<size_t> prepare_partition();
  Result<void> revive_partition(size_t p);
  void retire_partition(size_t p);
  // Adopts a new steering table (see PartitionMap: index =
  // home[shard_pick(key, modulo)]), bumps the membership epoch and
  // records how many leading partitions the config exports. Returns the
  // new epoch.
  uint64_t set_steering(uint64_t modulo, std::vector<uint32_t> home,
                        size_t active);
  // Pushes the current membership to every live client minted by
  // client(); returns how many adopted it.
  size_t push_membership();
  // Topology for the reshard coordinator.
  std::vector<Addr> partition_members(size_t p) const;
  std::vector<Addr> sequencer_addrs(size_t p) const;
  const std::shared_ptr<TransportFactory>& transports() const {
    return cfg_.transports;
  }
  const std::string& prefix() const { return cfg_.prefix; }

  // nullptr after kill_replica.
  DiscoveryReplica* replica(size_t p, size_t r) { return replicas_[p][r].get(); }
  // Candidate 0 (the view-0 sequencer); invalid after kill_sequencer(p).
  SoftwareSequencer& sequencer(size_t p) { return *sequencers_[p][0]; }
  // nullptr after kill_sequencer(p, c).
  SoftwareSequencer* sequencer_at(size_t p, size_t c) {
    return sequencers_[p][c].get();
  }

  // A routing client over this cluster. `host_id` must be unique per
  // client (mem bind channel + lease identity namespace).
  Result<std::shared_ptr<ClusterDiscovery>> client(
      const std::string& host_id, RemoteDiscovery::Options rpc = {});

  void stop();

 private:
  explicit DiscoveryCluster(Config cfg) : cfg_(std::move(cfg)) {}
  Result<TransportPtr> bind(const Addr& addr, const std::string& role) const;
  Result<void> start_partition(size_t p);
  DiscoveryReplicaOptions replica_opts(size_t p, size_t r) const;
  std::string replica_name(size_t p, size_t r) const;

  Config cfg_;
  // rpc_addrs_, the steering fields and epoch_ change online
  // (add_replica / set_steering) while clients read them; the topology
  // vectors below them are start()-time fixed per partition except for
  // push_back under the same lock (and the outer vectors are reserved up
  // front so prepare_partition never reallocates under a reader).
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  uint64_t modulo_ = 0;           // steering modulo (monotone, >= active)
  std::vector<uint32_t> home_;    // bucket -> partition
  size_t active_ = 0;             // leading partitions the config exports
  std::vector<std::weak_ptr<ClusterDiscovery>> client_registry_;
  std::vector<std::vector<Addr>> rpc_addrs_;
  std::vector<std::vector<Addr>> member_addrs_;
  std::vector<std::vector<Addr>> seq_addrs_;  // [partition][candidate]
  std::vector<std::vector<std::unique_ptr<SoftwareSequencer>>> sequencers_;
  std::vector<std::vector<std::unique_ptr<DiscoveryReplica>>> replicas_;
};

}  // namespace bertha
