// Sharded, replicated discovery control plane.
//
// Two pieces:
//
//  * ClusterDiscovery — the client-side router. Implements
//    DiscoveryClient over N partitions, each served by a replica group:
//    ops are steered to their partition with the shard chunnel's
//    consistent hash (PartitionMap), and each partition is reached
//    through a multi-server RemoteDiscovery that fails over between the
//    partition's replicas on RPC timeout or watch-stream silence. The
//    catalogue-wide watch (empty filter) fans in every partition's
//    stream into one watcher.
//
//  * DiscoveryCluster — the in-process harness that stands up the whole
//    control plane (per partition: one SoftwareSequencer plus R
//    DiscoveryReplicas) on mem transports, used by tests, the chaos
//    suite and the failover bench. kill_replica() tears one replica down
//    the hard way, exactly like a process death: its transports close
//    and clients discover it by timeout.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chunnels/ordered_mcast.hpp"
#include "control/partition_map.hpp"
#include "control/replica.hpp"
#include "core/discovery.hpp"

namespace bertha {

class ClusterDiscovery final : public DiscoveryClient {
 public:
  struct Config {
    // partitions[i] = the rpc addresses of partition i's replicas.
    std::vector<std::vector<Addr>> partitions;
    std::shared_ptr<TransportFactory> transports;
    std::string host_id;  // client bind identity (mem/sim channels)
    RemoteDiscovery::Options rpc;  // per-partition client options
  };

  static Result<std::shared_ptr<ClusterDiscovery>> connect(Config cfg);
  ~ClusterDiscovery() override;

  Result<void> register_impl(const ImplInfo& info) override;
  Result<void> unregister_impl(const std::string& type,
                               const std::string& name) override;
  Result<std::vector<ImplInfo>> query(const std::string& type) override;
  Result<uint64_t> acquire(const std::vector<ResourceReq>& reqs) override;
  Result<void> release(uint64_t alloc_id) override;
  Result<void> set_pool(const std::string& pool, uint64_t capacity) override;
  // Non-empty filter: the partition owning that type serves the stream
  // directly (seq-resumable across that partition's replicas). Empty
  // filter: one fan-in watcher over every partition, re-sequenced
  // locally (the merged stream has its own seq domain).
  Result<WatcherPtr> watch(const std::string& type_filter) override;
  bool degraded() const override;

  const PartitionMap& partition_map() const { return map_; }
  // The per-partition client (diagnostics/tests).
  RemoteDiscovery& partition_client(size_t i) { return *clients_[i]; }
  size_t partitions() const { return clients_.size(); }
  // Total replica failovers across all partition clients.
  size_t server_failovers() const;

 private:
  explicit ClusterDiscovery(size_t partitions) : map_(partitions) {}
  void fan_in_loop(WatcherPtr upstream, WatcherPtr out);

  PartitionMap map_;
  std::vector<std::shared_ptr<RemoteDiscovery>> clients_;

  // Fan-in watch plumbing (empty-filter watches only).
  std::mutex fan_mu_;
  std::atomic<uint64_t> fan_seq_{0};
  std::vector<WatcherPtr> fan_upstreams_;
  std::vector<WatcherPtr> fan_outs_;
  std::vector<std::thread> fan_threads_;
  std::atomic<bool> stopping_{false};
};

// The full control plane, dogfooded on Bertha's own stacks: ordered
// multicast for replication, the shard hash for partitioning, the
// discovery server/client protocol for RPCs and watch push.
class DiscoveryCluster {
 public:
  struct Config {
    size_t partitions = 2;
    size_t replicas = 3;
    std::shared_ptr<TransportFactory> transports;
    // Mem-channel prefix: partition p replica r binds
    // mem://<prefix>-p<p>-r<r>:{1,2} (rpc, member); the sequencer binds
    // mem://<prefix>-p<p>-seq:1.
    std::string prefix = "ctrl";
    // Template for every replica (replica_id / partition_index /
    // sequencer are filled per replica).
    DiscoveryReplicaOptions replica;
    // Sequencer retransmit log (gap recovery window).
    size_t sequencer_window = 4096;
    // Optional wrapper applied to every bound transport; `role` is
    // "p<p>-r<r>-rpc", "p<p>-r<r>-member" or "p<p>-seq" so a test can
    // fault-inject one replica and leave the rest clean.
    std::function<TransportPtr(TransportPtr, const std::string& role)> decorate;
  };

  static Result<std::unique_ptr<DiscoveryCluster>> start(Config cfg);
  ~DiscoveryCluster();

  size_t partitions() const { return rpc_addrs_.size(); }
  size_t replicas() const { return cfg_.replicas; }
  // Stable rpc address list of one partition (survives replica death —
  // a restarted replica would rebind the same channel).
  const std::vector<Addr>& partition_servers(size_t p) const {
    return rpc_addrs_[p];
  }
  std::vector<std::vector<Addr>> all_servers() const { return rpc_addrs_; }

  // Hard-kills one replica: transports close, in-flight RPCs time out,
  // clients rotate. Idempotent.
  void kill_replica(size_t p, size_t r);
  bool alive(size_t p, size_t r) const;
  // nullptr after kill_replica.
  DiscoveryReplica* replica(size_t p, size_t r) { return replicas_[p][r].get(); }
  SoftwareSequencer& sequencer(size_t p) { return *sequencers_[p]; }

  // A routing client over this cluster. `host_id` must be unique per
  // client (mem bind channel + lease identity namespace).
  Result<std::shared_ptr<ClusterDiscovery>> client(
      const std::string& host_id, RemoteDiscovery::Options rpc = {});

  void stop();

 private:
  explicit DiscoveryCluster(Config cfg) : cfg_(std::move(cfg)) {}
  Result<TransportPtr> bind(const Addr& addr, const std::string& role);

  Config cfg_;
  std::vector<std::vector<Addr>> rpc_addrs_;
  std::vector<std::unique_ptr<SoftwareSequencer>> sequencers_;
  std::vector<std::vector<std::unique_ptr<DiscoveryReplica>>> replicas_;
};

}  // namespace bertha
