#include "control/reshard.hpp"

#include <set>

#include "chunnels/ordered_mcast.hpp"
#include "util/log.hpp"

namespace bertha {

namespace {
std::vector<uint32_t> identity(uint64_t modulo) {
  std::vector<uint32_t> home(static_cast<size_t>(modulo));
  for (size_t i = 0; i < home.size(); i++) home[i] = static_cast<uint32_t>(i);
  return home;
}
}  // namespace

Result<std::unique_ptr<ReshardCoordinator>> ReshardCoordinator::create(
    DiscoveryCluster& cluster, ReshardOptions opts) {
  auto rc = std::unique_ptr<ReshardCoordinator>(
      new ReshardCoordinator(cluster, std::move(opts)));
  // One bus for acks and snapshot payloads, bound like any client of the
  // cluster's transport family.
  Addr seed = cluster.partition_servers(0).at(0);
  BERTHA_TRY_ASSIGN(bus, cluster.transports()->bind(client_bind_for(
                             seed, cluster.prefix() + "-reshard-coord")));
  rc->bus_ = std::move(bus);
  rc->bus_uri_ = rc->bus_->local_addr().to_string();
  return rc;
}

std::vector<std::string> ReshardCoordinator::rpc_uris(size_t partition) const {
  std::vector<std::string> uris;
  for (const auto& a : cluster_.partition_servers(partition))
    uris.push_back(a.to_string());
  return uris;
}

Result<void> ReshardCoordinator::phase_op(size_t partition, ReshardOp rop) {
  rop.cmd_id = ++cmd_seq_;
  rop.reply_uri = bus_uri_;

  CtrlOp op;
  op.kind = CtrlOpKind::reshard;
  op.origin = "reshard-coord";
  op.submit_id = rop.cmd_id;
  op.time_ns = now().time_since_epoch().count();
  op.req = encode_reshard_op(rop);
  Bytes frame = mcast_frame(bus_->local_addr(), encode_ctrl_op(op));

  std::vector<Addr> seqs = cluster_.sequencer_addrs(partition);
  if (seqs.empty()) return err(Errc::internal, "partition has no sequencer");
  size_t majority = cluster_.replicas(partition) / 2 + 1;
  std::set<std::string> acked;
  for (size_t attempt = 0; attempt < opts_.attempts; attempt++) {
    // Rotate across sequencer candidates: a dead or standby candidate
    // just costs one silent attempt. Re-sends are idempotent — the op
    // keeps its origin#submit identity, so replicas that already applied
    // it only re-ack.
    (void)bus_->send_to(seqs[attempt % seqs.size()], frame);
    Deadline dl = Deadline::after(opts_.ack_timeout);
    while (!dl.expired()) {
      auto pkt = bus_->recv(dl);
      if (!pkt.ok()) break;
      auto kind = peek_ctrl_frame(pkt.value().payload);
      if (!kind.ok() || kind.value() != CtrlFrameKind::reshard_ack) continue;
      auto ack = decode_reshard_ack(pkt.value().payload);
      if (!ack.ok() || ack.value().cmd_id != rop.cmd_id) continue;
      acked.insert(ack.value().from);
      if (acked.size() >= majority) return ok();
    }
  }
  return err(Errc::unavailable,
             "reshard phase op not acked by a majority of partition " +
                 std::to_string(partition));
}

Result<Bytes> ReshardCoordinator::fetch_payload(size_t partition,
                                                uint64_t modulo,
                                                uint64_t range) {
  ReshardSnapshotReq req;
  req.modulo = modulo;
  req.range = range;
  req.reply_uri = bus_uri_;
  Bytes frame = encode_reshard_snapshot_req(req);
  std::vector<Addr> members = cluster_.partition_members(partition);
  for (size_t attempt = 0; attempt < opts_.attempts; attempt++) {
    // Any fenced replica can serve the payload: it is a deterministic
    // function of the apply point, identical on all of them.
    (void)bus_->send_to(members[attempt % members.size()], frame);
    Deadline dl = Deadline::after(opts_.ack_timeout);
    while (!dl.expired()) {
      auto pkt = bus_->recv(dl);
      if (!pkt.ok()) break;
      auto kind = peek_ctrl_frame(pkt.value().payload);
      if (!kind.ok() || kind.value() != CtrlFrameKind::reshard_snapshot_rsp)
        continue;
      auto rsp = decode_reshard_snapshot_rsp(pkt.value().payload);
      if (!rsp.ok() || rsp.value().range != range) continue;
      return std::move(rsp).value().payload;
    }
  }
  return err(Errc::unavailable, "no replica served the fenced payload");
}

Result<void> ReshardCoordinator::run(const char* what, uint64_t modulo,
                                     std::vector<uint32_t> home, size_t active,
                                     const std::vector<Move>& moves,
                                     bool retire_sources) {
  Span span = trace_span(opts_.tracer, std::string("ctrl.reshard.") + what);
  span.tag_u64("moves", moves.size());
  span.tag_u64("modulo", modulo);
  uint64_t ep = cluster_.membership().epoch + 1;

  // Per range: fence at the source, pull the fenced cut, install it at
  // the destination. The range stays answerable throughout — reads from
  // the source's frozen state, mutations as transient retries.
  for (const auto& mv : moves) {
    Span rspan = trace_span(opts_.tracer, "ctrl.reshard.range");
    rspan.tag_u64("range", mv.range);
    rspan.tag_u64("from", mv.from);
    rspan.tag_u64("to", mv.to);
    ReshardOp fence;
    fence.phase = ReshardPhase::fence;
    fence.epoch = ep;
    fence.modulo = modulo;
    fence.range = mv.range;
    fence.from_partition = static_cast<uint32_t>(mv.from);
    fence.to_partition = static_cast<uint32_t>(mv.to);
    fence.dst_rpc = rpc_uris(mv.to);
    BERTHA_TRY(phase_op(mv.from, fence));

    BERTHA_TRY_ASSIGN(payload, fetch_payload(mv.from, modulo, mv.range));

    ReshardOp install = fence;
    install.phase = ReshardPhase::install;
    install.payload = std::move(payload);
    BERTHA_TRY(phase_op(mv.to, install));
  }

  // Publish the new steering BEFORE cutover: registered clients re-home
  // now, so the moment the sources start forwarding, almost nobody needs
  // the forward path — it is the stale-client safety net.
  cluster_.set_steering(modulo, std::move(home), active);
  size_t adopted = cluster_.push_membership();
  span.tag_u64("clients_resteered", adopted);

  for (const auto& mv : moves) {
    ReshardOp cut;
    cut.phase = ReshardPhase::cutover;
    cut.epoch = ep;
    cut.modulo = modulo;
    cut.range = mv.range;
    cut.from_partition = static_cast<uint32_t>(mv.from);
    cut.to_partition = static_cast<uint32_t>(mv.to);
    cut.dst_rpc = rpc_uris(mv.to);
    BERTHA_TRY(phase_op(mv.from, cut));
  }

  if (retire_sources) {
    sleep_for(opts_.drain);
    std::set<size_t> sources;
    for (const auto& mv : moves) {
      ReshardOp retire;
      retire.phase = ReshardPhase::retire;
      retire.epoch = ep;
      retire.modulo = modulo;
      retire.range = mv.range;
      retire.from_partition = static_cast<uint32_t>(mv.from);
      retire.to_partition = static_cast<uint32_t>(mv.to);
      BERTHA_TRY(phase_op(mv.from, retire));
      sources.insert(mv.from);
    }
    for (size_t p : sources) cluster_.retire_partition(p);
  }
  BLOG(info, "control") << "reshard " << what << " complete: modulo "
                        << modulo << ", " << moves.size() << " ranges, epoch "
                        << ep;
  return ok();
}

Result<void> ReshardCoordinator::split() {
  ClusterMembership m = cluster_.membership();
  size_t active = m.partitions.size();
  uint64_t modulo = m.modulo ? m.modulo : active;
  std::vector<uint32_t> home =
      m.home.empty() ? identity(modulo) : m.home;

  bool aliased = false;
  for (size_t q = 0; q < home.size(); q++) aliased |= home[q] != q;

  std::vector<Move> moves;
  if (!aliased) {
    // Identity steering: double the modulo, bucket q in [N, 2N) forks
    // off partition q % N onto a brand-new partition q.
    uint64_t new_modulo = modulo * 2;
    for (uint64_t q = modulo; q < new_modulo; q++) {
      if (q < cluster_.partitions()) {
        BERTHA_TRY(cluster_.revive_partition(static_cast<size_t>(q)));
      } else {
        BERTHA_TRY_ASSIGN(p, cluster_.prepare_partition());
        if (p != q)
          return err(Errc::internal, "partition slots out of order");
      }
      moves.push_back({q, static_cast<size_t>(home[q % modulo]),
                       static_cast<size_t>(q)});
    }
    return run("split", new_modulo, identity(new_modulo),
               static_cast<size_t>(new_modulo), moves,
               /*retire_sources=*/false);
  }
  // Aliased steering (a previous merge): de-alias by reviving partition
  // q for every bucket steered elsewhere and moving the bucket home.
  // The modulo is already wide enough; it never shrinks.
  for (uint64_t q = 0; q < home.size(); q++) {
    if (home[q] == q) continue;
    if (q < cluster_.partitions()) {
      BERTHA_TRY(cluster_.revive_partition(static_cast<size_t>(q)));
    } else {
      BERTHA_TRY_ASSIGN(p, cluster_.prepare_partition());
      if (p != q) return err(Errc::internal, "partition slots out of order");
    }
    moves.push_back({q, static_cast<size_t>(home[q]), static_cast<size_t>(q)});
  }
  if (moves.empty()) return err(Errc::invalid_argument, "nothing to split");
  return run("split", modulo, identity(modulo), static_cast<size_t>(modulo),
             moves, /*retire_sources=*/false);
}

Result<void> ReshardCoordinator::merge() {
  ClusterMembership m = cluster_.membership();
  size_t active = m.partitions.size();
  uint64_t modulo = m.modulo ? m.modulo : active;
  std::vector<uint32_t> home = m.home.empty() ? identity(modulo) : m.home;
  if (active < 2 || active % 2 != 0)
    return err(Errc::invalid_argument, "merge needs an even partition count");
  for (size_t q = 0; q < home.size(); q++)
    if (home[q] != q)
      return err(Errc::invalid_argument,
                 "merge requires identity steering (split first)");
  if (modulo != active)
    return err(Errc::invalid_argument, "steering modulo != active count");

  // Bucket q in the upper half folds into partition q - A/2. The modulo
  // stays: home becomes the aliased identity, so ids minted under
  // namespace q keep routing and namespaces >= modulo stay garbage.
  size_t half = active / 2;
  std::vector<Move> moves;
  std::vector<uint32_t> new_home(home.size());
  for (size_t q = 0; q < home.size(); q++)
    new_home[q] = static_cast<uint32_t>(q % half);
  for (uint64_t q = half; q < active; q++)
    moves.push_back(
        {q, static_cast<size_t>(q), static_cast<size_t>(q - half)});
  return run("merge", modulo, std::move(new_home), half, moves,
             /*retire_sources=*/true);
}

}  // namespace bertha
