#include "control/cluster.hpp"

#include "util/log.hpp"

namespace bertha {

namespace {
std::vector<uint32_t> identity_home_for(uint64_t modulo) {
  std::vector<uint32_t> home(static_cast<size_t>(modulo));
  for (size_t i = 0; i < home.size(); i++) home[i] = static_cast<uint32_t>(i);
  return home;
}
}  // namespace

// --- ClusterDiscovery ---

Result<std::shared_ptr<ClusterDiscovery>> ClusterDiscovery::connect(
    Config cfg) {
  if (cfg.partitions.empty())
    return err(Errc::invalid_argument, "cluster client needs partitions");
  if (!cfg.transports)
    return err(Errc::invalid_argument, "cluster client needs a factory");
  for (const auto& servers : cfg.partitions)
    if (servers.empty())
      return err(Errc::invalid_argument, "partition with no replicas");

  auto cd = std::shared_ptr<ClusterDiscovery>(
      new ClusterDiscovery(cfg.partitions.size()));
  cd->cfg_ = std::move(cfg);
  for (const auto& servers : cd->cfg_.partitions) {
    BERTHA_TRY_ASSIGN(c, cd->connect_partition(servers));
    cd->clients_.push_back(std::move(c));
  }
  return cd;
}

Result<std::shared_ptr<RemoteDiscovery>> ClusterDiscovery::connect_partition(
    const std::vector<Addr>& servers) const {
  // One client transport and one failover RemoteDiscovery per partition.
  // Each per-partition client owns its own client_id, leases and
  // heartbeats, so lease state lives exactly where the leased
  // registrations do.
  BERTHA_TRY_ASSIGN(
      t, cfg_.transports->bind(client_bind_for(servers[0], cfg_.host_id)));
  return std::make_shared<RemoteDiscovery>(std::move(t), servers, cfg_.rpc);
}

std::shared_ptr<RemoteDiscovery> ClusterDiscovery::client_for(
    size_t idx) const {
  std::lock_guard<std::mutex> lk(cl_mu_);
  return idx < clients_.size() ? clients_[idx] : nullptr;
}

size_t ClusterDiscovery::partitions() const {
  std::lock_guard<std::mutex> lk(cl_mu_);
  return clients_.size();
}

ClusterDiscovery::~ClusterDiscovery() {
  stopping_.store(true);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(fan_mu_);
    for (auto& [idx, w] : fan_upstreams_) w->cancel();
    for (auto& w : fan_outs_) w->cancel();
    threads.swap(fan_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
}

Result<void> ClusterDiscovery::register_impl(const ImplInfo& info) {
  auto c = client_for(map_.index_for_type(info.type));
  if (!c) return err(Errc::unavailable, "partition client re-steering");
  return c->register_impl(info);
}

Result<void> ClusterDiscovery::unregister_impl(const std::string& type,
                                               const std::string& name) {
  auto c = client_for(map_.index_for_type(type));
  if (!c) return err(Errc::unavailable, "partition client re-steering");
  return c->unregister_impl(type, name);
}

Result<std::vector<ImplInfo>> ClusterDiscovery::query(const std::string& type) {
  auto c = client_for(map_.index_for_type(type));
  if (!c) return err(Errc::unavailable, "partition client re-steering");
  return c->query(type);
}

Result<uint64_t> ClusterDiscovery::acquire(
    const std::vector<ResourceReq>& reqs) {
  if (reqs.empty()) return err(Errc::invalid_argument, "empty acquire");
  size_t idx = map_.index_for_pool(reqs[0].pool);
  for (const auto& r : reqs)
    if (map_.index_for_pool(r.pool) != idx)
      // Admission is atomic only within a partition; co-locate pools
      // that must be acquired together (same hash bucket) or acquire
      // them separately with caller-side rollback.
      return err(Errc::invalid_argument,
                 "acquire spans partitions: " + reqs[0].pool + " vs " + r.pool);
  auto c = client_for(idx);
  if (!c) return err(Errc::unavailable, "partition client re-steering");
  return c->acquire(reqs);
}

Result<void> ClusterDiscovery::release(uint64_t alloc_id) {
  // Ids are namespaced by the partition that minted them; the namespace
  // is a steering bucket, so a split/merge re-homes release routing
  // exactly like the catalogue (the old home forwards one hop for
  // clients whose map is still a stale epoch).
  BERTHA_TRY_ASSIGN(idx, map_.index_for_alloc_routed(alloc_id));
  auto c = client_for(idx);
  if (!c) return err(Errc::unavailable, "partition client re-steering");
  return c->release(alloc_id);
}

Result<void> ClusterDiscovery::set_pool(const std::string& pool,
                                        uint64_t capacity) {
  auto c = client_for(map_.index_for_pool(pool));
  if (!c) return err(Errc::unavailable, "partition client re-steering");
  return c->set_pool(pool, capacity);
}

Result<WatcherPtr> ClusterDiscovery::watch(const std::string& type_filter) {
  if (!type_filter.empty()) {
    auto c = client_for(map_.index_for_type(type_filter));
    if (!c) return err(Errc::unavailable, "partition client re-steering");
    return c->watch(type_filter);
  }
  // Catalogue-wide: fan in one stream per partition. The merged stream
  // is its own seq domain (per-partition seqs are incomparable), so
  // events are re-stamped from a local counter; per-partition order is
  // preserved because each upstream has exactly one forwarder.
  auto out = std::make_shared<DiscoveryWatcher>("");
  std::vector<std::pair<size_t, std::shared_ptr<RemoteDiscovery>>> cs;
  {
    std::lock_guard<std::mutex> lk(cl_mu_);
    for (size_t i = 0; i < clients_.size(); i++) cs.emplace_back(i, clients_[i]);
  }
  std::vector<std::pair<size_t, WatcherPtr>> ups;
  for (auto& [i, c] : cs) {
    BERTHA_TRY_ASSIGN(w, c->watch(""));
    ups.emplace_back(i, std::move(w));
  }
  std::lock_guard<std::mutex> lk(fan_mu_);
  for (auto& [i, w] : ups) {
    fan_upstreams_.emplace_back(i, w);
    fan_threads_.emplace_back([this, w, out] { fan_in_loop(w, out); });
  }
  fan_outs_.push_back(out);
  return out;
}

void ClusterDiscovery::fan_in_loop(WatcherPtr upstream, WatcherPtr out) {
  // Poll-with-deadline so cancellation of the *output* watcher (which
  // this thread cannot block on) is noticed promptly.
  while (!stopping_.load() && !out->cancelled()) {
    auto batch = upstream->next_batch(Deadline::after(ms(50)));
    if (!batch.ok()) {
      if (batch.error().code == Errc::timed_out) continue;
      break;  // upstream cancelled (client shutdown or partition retired)
    }
    std::vector<WatchEvent> evs = std::move(batch).value();
    for (auto& ev : evs) ev.seq = fan_seq_.fetch_add(1) + 1;
    out->deliver_batch(std::move(evs));
  }
  upstream->cancel();
}

bool ClusterDiscovery::degraded() const {
  std::vector<std::shared_ptr<RemoteDiscovery>> cs;
  {
    std::lock_guard<std::mutex> lk(cl_mu_);
    cs = clients_;
  }
  for (const auto& c : cs)
    if (c->degraded()) return true;
  return false;
}

Result<void> ClusterDiscovery::apply_membership(const ClusterMembership& m) {
  BERTHA_TRY(map_.apply(m));
  // The epoch and steering are recorded; steer every partition client at
  // its new replica list (no-op for a client already on a member
  // server), connect clients for partitions a split added and drop the
  // ones a merge retired. Dropped clients are destroyed outside cl_mu_
  // (their reader threads join in the destructor).
  std::vector<std::shared_ptr<RemoteDiscovery>> dropped;
  std::vector<std::pair<size_t, std::shared_ptr<RemoteDiscovery>>> grown;
  {
    std::lock_guard<std::mutex> lk(cl_mu_);
    for (size_t i = 0; i < clients_.size() && i < m.partitions.size(); i++)
      clients_[i]->update_servers(m.partitions[i]);
    while (clients_.size() > m.partitions.size()) {
      dropped.push_back(std::move(clients_.back()));
      clients_.pop_back();
    }
    while (clients_.size() < m.partitions.size()) {
      size_t idx = clients_.size();
      BERTHA_TRY_ASSIGN(c, connect_partition(m.partitions[idx]));
      clients_.push_back(c);
      grown.emplace_back(idx, std::move(c));
    }
  }
  {
    std::lock_guard<std::mutex> lk(fan_mu_);
    // Merge: cancel the retired partitions' upstream streams (their
    // forwarder threads exit on the cancel).
    size_t live = 0;
    for (auto& [idx, w] : fan_upstreams_) {
      if (idx >= m.partitions.size())
        w->cancel();
      else
        fan_upstreams_[live++] = {idx, w};
    }
    fan_upstreams_.resize(live);
    // Split: every active fan-in watch subscribes to each new
    // partition. A fresh subscribe starts with a snapshot batch, so the
    // out stream sees the new home's full catalogue — duplicates of
    // events already fanned in are idempotent for catalogue consumers.
    for (auto& [idx, c] : grown) {
      for (auto& out : fan_outs_) {
        auto w_r = c->watch("");
        if (!w_r.ok()) continue;
        WatcherPtr w = std::move(w_r).value();
        fan_upstreams_.emplace_back(idx, w);
        fan_threads_.emplace_back([this, w, out] { fan_in_loop(w, out); });
      }
    }
  }
  return ok();
}

size_t ClusterDiscovery::server_failovers() const {
  std::vector<std::shared_ptr<RemoteDiscovery>> cs;
  {
    std::lock_guard<std::mutex> lk(cl_mu_);
    cs = clients_;
  }
  size_t n = 0;
  for (const auto& c : cs) n += c->server_failovers();
  return n;
}

// --- DiscoveryCluster ---

std::string DiscoveryCluster::replica_name(size_t p, size_t r) const {
  return cfg_.prefix + "-p" + std::to_string(p) + "-r" + std::to_string(r);
}

DiscoveryReplicaOptions DiscoveryCluster::replica_opts(size_t p,
                                                       size_t r) const {
  DiscoveryReplicaOptions opts = cfg_.replica;
  opts.replica_id = replica_name(p, r);
  opts.partition_index = p;
  opts.sequencers = seq_addrs_[p];
  opts.sequencer = seq_addrs_[p][0];
  opts.peers.clear();
  for (size_t i = 0; i < member_addrs_[p].size(); i++)
    if (i != r) opts.peers.push_back(member_addrs_[p][i]);
  opts.catchup_timeout = cfg_.tuning.catchup_timeout;
  opts.view_ack_timeout = cfg_.tuning.view_ack_timeout;
  opts.view_silence_timeout = cfg_.sequencer_candidates > 1
                                  ? cfg_.tuning.view_silence_timeout
                                  : Duration::zero();
  // Lazy-bound one-shot channel for forwarding resharded requests to
  // their new home (decorated like everything else, so fault injection
  // applies to the forward hop too).
  std::string fwd = replica_name(p, r) + "-fwd";
  opts.forward_bind = [this, fwd]() { return bind(Addr::mem(fwd, 1), fwd); };
  return opts;
}

Result<void> DiscoveryCluster::start_partition(size_t p) {
  const Config& c = cfg_;
  std::string pp = c.prefix + "-p" + std::to_string(p);

  // Bind every replica's transports first: the sequencers need the
  // member list up front.
  std::vector<TransportPtr> rpcs, members;
  std::vector<Addr> member_addrs, rpc_addrs;
  for (size_t r = 0; r < c.replicas; r++) {
    std::string rr = replica_name(p, r);
    BERTHA_TRY_ASSIGN(rpc_t, bind(Addr::mem(rr, 1), rr + "-rpc"));
    BERTHA_TRY_ASSIGN(mem_t, bind(Addr::mem(rr, 2), rr + "-member"));
    rpc_addrs.push_back(rpc_t->local_addr());
    member_addrs.push_back(mem_t->local_addr());
    rpcs.push_back(std::move(rpc_t));
    members.push_back(std::move(mem_t));
  }

  // Sequencer candidates: candidate 0 starts active in view 0, the
  // rest stand by until a view-start frame elects them.
  std::vector<std::unique_ptr<SoftwareSequencer>> cands;
  std::vector<Addr> seq_addrs;
  for (size_t s = 0; s < c.sequencer_candidates; s++) {
    std::string chan = s == 0 ? pp + "-seq" : pp + "-seq" + std::to_string(s);
    BERTHA_TRY_ASSIGN(seq_t, bind(Addr::mem(chan, 1), chan));
    std::shared_ptr<Transport> seq_shared(std::move(seq_t));
    BERTHA_TRY_ASSIGN(
        seq, SoftwareSequencer::start_with(seq_shared, member_addrs,
                                           c.tuning.sequencer_resend_log,
                                           /*view=*/0, /*standby=*/s != 0));
    seq_addrs.push_back(seq->addr());
    cands.push_back(std::move(seq));
  }
  sequencers_.push_back(std::move(cands));
  seq_addrs_.push_back(std::move(seq_addrs));
  {
    std::lock_guard<std::mutex> lk(mu_);
    member_addrs_.push_back(std::move(member_addrs));
    rpc_addrs_.push_back(std::move(rpc_addrs));
  }

  std::vector<std::unique_ptr<DiscoveryReplica>> group;
  for (size_t r = 0; r < c.replicas; r++) {
    BERTHA_TRY_ASSIGN(rep,
                      DiscoveryReplica::start(std::move(rpcs[r]),
                                              std::move(members[r]),
                                              replica_opts(p, r)));
    group.push_back(std::move(rep));
  }
  replicas_.push_back(std::move(group));
  return ok();
}

Result<std::unique_ptr<DiscoveryCluster>> DiscoveryCluster::start(Config cfg) {
  if (!cfg.transports)
    return err(Errc::invalid_argument, "cluster needs a transport factory");
  if (cfg.partitions == 0 || cfg.replicas == 0)
    return err(Errc::invalid_argument, "cluster needs partitions and replicas");
  if (cfg.sequencer_candidates == 0) cfg.sequencer_candidates = 1;

  auto cluster = std::unique_ptr<DiscoveryCluster>(
      new DiscoveryCluster(std::move(cfg)));
  const Config& c = cluster->cfg_;

  // Reserved so prepare_partition's push_back never reallocates the
  // outer vectors under a concurrent accessor.
  constexpr size_t kMaxPartitions = 64;
  cluster->sequencers_.reserve(kMaxPartitions);
  cluster->seq_addrs_.reserve(kMaxPartitions);
  cluster->member_addrs_.reserve(kMaxPartitions);
  cluster->rpc_addrs_.reserve(kMaxPartitions);
  cluster->replicas_.reserve(kMaxPartitions);

  for (size_t p = 0; p < c.partitions; p++)
    BERTHA_TRY(cluster->start_partition(p));
  cluster->epoch_ = 1;
  cluster->modulo_ = c.partitions;
  cluster->home_ = identity_home_for(c.partitions);
  cluster->active_ = c.partitions;
  return cluster;
}

Result<TransportPtr> DiscoveryCluster::bind(const Addr& addr,
                                            const std::string& role) const {
  BERTHA_TRY_ASSIGN(t, cfg_.transports->bind(addr));
  if (cfg_.decorate) {
    t = cfg_.decorate(std::move(t), role);
    if (!t) return err(Errc::internal, "decorate hook returned null");
  }
  return t;
}

DiscoveryCluster::~DiscoveryCluster() { stop(); }

void DiscoveryCluster::stop() {
  // Replicas first (they propose into the sequencers), then sequencers.
  replicas_.clear();
  sequencers_.clear();
}

std::vector<Addr> DiscoveryCluster::partition_servers(size_t p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return rpc_addrs_[p];
}

std::vector<std::vector<Addr>> DiscoveryCluster::all_servers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rpc_addrs_;
}

std::vector<Addr> DiscoveryCluster::partition_members(size_t p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return member_addrs_[p];
}

std::vector<Addr> DiscoveryCluster::sequencer_addrs(size_t p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_addrs_[p];
}

size_t DiscoveryCluster::active_partitions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

ClusterMembership DiscoveryCluster::membership() const {
  std::lock_guard<std::mutex> lk(mu_);
  ClusterMembership m;
  m.epoch = epoch_;
  m.partitions.assign(rpc_addrs_.begin(),
                      rpc_addrs_.begin() + static_cast<long>(active_));
  m.modulo = modulo_;
  m.home = home_;
  return m;
}

void DiscoveryCluster::kill_replica(size_t p, size_t r) {
  if (p >= replicas_.size() || r >= replicas_[p].size()) return;
  replicas_[p][r].reset();
}

bool DiscoveryCluster::alive(size_t p, size_t r) const {
  return p < replicas_.size() && r < replicas_[p].size() &&
         replicas_[p][r] != nullptr;
}

Result<void> DiscoveryCluster::restart_replica(size_t p, size_t r) {
  if (p >= replicas_.size() || r >= replicas_[p].size())
    return err(Errc::invalid_argument, "no such replica");
  if (replicas_[p][r])
    return err(Errc::already_exists, "replica still alive (kill it first)");
  std::string rr = replica_name(p, r);
  BERTHA_TRY_ASSIGN(rpc_t, bind(Addr::mem(rr, 1), rr + "-rpc"));
  BERTHA_TRY_ASSIGN(mem_t, bind(Addr::mem(rr, 2), rr + "-member"));
  DiscoveryReplicaOptions opts = replica_opts(p, r);
  // Catch up from the surviving peers; a lone replica has nobody to ask
  // and boots empty instead.
  opts.catch_up = !opts.peers.empty();
  BERTHA_TRY_ASSIGN(rep, DiscoveryReplica::start(std::move(rpc_t),
                                                 std::move(mem_t),
                                                 std::move(opts)));
  replicas_[p][r] = std::move(rep);
  return ok();
}

Result<size_t> DiscoveryCluster::add_replica(size_t p) {
  if (p >= replicas_.size())
    return err(Errc::invalid_argument, "no such partition");
  size_t r = replicas_[p].size();
  std::string rr = replica_name(p, r);
  BERTHA_TRY_ASSIGN(rpc_t, bind(Addr::mem(rr, 1), rr + "-rpc"));
  BERTHA_TRY_ASSIGN(mem_t, bind(Addr::mem(rr, 2), rr + "-member"));
  Addr rpc_addr = rpc_t->local_addr();
  Addr mem_addr = mem_t->local_addr();
  {
    std::lock_guard<std::mutex> lk(mu_);
    member_addrs_[p].push_back(mem_addr);
  }
  DiscoveryReplicaOptions opts = replica_opts(p, r);
  opts.catch_up = true;
  auto rep_r = DiscoveryReplica::start(std::move(rpc_t), std::move(mem_t),
                                       std::move(opts));
  if (!rep_r.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    member_addrs_[p].pop_back();
    return rep_r.error();
  }
  replicas_[p].push_back(std::move(rep_r).value());
  // Steer the partition's live sequencers at the widened member list so
  // the joiner receives the multicast stream, then publish the config.
  std::vector<Addr> members;
  {
    std::lock_guard<std::mutex> lk(mu_);
    members = member_addrs_[p];
  }
  for (auto& s : sequencers_[p])
    if (s) s->update_members(members);
  {
    std::lock_guard<std::mutex> lk(mu_);
    rpc_addrs_[p].push_back(rpc_addr);
    epoch_++;
  }
  return r;
}

Result<size_t> DiscoveryCluster::prepare_partition() {
  size_t p = replicas_.size();
  if (p >= 64) return err(Errc::resource_exhausted, "partition slots");
  BERTHA_TRY(start_partition(p));
  return p;
}

Result<void> DiscoveryCluster::revive_partition(size_t p) {
  if (p >= replicas_.size())
    return err(Errc::invalid_argument, "no such partition");
  for (const auto& rep : replicas_[p])
    if (rep) return err(Errc::already_exists, "partition not retired");
  std::string pp = cfg_.prefix + "-p" + std::to_string(p);
  std::vector<Addr> members = partition_members(p);
  for (size_t s = 0; s < sequencers_[p].size(); s++) {
    std::string chan = s == 0 ? pp + "-seq" : pp + "-seq" + std::to_string(s);
    BERTHA_TRY_ASSIGN(seq_t, bind(Addr::mem(chan, 1), chan));
    std::shared_ptr<Transport> seq_shared(std::move(seq_t));
    BERTHA_TRY_ASSIGN(
        seq, SoftwareSequencer::start_with(seq_shared, members,
                                           cfg_.tuning.sequencer_resend_log,
                                           /*view=*/0, /*standby=*/s != 0));
    sequencers_[p][s] = std::move(seq);
  }
  for (size_t r = 0; r < replicas_[p].size(); r++) {
    std::string rr = replica_name(p, r);
    BERTHA_TRY_ASSIGN(rpc_t, bind(Addr::mem(rr, 1), rr + "-rpc"));
    BERTHA_TRY_ASSIGN(mem_t, bind(Addr::mem(rr, 2), rr + "-member"));
    // Fresh boot, no catch-up: the revived slot has no peers with state;
    // it is about to receive a reshard install.
    BERTHA_TRY_ASSIGN(rep, DiscoveryReplica::start(std::move(rpc_t),
                                                   std::move(mem_t),
                                                   replica_opts(p, r)));
    replicas_[p][r] = std::move(rep);
  }
  return ok();
}

void DiscoveryCluster::retire_partition(size_t p) {
  if (p >= replicas_.size()) return;
  for (auto& rep : replicas_[p]) rep.reset();
  for (auto& s : sequencers_[p]) s.reset();
}

uint64_t DiscoveryCluster::set_steering(uint64_t modulo,
                                        std::vector<uint32_t> home,
                                        size_t active) {
  std::lock_guard<std::mutex> lk(mu_);
  modulo_ = modulo;
  home_ = std::move(home);
  active_ = active;
  return ++epoch_;
}

size_t DiscoveryCluster::push_membership() {
  ClusterMembership m = membership();
  std::vector<std::shared_ptr<ClusterDiscovery>> clients;
  {
    std::lock_guard<std::mutex> lk(mu_);
    size_t live = 0;
    for (auto& w : client_registry_) {
      auto sp = w.lock();
      if (!sp) continue;
      client_registry_[live++] = w;
      clients.push_back(std::move(sp));
    }
    client_registry_.resize(live);
  }
  size_t adopted = 0;
  for (auto& c : clients)
    if (c->apply_membership(m).ok()) adopted++;
  return adopted;
}

void DiscoveryCluster::kill_sequencer(size_t p, size_t c) {
  if (p >= sequencers_.size() || c >= sequencers_[p].size()) return;
  sequencers_[p][c].reset();
}

bool DiscoveryCluster::sequencer_alive(size_t p, size_t c) const {
  return p < sequencers_.size() && c < sequencers_[p].size() &&
         sequencers_[p][c] != nullptr;
}

Result<std::shared_ptr<ClusterDiscovery>> DiscoveryCluster::client(
    const std::string& host_id, RemoteDiscovery::Options rpc) {
  ClusterMembership m = membership();
  ClusterDiscovery::Config ccfg;
  ccfg.partitions = m.partitions;
  ccfg.transports = cfg_.transports;
  ccfg.host_id = host_id;
  if (rpc.watchdog_interval <= Duration::zero())
    rpc.watchdog_interval = cfg_.tuning.watchdog_interval;
  ccfg.rpc = std::move(rpc);
  BERTHA_TRY_ASSIGN(cd, ClusterDiscovery::connect(std::move(ccfg)));
  // Adopt the current steering (a fresh map starts at epoch 0 with an
  // identity home, which is wrong after any split/merge), then register
  // for future pushes.
  (void)cd->apply_membership(m);
  {
    std::lock_guard<std::mutex> lk(mu_);
    client_registry_.push_back(cd);
  }
  return cd;
}

}  // namespace bertha
