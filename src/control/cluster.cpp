#include "control/cluster.hpp"

#include "util/log.hpp"

namespace bertha {

// --- ClusterDiscovery ---

Result<std::shared_ptr<ClusterDiscovery>> ClusterDiscovery::connect(
    Config cfg) {
  if (cfg.partitions.empty())
    return err(Errc::invalid_argument, "cluster client needs partitions");
  if (!cfg.transports)
    return err(Errc::invalid_argument, "cluster client needs a factory");
  for (const auto& servers : cfg.partitions)
    if (servers.empty())
      return err(Errc::invalid_argument, "partition with no replicas");

  auto cd = std::shared_ptr<ClusterDiscovery>(
      new ClusterDiscovery(cfg.partitions.size()));
  for (size_t i = 0; i < cfg.partitions.size(); i++) {
    // One client transport and one failover RemoteDiscovery per
    // partition. Each per-partition client owns its own client_id,
    // leases and heartbeats, so lease state lives exactly where the
    // leased registrations do.
    BERTHA_TRY_ASSIGN(
        t, cfg.transports->bind(
               client_bind_for(cfg.partitions[i][0], cfg.host_id)));
    cd->clients_.push_back(std::make_shared<RemoteDiscovery>(
        std::move(t), cfg.partitions[i], cfg.rpc));
  }
  return cd;
}

ClusterDiscovery::~ClusterDiscovery() {
  stopping_.store(true);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(fan_mu_);
    for (auto& w : fan_upstreams_) w->cancel();
    for (auto& w : fan_outs_) w->cancel();
    threads.swap(fan_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
}

Result<void> ClusterDiscovery::register_impl(const ImplInfo& info) {
  return clients_[map_.index_for_type(info.type)]->register_impl(info);
}

Result<void> ClusterDiscovery::unregister_impl(const std::string& type,
                                               const std::string& name) {
  return clients_[map_.index_for_type(type)]->unregister_impl(type, name);
}

Result<std::vector<ImplInfo>> ClusterDiscovery::query(const std::string& type) {
  return clients_[map_.index_for_type(type)]->query(type);
}

Result<uint64_t> ClusterDiscovery::acquire(
    const std::vector<ResourceReq>& reqs) {
  if (reqs.empty()) return err(Errc::invalid_argument, "empty acquire");
  size_t idx = map_.index_for_pool(reqs[0].pool);
  for (const auto& r : reqs)
    if (map_.index_for_pool(r.pool) != idx)
      // Admission is atomic only within a partition; co-locate pools
      // that must be acquired together (same hash bucket) or acquire
      // them separately with caller-side rollback.
      return err(Errc::invalid_argument,
                 "acquire spans partitions: " + reqs[0].pool + " vs " + r.pool);
  return clients_[idx]->acquire(reqs);
}

Result<void> ClusterDiscovery::release(uint64_t alloc_id) {
  size_t idx = PartitionMap::index_for_alloc(alloc_id);
  if (idx >= clients_.size())
    return err(Errc::invalid_argument, "alloc id names unknown partition");
  return clients_[idx]->release(alloc_id);
}

Result<void> ClusterDiscovery::set_pool(const std::string& pool,
                                        uint64_t capacity) {
  return clients_[map_.index_for_pool(pool)]->set_pool(pool, capacity);
}

Result<WatcherPtr> ClusterDiscovery::watch(const std::string& type_filter) {
  if (!type_filter.empty())
    return clients_[map_.index_for_type(type_filter)]->watch(type_filter);
  // Catalogue-wide: fan in one stream per partition. The merged stream
  // is its own seq domain (per-partition seqs are incomparable), so
  // events are re-stamped from a local counter; per-partition order is
  // preserved because each upstream has exactly one forwarder.
  auto out = std::make_shared<DiscoveryWatcher>("");
  std::vector<WatcherPtr> ups;
  for (auto& c : clients_) {
    BERTHA_TRY_ASSIGN(w, c->watch(""));
    ups.push_back(std::move(w));
  }
  std::lock_guard<std::mutex> lk(fan_mu_);
  for (auto& w : ups) {
    fan_upstreams_.push_back(w);
    fan_threads_.emplace_back(
        [this, w, out] { fan_in_loop(w, out); });
  }
  fan_outs_.push_back(out);
  return out;
}

void ClusterDiscovery::fan_in_loop(WatcherPtr upstream, WatcherPtr out) {
  // Poll-with-deadline so cancellation of the *output* watcher (which
  // this thread cannot block on) is noticed promptly.
  while (!stopping_.load() && !out->cancelled()) {
    auto batch = upstream->next_batch(Deadline::after(ms(50)));
    if (!batch.ok()) {
      if (batch.error().code == Errc::timed_out) continue;
      break;  // upstream cancelled (client shutdown)
    }
    std::vector<WatchEvent> evs = std::move(batch).value();
    for (auto& ev : evs) ev.seq = fan_seq_.fetch_add(1) + 1;
    out->deliver_batch(std::move(evs));
  }
  upstream->cancel();
}

bool ClusterDiscovery::degraded() const {
  for (const auto& c : clients_)
    if (c->degraded()) return true;
  return false;
}

Result<void> ClusterDiscovery::apply_membership(const ClusterMembership& m) {
  BERTHA_TRY(map_.apply(m));
  // The epoch is recorded; steer every partition client at its new
  // replica list (no-op for a client already on a member server).
  for (size_t i = 0; i < clients_.size() && i < m.partitions.size(); i++)
    clients_[i]->update_servers(m.partitions[i]);
  return ok();
}

size_t ClusterDiscovery::server_failovers() const {
  size_t n = 0;
  for (const auto& c : clients_) n += c->server_failovers();
  return n;
}

// --- DiscoveryCluster ---

std::string DiscoveryCluster::replica_name(size_t p, size_t r) const {
  return cfg_.prefix + "-p" + std::to_string(p) + "-r" + std::to_string(r);
}

DiscoveryReplicaOptions DiscoveryCluster::replica_opts(size_t p,
                                                       size_t r) const {
  DiscoveryReplicaOptions opts = cfg_.replica;
  opts.replica_id = replica_name(p, r);
  opts.partition_index = p;
  opts.sequencers = seq_addrs_[p];
  opts.sequencer = seq_addrs_[p][0];
  opts.peers.clear();
  for (size_t i = 0; i < member_addrs_[p].size(); i++)
    if (i != r) opts.peers.push_back(member_addrs_[p][i]);
  opts.catchup_timeout = cfg_.tuning.catchup_timeout;
  opts.view_ack_timeout = cfg_.tuning.view_ack_timeout;
  opts.view_silence_timeout = cfg_.sequencer_candidates > 1
                                  ? cfg_.tuning.view_silence_timeout
                                  : Duration::zero();
  return opts;
}

Result<std::unique_ptr<DiscoveryCluster>> DiscoveryCluster::start(Config cfg) {
  if (!cfg.transports)
    return err(Errc::invalid_argument, "cluster needs a transport factory");
  if (cfg.partitions == 0 || cfg.replicas == 0)
    return err(Errc::invalid_argument, "cluster needs partitions and replicas");
  if (cfg.sequencer_candidates == 0) cfg.sequencer_candidates = 1;

  auto cluster = std::unique_ptr<DiscoveryCluster>(
      new DiscoveryCluster(std::move(cfg)));
  const Config& c = cluster->cfg_;

  for (size_t p = 0; p < c.partitions; p++) {
    std::string pp = c.prefix + "-p" + std::to_string(p);

    // Bind every replica's transports first: the sequencers need the
    // member list up front.
    std::vector<TransportPtr> rpcs, members;
    std::vector<Addr> member_addrs, rpc_addrs;
    for (size_t r = 0; r < c.replicas; r++) {
      std::string rr = cluster->replica_name(p, r);
      BERTHA_TRY_ASSIGN(rpc_t, cluster->bind(Addr::mem(rr, 1), rr + "-rpc"));
      BERTHA_TRY_ASSIGN(mem_t, cluster->bind(Addr::mem(rr, 2), rr + "-member"));
      rpc_addrs.push_back(rpc_t->local_addr());
      member_addrs.push_back(mem_t->local_addr());
      rpcs.push_back(std::move(rpc_t));
      members.push_back(std::move(mem_t));
    }

    // Sequencer candidates: candidate 0 starts active in view 0, the
    // rest stand by until a view-start frame elects them.
    std::vector<std::unique_ptr<SoftwareSequencer>> cands;
    std::vector<Addr> seq_addrs;
    for (size_t s = 0; s < c.sequencer_candidates; s++) {
      std::string chan = s == 0 ? pp + "-seq" : pp + "-seq" + std::to_string(s);
      BERTHA_TRY_ASSIGN(seq_t, cluster->bind(Addr::mem(chan, 1), chan));
      std::shared_ptr<Transport> seq_shared(std::move(seq_t));
      BERTHA_TRY_ASSIGN(
          seq, SoftwareSequencer::start_with(seq_shared, member_addrs,
                                             c.tuning.sequencer_resend_log,
                                             /*view=*/0, /*standby=*/s != 0));
      seq_addrs.push_back(seq->addr());
      cands.push_back(std::move(seq));
    }
    cluster->sequencers_.push_back(std::move(cands));
    cluster->seq_addrs_.push_back(std::move(seq_addrs));
    cluster->member_addrs_.push_back(std::move(member_addrs));
    cluster->rpc_addrs_.push_back(std::move(rpc_addrs));

    std::vector<std::unique_ptr<DiscoveryReplica>> group;
    for (size_t r = 0; r < c.replicas; r++) {
      BERTHA_TRY_ASSIGN(
          rep, DiscoveryReplica::start(std::move(rpcs[r]), std::move(members[r]),
                                       cluster->replica_opts(p, r)));
      group.push_back(std::move(rep));
    }
    cluster->replicas_.push_back(std::move(group));
  }
  cluster->epoch_ = 1;
  return cluster;
}

Result<TransportPtr> DiscoveryCluster::bind(const Addr& addr,
                                            const std::string& role) {
  BERTHA_TRY_ASSIGN(t, cfg_.transports->bind(addr));
  if (cfg_.decorate) {
    t = cfg_.decorate(std::move(t), role);
    if (!t) return err(Errc::internal, "decorate hook returned null");
  }
  return t;
}

DiscoveryCluster::~DiscoveryCluster() { stop(); }

void DiscoveryCluster::stop() {
  // Replicas first (they propose into the sequencers), then sequencers.
  replicas_.clear();
  sequencers_.clear();
}

std::vector<Addr> DiscoveryCluster::partition_servers(size_t p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return rpc_addrs_[p];
}

std::vector<std::vector<Addr>> DiscoveryCluster::all_servers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rpc_addrs_;
}

ClusterMembership DiscoveryCluster::membership() const {
  std::lock_guard<std::mutex> lk(mu_);
  ClusterMembership m;
  m.epoch = epoch_;
  m.partitions = rpc_addrs_;
  return m;
}

void DiscoveryCluster::kill_replica(size_t p, size_t r) {
  if (p >= replicas_.size() || r >= replicas_[p].size()) return;
  replicas_[p][r].reset();
}

bool DiscoveryCluster::alive(size_t p, size_t r) const {
  return p < replicas_.size() && r < replicas_[p].size() &&
         replicas_[p][r] != nullptr;
}

Result<void> DiscoveryCluster::restart_replica(size_t p, size_t r) {
  if (p >= replicas_.size() || r >= replicas_[p].size())
    return err(Errc::invalid_argument, "no such replica");
  if (replicas_[p][r])
    return err(Errc::already_exists, "replica still alive (kill it first)");
  std::string rr = replica_name(p, r);
  BERTHA_TRY_ASSIGN(rpc_t, bind(Addr::mem(rr, 1), rr + "-rpc"));
  BERTHA_TRY_ASSIGN(mem_t, bind(Addr::mem(rr, 2), rr + "-member"));
  DiscoveryReplicaOptions opts = replica_opts(p, r);
  // Catch up from the surviving peers; a lone replica has nobody to ask
  // and boots empty instead.
  opts.catch_up = !opts.peers.empty();
  BERTHA_TRY_ASSIGN(rep, DiscoveryReplica::start(std::move(rpc_t),
                                                 std::move(mem_t),
                                                 std::move(opts)));
  replicas_[p][r] = std::move(rep);
  return ok();
}

Result<size_t> DiscoveryCluster::add_replica(size_t p) {
  if (p >= replicas_.size())
    return err(Errc::invalid_argument, "no such partition");
  size_t r = replicas_[p].size();
  std::string rr = replica_name(p, r);
  BERTHA_TRY_ASSIGN(rpc_t, bind(Addr::mem(rr, 1), rr + "-rpc"));
  BERTHA_TRY_ASSIGN(mem_t, bind(Addr::mem(rr, 2), rr + "-member"));
  Addr rpc_addr = rpc_t->local_addr();
  Addr mem_addr = mem_t->local_addr();
  {
    std::lock_guard<std::mutex> lk(mu_);
    member_addrs_[p].push_back(mem_addr);
  }
  DiscoveryReplicaOptions opts = replica_opts(p, r);
  opts.catch_up = true;
  auto rep_r = DiscoveryReplica::start(std::move(rpc_t), std::move(mem_t),
                                       std::move(opts));
  if (!rep_r.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    member_addrs_[p].pop_back();
    return rep_r.error();
  }
  replicas_[p].push_back(std::move(rep_r).value());
  // Steer the partition's live sequencers at the widened member list so
  // the joiner receives the multicast stream, then publish the config.
  std::vector<Addr> members;
  {
    std::lock_guard<std::mutex> lk(mu_);
    members = member_addrs_[p];
  }
  for (auto& s : sequencers_[p])
    if (s) s->update_members(members);
  {
    std::lock_guard<std::mutex> lk(mu_);
    rpc_addrs_[p].push_back(rpc_addr);
    epoch_++;
  }
  return r;
}

void DiscoveryCluster::kill_sequencer(size_t p, size_t c) {
  if (p >= sequencers_.size() || c >= sequencers_[p].size()) return;
  sequencers_[p][c].reset();
}

bool DiscoveryCluster::sequencer_alive(size_t p, size_t c) const {
  return p < sequencers_.size() && c < sequencers_[p].size() &&
         sequencers_[p][c] != nullptr;
}

Result<std::shared_ptr<ClusterDiscovery>> DiscoveryCluster::client(
    const std::string& host_id, RemoteDiscovery::Options rpc) {
  ClusterDiscovery::Config ccfg;
  ccfg.partitions = all_servers();
  ccfg.transports = cfg_.transports;
  ccfg.host_id = host_id;
  if (rpc.watchdog_interval <= Duration::zero())
    rpc.watchdog_interval = cfg_.tuning.watchdog_interval;
  ccfg.rpc = std::move(rpc);
  return ClusterDiscovery::connect(std::move(ccfg));
}

}  // namespace bertha
