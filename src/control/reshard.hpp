// Online repartitioning: the coordinator that drives a live partition
// split or merge through the per-range protocol in control_wire.hpp
// (fence -> install -> cutover -> retire), migrating each range's
// catalogue, leases, replicated dedup cache, applied-proposal ids and
// watch-event log through the snapshot-transfer machinery — while both
// the old and the new home keep answering.
//
// Ranges are hash buckets under the steering modulo, and the modulo is
// monotone non-decreasing (see PartitionMap):
//
//   split, identity steering  modulo N -> 2N; bucket q in [N, 2N) moves
//                             from partition q % N to a fresh partition
//                             q (prepare_partition), home = identity.
//   split, aliased steering   de-alias: every bucket q with home[q] != q
//                             moves back onto a revived partition q;
//                             modulo unchanged, home = identity.
//   merge (identity only)     bucket q in [A/2, A) moves from partition
//                             q to q - A/2 (A = active count); modulo
//                             KEEPS its value and home becomes the
//                             aliased identity [i % (A/2)], so alloc-id
//                             namespaces from the retired partitions
//                             keep routing and garbage namespaces >=
//                             modulo stay rejectable.
//
// Phase ops are submitted to the affected partition's own sequencer
// (every replica transitions at the same apply point) and acknowledged
// by a majority of its replicas before the coordinator advances; every
// phase is idempotent under retry (phases are monotonic per range and
// epoch). The steering push happens BETWEEN install and cutover, so a
// range always has at least one answering home: source (fenced reads /
// transient-retry writes) until the push, destination after it, with
// the source forwarding one hop for stale clients from cutover on.
#pragma once

#include <memory>

#include "control/cluster.hpp"
#include "control/control_wire.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace bertha {

struct ReshardOptions {
  // Per attempt: how long to wait for a majority of per-replica acks of
  // one phase op (or for a fenced-payload snapshot response).
  Duration ack_timeout = ms(300);
  size_t attempts = 10;
  // Cutover -> retire grace on a merge: stale clients still steering at
  // the doomed source get their one-hop forwards in before it stops.
  Duration drain = ms(150);
  std::shared_ptr<Tracer> tracer;
  FaultStatsPtr stats;
};

class ReshardCoordinator {
 public:
  static Result<std::unique_ptr<ReshardCoordinator>> create(
      DiscoveryCluster& cluster, ReshardOptions opts = {});

  // Doubles the active partition count (identity steering) or revives
  // the retired halves of an aliased one. Blocks until every migrated
  // range is cut over and the new membership is pushed.
  Result<void> split();
  // Halves the active partition count: migrates the upper half's
  // buckets into the lower half, pushes the aliased membership, drains,
  // retires the upper partitions.
  Result<void> merge();

 private:
  ReshardCoordinator(DiscoveryCluster& cluster, ReshardOptions opts)
      : cluster_(cluster), opts_(std::move(opts)) {}

  struct Move {
    uint64_t range = 0;
    size_t from = 0;
    size_t to = 0;
  };
  Result<void> run(const char* what, uint64_t modulo,
                   std::vector<uint32_t> home, size_t active,
                   const std::vector<Move>& moves, bool retire_sources);
  // Submits one phase op into `partition`'s sequenced stream and waits
  // for a majority of its replicas to ack the apply.
  Result<void> phase_op(size_t partition, ReshardOp rop);
  Result<Bytes> fetch_payload(size_t partition, uint64_t modulo,
                              uint64_t range);
  std::vector<std::string> rpc_uris(size_t partition) const;

  DiscoveryCluster& cluster_;
  ReshardOptions opts_;
  TransportPtr bus_;      // receives reshard acks + snapshot responses
  std::string bus_uri_;
  uint64_t cmd_seq_ = 0;
};

}  // namespace bertha
