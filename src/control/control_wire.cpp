#include "control/control_wire.hpp"

namespace bertha {

Bytes encode_ctrl_op(const CtrlOp& op) {
  Writer w;
  w.put_u8(static_cast<uint8_t>(op.kind));
  w.put_string(op.origin);
  w.put_varint(op.submit_id);
  w.put_svarint(op.time_ns);
  w.put_bytes(op.req);
  return std::move(w).take();
}

Result<CtrlOp> decode_ctrl_op(BytesView b) {
  Reader r(b);
  CtrlOp op;
  BERTHA_TRY_ASSIGN(kind, r.get_u8());
  if (kind < 1 || kind > 2) return err(Errc::protocol_error, "bad ctrl op kind");
  op.kind = static_cast<CtrlOpKind>(kind);
  BERTHA_TRY_ASSIGN(origin, r.get_string());
  BERTHA_TRY_ASSIGN(submit, r.get_varint());
  BERTHA_TRY_ASSIGN(time_ns, r.get_svarint());
  BERTHA_TRY_ASSIGN(req, r.get_bytes());
  op.origin = std::move(origin);
  op.submit_id = submit;
  op.time_ns = time_ns;
  op.req = std::move(req);
  if (!r.at_end()) return err(Errc::protocol_error, "trailing ctrl op bytes");
  return op;
}

}  // namespace bertha
