#include "control/control_wire.hpp"

namespace bertha {

Bytes encode_ctrl_op(const CtrlOp& op) {
  Writer w;
  w.put_u8(static_cast<uint8_t>(op.kind));
  w.put_string(op.origin);
  w.put_varint(op.submit_id);
  w.put_svarint(op.time_ns);
  w.put_bytes(op.req);
  return std::move(w).take();
}

Result<CtrlOp> decode_ctrl_op(BytesView b) {
  Reader r(b);
  CtrlOp op;
  BERTHA_TRY_ASSIGN(kind, r.get_u8());
  if (kind < 1 || kind > 3) return err(Errc::protocol_error, "bad ctrl op kind");
  op.kind = static_cast<CtrlOpKind>(kind);
  BERTHA_TRY_ASSIGN(origin, r.get_string());
  BERTHA_TRY_ASSIGN(submit, r.get_varint());
  BERTHA_TRY_ASSIGN(time_ns, r.get_svarint());
  BERTHA_TRY_ASSIGN(req, r.get_bytes());
  op.origin = std::move(origin);
  op.submit_id = submit;
  op.time_ns = time_ns;
  op.req = std::move(req);
  if (!r.at_end()) return err(Errc::protocol_error, "trailing ctrl op bytes");
  return op;
}

// --- Resharding ops ---

Bytes encode_reshard_op(const ReshardOp& op) {
  Writer w;
  w.put_u8(static_cast<uint8_t>(op.phase));
  w.put_varint(op.epoch);
  w.put_varint(op.modulo);
  w.put_varint(op.range);
  w.put_varint(op.from_partition);
  w.put_varint(op.to_partition);
  serde_put(w, op.dst_rpc);
  w.put_string(op.reply_uri);
  w.put_varint(op.cmd_id);
  w.put_bytes(op.payload);
  return std::move(w).take();
}

Result<ReshardOp> decode_reshard_op(BytesView b) {
  Reader r(b);
  ReshardOp op;
  BERTHA_TRY_ASSIGN(phase, r.get_u8());
  if (phase < 1 || phase > 4)
    return err(Errc::protocol_error, "bad reshard phase");
  op.phase = static_cast<ReshardPhase>(phase);
  BERTHA_TRY_ASSIGN(epoch, r.get_varint());
  BERTHA_TRY_ASSIGN(modulo, r.get_varint());
  BERTHA_TRY_ASSIGN(range, r.get_varint());
  if (modulo == 0 || range >= modulo)
    return err(Errc::protocol_error, "reshard range outside modulo");
  BERTHA_TRY_ASSIGN(from, r.get_varint());
  BERTHA_TRY_ASSIGN(to, r.get_varint());
  if (from > 0xffffffffull || to > 0xffffffffull)
    return err(Errc::protocol_error, "reshard partition index range");
  BERTHA_TRY_ASSIGN(dst_rpc, serde_get<std::vector<std::string>>(r));
  for (const auto& uri : dst_rpc) BERTHA_TRY(Addr::parse(uri));
  BERTHA_TRY_ASSIGN(reply, r.get_string());
  if (!reply.empty()) BERTHA_TRY(Addr::parse(reply));
  BERTHA_TRY_ASSIGN(cmd_id, r.get_varint());
  BERTHA_TRY_ASSIGN(payload, r.get_bytes());
  op.epoch = epoch;
  op.modulo = modulo;
  op.range = range;
  op.from_partition = static_cast<uint32_t>(from);
  op.to_partition = static_cast<uint32_t>(to);
  op.dst_rpc = std::move(dst_rpc);
  op.reply_uri = std::move(reply);
  op.cmd_id = cmd_id;
  op.payload = std::move(payload);
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing reshard op bytes");
  return op;
}

// --- Recovery frames ---

// Serde glue for the snapshot payload. Every decoder validates its
// ranges and its callers check at_end(), so a truncated or corrupted
// frame fails cleanly before anything is installed.

template <>
struct Serde<DiscoverySnapshot::PoolEntry> {
  static void put(Writer& w, const DiscoverySnapshot::PoolEntry& p) {
    w.put_string(p.name);
    w.put_varint(p.capacity);
    w.put_varint(p.used);
  }
  static Result<DiscoverySnapshot::PoolEntry> get(Reader& r) {
    DiscoverySnapshot::PoolEntry p;
    BERTHA_TRY_ASSIGN(name, r.get_string());
    BERTHA_TRY_ASSIGN(cap, r.get_varint());
    BERTHA_TRY_ASSIGN(used, r.get_varint());
    p.name = std::move(name);
    p.capacity = cap;
    p.used = used;
    if (p.used > p.capacity)
      return err(Errc::protocol_error, "pool used exceeds capacity");
    return p;
  }
};

template <>
struct Serde<DiscoverySnapshot::AllocEntry> {
  static void put(Writer& w, const DiscoverySnapshot::AllocEntry& a) {
    w.put_varint(a.id);
    serde_put(w, a.reqs);
  }
  static Result<DiscoverySnapshot::AllocEntry> get(Reader& r) {
    DiscoverySnapshot::AllocEntry a;
    BERTHA_TRY_ASSIGN(id, r.get_varint());
    BERTHA_TRY_ASSIGN(reqs, serde_get<std::vector<ResourceReq>>(r));
    a.id = id;
    a.reqs = std::move(reqs);
    return a;
  }
};

template <>
struct Serde<DiscoverySnapshot::LeaseEntry> {
  static void put(Writer& w, const DiscoverySnapshot::LeaseEntry& l) {
    w.put_string(l.owner);
    w.put_svarint(l.ttl_ns);
    w.put_svarint(l.expires_ns);
    serde_put(w, l.impls);
    serde_put(w, l.allocs);
  }
  static Result<DiscoverySnapshot::LeaseEntry> get(Reader& r) {
    DiscoverySnapshot::LeaseEntry l;
    BERTHA_TRY_ASSIGN(owner, r.get_string());
    BERTHA_TRY_ASSIGN(ttl, r.get_svarint());
    BERTHA_TRY_ASSIGN(expires, r.get_svarint());
    BERTHA_TRY_ASSIGN(
        impls, (serde_get<std::vector<std::pair<std::string, std::string>>>(r)));
    BERTHA_TRY_ASSIGN(allocs, serde_get<std::vector<uint64_t>>(r));
    l.owner = std::move(owner);
    l.ttl_ns = ttl;
    l.expires_ns = expires;
    l.impls = std::move(impls);
    l.allocs = std::move(allocs);
    return l;
  }
};

template <>
struct Serde<DiscoverySnapshot> {
  static void put(Writer& w, const DiscoverySnapshot& s) {
    serde_put(w, s.impls);
    serde_put(w, s.pools);
    serde_put(w, s.allocs);
    w.put_varint(s.next_alloc);
    serde_put(w, s.leases);
    w.put_varint(s.watch_seq);
  }
  static Result<DiscoverySnapshot> get(Reader& r) {
    DiscoverySnapshot s;
    BERTHA_TRY_ASSIGN(impls, serde_get<std::vector<ImplInfo>>(r));
    BERTHA_TRY_ASSIGN(pools,
                      serde_get<std::vector<DiscoverySnapshot::PoolEntry>>(r));
    BERTHA_TRY_ASSIGN(allocs,
                      serde_get<std::vector<DiscoverySnapshot::AllocEntry>>(r));
    BERTHA_TRY_ASSIGN(next_alloc, r.get_varint());
    BERTHA_TRY_ASSIGN(leases,
                      serde_get<std::vector<DiscoverySnapshot::LeaseEntry>>(r));
    BERTHA_TRY_ASSIGN(watch_seq, r.get_varint());
    s.impls = std::move(impls);
    s.pools = std::move(pools);
    s.allocs = std::move(allocs);
    s.next_alloc = next_alloc;
    s.leases = std::move(leases);
    s.watch_seq = watch_seq;
    return s;
  }
};

template <>
struct Serde<EventLogSnapshot> {
  static void put(Writer& w, const EventLogSnapshot& l) {
    serde_put(w, l.events);
    w.put_varint(l.pruned_through);
    w.put_varint(l.observed_through);
  }
  static Result<EventLogSnapshot> get(Reader& r) {
    EventLogSnapshot l;
    BERTHA_TRY_ASSIGN(events, serde_get<std::vector<WatchEvent>>(r));
    BERTHA_TRY_ASSIGN(pruned, r.get_varint());
    BERTHA_TRY_ASSIGN(observed, r.get_varint());
    l.events = std::move(events);
    l.pruned_through = pruned;
    l.observed_through = observed;
    if (l.observed_through < l.pruned_through)
      return err(Errc::protocol_error, "event log observed < pruned");
    return l;
  }
};

template <>
struct Serde<ReshardRangeState> {
  static void put(Writer& w, const ReshardRangeState& s) {
    w.put_varint(s.range);
    w.put_varint(s.modulo);
    w.put_varint(s.epoch);
    w.put_u8(s.role);
    w.put_u8(s.phase);
    serde_put(w, s.dst_rpc);
    serde_put(w, s.migrated_allocs);
    w.put_bytes(s.payload);
  }
  static Result<ReshardRangeState> get(Reader& r) {
    ReshardRangeState s;
    BERTHA_TRY_ASSIGN(range, r.get_varint());
    BERTHA_TRY_ASSIGN(modulo, r.get_varint());
    BERTHA_TRY_ASSIGN(epoch, r.get_varint());
    BERTHA_TRY_ASSIGN(role, r.get_u8());
    BERTHA_TRY_ASSIGN(phase, r.get_u8());
    if (modulo == 0 || range >= modulo)
      return err(Errc::protocol_error, "reshard state range outside modulo");
    if (role < 1 || role > 2)
      return err(Errc::protocol_error, "reshard state role");
    if (phase < 1 || phase > 4)
      return err(Errc::protocol_error, "reshard state phase");
    BERTHA_TRY_ASSIGN(dst_rpc, serde_get<std::vector<std::string>>(r));
    for (const auto& uri : dst_rpc) BERTHA_TRY(Addr::parse(uri));
    BERTHA_TRY_ASSIGN(migrated, serde_get<std::vector<uint64_t>>(r));
    BERTHA_TRY_ASSIGN(payload, r.get_bytes());
    s.range = range;
    s.modulo = modulo;
    s.epoch = epoch;
    s.role = role;
    s.phase = phase;
    s.dst_rpc = std::move(dst_rpc);
    s.migrated_allocs = std::move(migrated);
    s.payload = std::move(payload);
    return s;
  }
};

Bytes encode_reshard_payload(const ReshardPayload& p) {
  Writer w;
  serde_put(w, p.state);
  serde_put(w, p.dedup);
  serde_put(w, p.applied);
  serde_put(w, p.event_log);
  return std::move(w).take();
}

Result<ReshardPayload> decode_reshard_payload(BytesView b) {
  Reader r(b);
  ReshardPayload p;
  BERTHA_TRY_ASSIGN(state, serde_get<DiscoverySnapshot>(r));
  BERTHA_TRY_ASSIGN(dedup,
                    (serde_get<std::vector<std::pair<std::string, Bytes>>>(r)));
  BERTHA_TRY_ASSIGN(applied, serde_get<std::vector<std::string>>(r));
  BERTHA_TRY_ASSIGN(log, serde_get<EventLogSnapshot>(r));
  p.state = std::move(state);
  p.dedup = std::move(dedup);
  p.applied = std::move(applied);
  p.event_log = std::move(log);
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing reshard payload bytes");
  return p;
}

namespace {

constexpr uint8_t kCtrlMagic0 = 'C';
constexpr uint8_t kCtrlMagic1 = 'T';

Writer ctrl_frame_header(CtrlFrameKind kind) {
  Writer w;
  w.put_u8(kCtrlMagic0);
  w.put_u8(kCtrlMagic1);
  w.put_u8(static_cast<uint8_t>(kind));
  return w;
}

// Strips magic + kind, checking `kind` matches.
Result<Reader> ctrl_frame_body(BytesView b, CtrlFrameKind kind) {
  Reader r(b);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != kCtrlMagic0 || m1 != kCtrlMagic1)
    return err(Errc::protocol_error, "bad ctrl frame magic");
  BERTHA_TRY_ASSIGN(k, r.get_u8());
  if (k != static_cast<uint8_t>(kind))
    return err(Errc::protocol_error, "ctrl frame kind mismatch");
  return r;
}

}  // namespace

Result<CtrlFrameKind> peek_ctrl_frame(BytesView b) {
  Reader r(b);
  BERTHA_TRY_ASSIGN(m0, r.get_u8());
  BERTHA_TRY_ASSIGN(m1, r.get_u8());
  if (m0 != kCtrlMagic0 || m1 != kCtrlMagic1)
    return err(Errc::protocol_error, "bad ctrl frame magic");
  BERTHA_TRY_ASSIGN(k, r.get_u8());
  if (k < 1 || k > 7)
    return err(Errc::protocol_error, "unknown ctrl frame kind");
  return static_cast<CtrlFrameKind>(k);
}

Bytes encode_snapshot_req(const CtrlSnapshotReq& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::snapshot_req);
  w.put_string(m.from);
  w.put_string(m.reply_uri);
  return std::move(w).take();
}

Result<CtrlSnapshotReq> decode_snapshot_req(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::snapshot_req));
  CtrlSnapshotReq m;
  BERTHA_TRY_ASSIGN(from, r.get_string());
  BERTHA_TRY_ASSIGN(reply, r.get_string());
  m.from = std::move(from);
  m.reply_uri = std::move(reply);
  BERTHA_TRY(Addr::parse(m.reply_uri));  // must be answerable
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing snapshot-req bytes");
  return m;
}

Bytes encode_snapshot_rsp(const CtrlSnapshotRsp& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::snapshot_rsp);
  w.put_string(m.from);
  w.put_varint(m.view);
  w.put_varint(m.next_seq);
  serde_put(w, m.state);
  serde_put(w, m.dedup);
  serde_put(w, m.applied);
  serde_put(w, m.event_log);
  serde_put(w, m.reshard);
  return std::move(w).take();
}

Result<CtrlSnapshotRsp> decode_snapshot_rsp(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::snapshot_rsp));
  CtrlSnapshotRsp m;
  BERTHA_TRY_ASSIGN(from, r.get_string());
  BERTHA_TRY_ASSIGN(view, r.get_varint());
  if (view > 0xffff)
    return err(Errc::protocol_error, "snapshot-rsp view range");
  BERTHA_TRY_ASSIGN(next_seq, r.get_varint());
  BERTHA_TRY_ASSIGN(state, serde_get<DiscoverySnapshot>(r));
  BERTHA_TRY_ASSIGN(dedup,
                    (serde_get<std::vector<std::pair<std::string, Bytes>>>(r)));
  BERTHA_TRY_ASSIGN(applied, serde_get<std::vector<std::string>>(r));
  BERTHA_TRY_ASSIGN(log, serde_get<EventLogSnapshot>(r));
  BERTHA_TRY_ASSIGN(reshard, serde_get<std::vector<ReshardRangeState>>(r));
  m.from = std::move(from);
  m.view = static_cast<uint32_t>(view);
  m.next_seq = next_seq;
  m.state = std::move(state);
  m.dedup = std::move(dedup);
  m.applied = std::move(applied);
  m.event_log = std::move(log);
  m.reshard = std::move(reshard);
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing snapshot-rsp bytes");
  return m;
}

Bytes encode_view_change(const CtrlViewChangeMsg& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::view_change);
  w.put_varint(m.view);
  w.put_string(m.from);
  w.put_varint(m.last_contig);
  return std::move(w).take();
}

Result<CtrlViewChangeMsg> decode_view_change(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::view_change));
  CtrlViewChangeMsg m;
  BERTHA_TRY_ASSIGN(view, r.get_varint());
  if (view == 0 || view > 0xffff)
    return err(Errc::protocol_error, "view-change view range");
  BERTHA_TRY_ASSIGN(from, r.get_string());
  BERTHA_TRY_ASSIGN(last, r.get_varint());
  m.view = static_cast<uint32_t>(view);
  m.from = std::move(from);
  m.last_contig = last;
  if (m.from.empty())
    return err(Errc::protocol_error, "view-change without sender");
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing view-change bytes");
  return m;
}

Bytes encode_membership(const ClusterMembership& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::membership);
  w.put_varint(m.epoch);
  w.put_varint(m.partitions.size());
  for (const auto& replicas : m.partitions) {
    w.put_varint(replicas.size());
    for (const auto& a : replicas) w.put_string(a.to_string());
  }
  w.put_varint(m.modulo);
  serde_put(w, m.home);
  return std::move(w).take();
}

Result<ClusterMembership> decode_membership(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::membership));
  ClusterMembership m;
  BERTHA_TRY_ASSIGN(epoch, r.get_varint());
  m.epoch = epoch;
  BERTHA_TRY_ASSIGN(nparts, r.get_varint());
  if (nparts == 0 || nparts > r.remaining())
    return err(Errc::protocol_error, "membership partition count");
  for (uint64_t p = 0; p < nparts; p++) {
    BERTHA_TRY_ASSIGN(nreps, r.get_varint());
    if (nreps == 0 || nreps > r.remaining())
      return err(Errc::protocol_error, "membership replica count");
    std::vector<Addr> replicas;
    replicas.reserve(nreps);
    for (uint64_t i = 0; i < nreps; i++) {
      BERTHA_TRY_ASSIGN(uri, r.get_string());
      BERTHA_TRY_ASSIGN(addr, Addr::parse(uri));
      replicas.push_back(std::move(addr));
    }
    m.partitions.push_back(std::move(replicas));
  }
  BERTHA_TRY_ASSIGN(modulo, r.get_varint());
  BERTHA_TRY_ASSIGN(home, serde_get<std::vector<uint32_t>>(r));
  // Steering invariants: a home table is sized by the modulo it steers
  // under, and every home names a real partition. Empty table + zero
  // modulo is the identity steady state.
  if (modulo > 0xffffffffull)
    return err(Errc::protocol_error, "membership modulo range");
  if (!home.empty() && home.size() != modulo)
    return err(Errc::protocol_error, "membership home table size");
  for (uint32_t h : home)
    if (h >= m.partitions.size())
      return err(Errc::protocol_error, "membership home names no partition");
  m.modulo = modulo;
  m.home = std::move(home);
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing membership bytes");
  return m;
}

Bytes encode_reshard_ack(const ReshardAck& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::reshard_ack);
  w.put_varint(m.cmd_id);
  w.put_string(m.from);
  return std::move(w).take();
}

Result<ReshardAck> decode_reshard_ack(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::reshard_ack));
  ReshardAck m;
  BERTHA_TRY_ASSIGN(cmd_id, r.get_varint());
  BERTHA_TRY_ASSIGN(from, r.get_string());
  m.cmd_id = cmd_id;
  m.from = std::move(from);
  if (m.from.empty())
    return err(Errc::protocol_error, "reshard ack without sender");
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing reshard-ack bytes");
  return m;
}

Bytes encode_reshard_snapshot_req(const ReshardSnapshotReq& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::reshard_snapshot_req);
  w.put_varint(m.modulo);
  w.put_varint(m.range);
  w.put_string(m.reply_uri);
  return std::move(w).take();
}

Result<ReshardSnapshotReq> decode_reshard_snapshot_req(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::reshard_snapshot_req));
  ReshardSnapshotReq m;
  BERTHA_TRY_ASSIGN(modulo, r.get_varint());
  BERTHA_TRY_ASSIGN(range, r.get_varint());
  BERTHA_TRY_ASSIGN(reply, r.get_string());
  if (modulo == 0 || range >= modulo)
    return err(Errc::protocol_error, "reshard snapshot-req range");
  m.modulo = modulo;
  m.range = range;
  m.reply_uri = std::move(reply);
  BERTHA_TRY(Addr::parse(m.reply_uri));  // must be answerable
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing reshard snapshot-req bytes");
  return m;
}

Bytes encode_reshard_snapshot_rsp(const ReshardSnapshotRsp& m) {
  Writer w = ctrl_frame_header(CtrlFrameKind::reshard_snapshot_rsp);
  w.put_varint(m.range);
  w.put_string(m.from);
  w.put_bytes(m.payload);
  return std::move(w).take();
}

Result<ReshardSnapshotRsp> decode_reshard_snapshot_rsp(BytesView b) {
  BERTHA_TRY_ASSIGN(r, ctrl_frame_body(b, CtrlFrameKind::reshard_snapshot_rsp));
  ReshardSnapshotRsp m;
  BERTHA_TRY_ASSIGN(range, r.get_varint());
  BERTHA_TRY_ASSIGN(from, r.get_string());
  BERTHA_TRY_ASSIGN(payload, r.get_bytes());
  m.range = range;
  m.from = std::move(from);
  m.payload = std::move(payload);
  if (!r.at_end())
    return err(Errc::protocol_error, "trailing reshard snapshot-rsp bytes");
  return m;
}

}  // namespace bertha
