#include "control/replica.hpp"

#include <algorithm>

#include "chunnels/shard.hpp"
#include "core/wire.hpp"
#include "util/log.hpp"

namespace bertha {

Result<std::unique_ptr<DiscoveryReplica>> DiscoveryReplica::start(
    TransportPtr rpc_transport, TransportPtr member,
    DiscoveryReplicaOptions opts) {
  if (!rpc_transport || !member)
    return err(Errc::invalid_argument, "replica needs rpc + member transports");
  if (opts.replica_id.empty())
    return err(Errc::invalid_argument, "replica needs an id");
  if (!opts.sequencer.valid() && opts.sequencers.empty())
    return err(Errc::invalid_argument, "replica needs a sequencer address");
  if (!opts.sequencer.valid()) opts.sequencer = opts.sequencers.front();
  if (opts.catch_up && opts.peers.empty())
    return err(Errc::invalid_argument, "catch-up boot needs peers");

  std::shared_ptr<Transport> member_shared(std::move(member));
  auto rep = std::unique_ptr<DiscoveryReplica>(
      new DiscoveryReplica(std::move(member_shared), std::move(opts)));

  rep->rpc_addr_ = rpc_transport->local_addr();
  rep->boot_rpc_ = std::move(rpc_transport);
  if (!rep->opts_.catch_up) {
    // Fresh partition: serve immediately over the (empty) local state. A
    // catch-up boot defers this until a peer snapshot has installed, so
    // clients never observe a stale-empty replica (see member_loop()).
    std::lock_guard<std::mutex> lk(rep->server_mu_);
    rep->create_server_locked();
    rep->ready_.store(true, std::memory_order_release);
  }
  DiscoveryReplica* raw = rep.get();
  rep->member_thread_ = std::thread([raw] { raw->member_loop(); });
  if (rep->opts_.sweep_period > Duration::zero())
    rep->sweep_thread_ = std::thread([raw] { raw->sweep_loop(); });
  return rep;
}

DiscoveryReplica::DiscoveryReplica(std::shared_ptr<Transport> member,
                                   DiscoveryReplicaOptions opts)
    : member_(std::move(member)),
      member_addr_(member_->local_addr()),
      opts_(std::move(opts)),
      state_(std::make_shared<DiscoveryState>()) {
  // Replicated state: no local-clock sweeps, partition-namespaced ids.
  state_->set_manual_sweep(true);
  state_->set_alloc_namespace(opts_.partition_index);
  if (opts_.stats) state_->set_fault_stats(opts_.stats);
}

DiscoveryReplica::~DiscoveryReplica() { stop(); }

void DiscoveryReplica::stop() {
  if (stopping_.exchange(true)) return;
  // Wake proposals first so server threads blocked in propose() bail out
  // with unavailable instead of riding out apply_timeout.
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (auto& [id, w] : pending_) {
      std::lock_guard<std::mutex> wlk(w->mu);
      w->cv.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> lk(server_mu_);
    server_.reset();  // closes the rpc transport, joins serve/push threads
    if (boot_rpc_) boot_rpc_->close();  // server never got created
  }
  sweep_cv_.notify_all();
  if (sweep_thread_.joinable()) sweep_thread_.join();
  member_->close();
  if (member_thread_.joinable()) member_thread_.join();
  {
    std::lock_guard<std::mutex> lk(fwd_mu_);
    if (fwd_) fwd_->close();
  }
}

size_t DiscoveryReplica::reshard_ranges() const {
  std::lock_guard<std::mutex> lk(reshard_mu_);
  return reshard_.size();
}

bool DiscoveryReplica::wait_ready(Duration timeout) {
  Deadline dl = Deadline::after(timeout);
  while (!ready_.load(std::memory_order_acquire)) {
    if (dl.expired() || stopping_.load()) return false;
    sleep_for(ms(2));
  }
  return true;
}

void DiscoveryReplica::create_server_locked() {
  if (!boot_rpc_) return;
  DiscoveryServer::Options sopts = opts_.server;
  if (!sopts.tracer) sopts.tracer = opts_.tracer;
  // The server routes every mutation here; `this` outlives the server
  // (stop() tears the server down first).
  sopts.mutation_executor = [this](const DiscRequest& req) {
    return propose(req);
  };
  sopts.request_interceptor = [this](const DiscRequest& req) {
    return intercept(req);
  };
  server_ =
      std::make_unique<DiscoveryServer>(std::move(boot_rpc_), state_, sopts);
  if (boot_log_) {
    server_->install_event_log(*boot_log_, boot_log_seq_);
    boot_log_.reset();
  }
}

Addr DiscoveryReplica::sequencer_for(uint32_t view) const {
  if (opts_.sequencers.empty()) return opts_.sequencer;
  return opts_.sequencers[view % opts_.sequencers.size()];
}

DiscResponse DiscoveryReplica::propose(const DiscRequest& req) {
  if (stopping_.load())
    return error_response(err(Errc::unavailable, "replica stopping"));
  CtrlOp op;
  op.kind = CtrlOpKind::disc;
  op.origin = opts_.replica_id;
  op.submit_id = next_submit_.fetch_add(1) + 1;
  op.time_ns = now().time_since_epoch().count();
  op.req = encode_request(req);

  auto waiter = std::make_shared<PendingApply>();
  // Kept around so a view change can re-propose the op to the newly
  // elected sequencer (written before the pending_mu_ insert publishes
  // the waiter to the member thread).
  waiter->ctrl_op = encode_ctrl_op(op);
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_[op.submit_id] = waiter;
  }
  auto sent =
      member_->send_to(sequencer_for(cur_view_.load(std::memory_order_acquire)),
                       mcast_frame(member_addr_, waiter->ctrl_op));
  bool done = false;
  DiscResponse rsp;
  if (sent.ok()) {
    std::unique_lock<std::mutex> lk(waiter->mu);
    waiter->cv.wait_for(lk, opts_.apply_timeout,
                        [&] { return waiter->done || stopping_.load(); });
    done = waiter->done;
    if (done) {
      auto decoded = decode_response(waiter->response);
      rsp = decoded.ok()
                ? std::move(decoded).value()
                : error_response(err(Errc::internal, "bad replicated response"));
    }
  }
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_.erase(op.submit_id);
  }
  if (!done)
    // Transient: the server does not dedup-cache this, so the client's
    // retry (same idem key) re-proposes and the apply-side cache absorbs
    // any duplicate execution.
    return error_response(
        err(Errc::unavailable, "replication timed out (op not sequenced)"));
  return rsp;
}

void DiscoveryReplica::member_loop() {
  if (opts_.catch_up) {
    // Joining/restarting: install a peer snapshot before serving anyone.
    while (!stopping_.load()) {
      if (do_catchup("boot")) break;
      if (stopping_.load()) return;
      sleep_for(ms(10));
    }
  }
  {
    std::lock_guard<std::mutex> lk(server_mu_);
    if (stopping_.load()) return;
    if (!server_) create_server_locked();
  }
  ready_.store(true, std::memory_order_release);
  last_seen_ = now();
  for (;;) {
    check_timers();
    auto pkt_r = member_->recv(next_deadline());
    if (!pkt_r.ok()) {
      if (pkt_r.error().code != Errc::timed_out) return;  // closed
      continue;
    }
    dispatch(pkt_r.value().payload);
  }
}

bool DiscoveryReplica::detection_enabled() {
  if (opts_.view_silence_timeout <= Duration::zero()) return false;
  if (opts_.sequencers.size() < 2) return false;
  // Silence only means failure when traffic was expected: replicated
  // sweeps are the keepalive; otherwise in-flight proposals are.
  if (opts_.sweep_period > Duration::zero()) return true;
  std::lock_guard<std::mutex> lk(pending_mu_);
  return !pending_.empty();
}

Deadline DiscoveryReplica::next_deadline() {
  std::optional<TimePoint> tp;
  auto consider = [&](TimePoint t) {
    if (!tp || t < *tp) tp = t;
  };
  if (window_.has_gap() && fetch_sent_)
    consider(gap_since_ + opts_.gap_timeout);
  if (vc_.view > cur_view_.load(std::memory_order_acquire)) {
    consider(vc_.started + opts_.view_ack_timeout);
    consider(vc_.started + opts_.view_silence_timeout +
             2 * opts_.view_ack_timeout);
  } else if (detection_enabled()) {
    consider(last_seen_ + opts_.view_silence_timeout);
  }
  return tp ? Deadline::at(*tp) : Deadline::never();
}

void DiscoveryReplica::check_timers() {
  // Gap recovery ladder: sequencer retransmit → peer catch-up → bounded
  // skip (last resort, counted so the chaos harness can assert zero).
  if (window_.has_gap()) {
    if (!fetch_sent_) {
      (void)member_->send_to(
          sequencer_for(cur_view_.load(std::memory_order_acquire)),
          mcast_fetch_frame(member_addr_, window_.next_seq(),
                            window_.gap_end()));
      fetches_.fetch_add(1, std::memory_order_relaxed);
      fetch_sent_ = true;
      gap_since_ = now();
    } else if (now() - gap_since_ >= opts_.gap_timeout) {
      if (!gap_catchup_tried_ && !opts_.peers.empty()) {
        gap_catchup_tried_ = true;
        if (do_catchup("gap")) return;  // window replaced, gap gone
        gap_since_ = now();  // one more fetch window before skipping
      } else {
        auto released = window_.skip_to(window_.gap_end());
        gaps_skipped_.fetch_add(1, std::memory_order_relaxed);
        BLOG(debug, "control") << opts_.replica_id << " skipped seq gap";
        for (auto& [seq, frame] : released) apply(seq, frame);
        fetch_sent_ = false;
        gap_catchup_tried_ = false;
      }
    }
  } else {
    fetch_sent_ = false;
    gap_catchup_tried_ = false;
  }

  uint32_t cur = cur_view_.load(std::memory_order_acquire);
  if (vc_.view > cur) {
    maybe_send_view_start();
    // The round itself went stale (elected candidate dead too, or no
    // quorum): escalate to the next view.
    if (vc_.view > cur_view_.load(std::memory_order_acquire) &&
        now() - vc_.started >
            opts_.view_silence_timeout + 2 * opts_.view_ack_timeout)
      initiate_view_change(vc_.view + 1);
  } else if (detection_enabled() &&
             now() - last_seen_ >= opts_.view_silence_timeout) {
    initiate_view_change(cur + 1);
  }
}

void DiscoveryReplica::dispatch(BytesView payload) {
  if (auto op_r = parse_sequenced_mcast(payload); op_r.ok()) {
    handle_sequenced(op_r.value());
    return;
  }
  if (auto miss_r = parse_mcast_fetch_miss(payload); miss_r.ok()) {
    handle_fetch_miss(miss_r.value());
    return;
  }
  auto kind_r = peek_ctrl_frame(payload);
  if (!kind_r.ok()) {
    BLOG(debug, "control") << opts_.replica_id
                           << " unrecognised member frame dropped";
    return;
  }
  switch (kind_r.value()) {
    case CtrlFrameKind::snapshot_req:
      if (auto r = decode_snapshot_req(payload); r.ok())
        serve_snapshot(r.value());
      break;
    case CtrlFrameKind::view_change:
      if (auto r = decode_view_change(payload); r.ok())
        handle_view_change(r.value());
      break;
    case CtrlFrameKind::snapshot_rsp:
      break;  // straggler answer from an already-finished catch-up
    case CtrlFrameKind::membership:
      break;  // membership rides the client RPC path, not the member bus
    case CtrlFrameKind::reshard_snapshot_req:
      if (auto r = decode_reshard_snapshot_req(payload); r.ok())
        handle_reshard_snapshot_req(r.value());
      break;
    case CtrlFrameKind::reshard_ack:
    case CtrlFrameKind::reshard_snapshot_rsp:
      break;  // coordinator-bound frames; not ours to consume
  }
}

void DiscoveryReplica::handle_sequenced(const McastOp& op) {
  uint32_t cur = cur_view_.load(std::memory_order_acquire);
  if (op.view < cur) return;  // deposed sequencer still multicasting
  if (op.view > cur) adopt_view(op.view, "stamp");
  last_seen_ = now();
  auto released =
      window_.offer(op.seq, Bytes(op.payload.begin(), op.payload.end()));
  for (auto& [seq, frame] : released) apply(seq, frame);
}

void DiscoveryReplica::handle_fetch_miss(const McastFetchMiss& miss) {
  if (!window_.has_gap()) return;          // gap already resolved
  if (miss.to <= window_.next_seq()) return;  // stale answer
  gap_misses_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.stats) opts_.stats->gap_misses.fetch_add(1);
  if (opts_.tracer) {
    Span span = trace_span(opts_.tracer, "ctrl.gap_miss");
    span.tag_u64("from", miss.from);
    span.tag_u64("to", miss.to);
  }
  BLOG(info, "control") << opts_.replica_id << " fetch miss [" << miss.from
                        << "," << miss.to << "): sequencer log evicted";
  if (!opts_.peers.empty() && do_catchup("gap_miss")) {
    fetch_sent_ = false;
    gap_catchup_tried_ = false;
    return;
  }
  // No peer could help: give up on exactly the evicted prefix — anything
  // past miss.to may still be retransmitted from the sequencer log.
  auto released = window_.skip_to(std::min(miss.to, window_.gap_end()));
  gaps_skipped_.fetch_add(1, std::memory_order_relaxed);
  for (auto& [seq, frame] : released) apply(seq, frame);
  fetch_sent_ = false;
  gap_catchup_tried_ = false;
}

void DiscoveryReplica::handle_view_change(const CtrlViewChangeMsg& m) {
  uint32_t cur = cur_view_.load(std::memory_order_acquire);
  // Stale round: the peer will adopt the current view from the next
  // stamped packet it sees.
  if (m.view <= cur) return;
  if (m.view > vc_.view) {
    // Join the (higher) round: reset, record our own ack, relay once.
    vc_ = ViewChangeRound{};
    vc_.view = m.view;
    vc_.started = now();
    vc_.acks[opts_.replica_id] = window_.next_seq();
    broadcast_view_change(m.view);
    last_seen_ = now();  // don't re-trip silence during the round
  }
  if (m.view == vc_.view) {
    auto& slot = vc_.acks[m.from];
    slot = std::max(slot, m.last_contig);
    maybe_send_view_start();
  }
}

void DiscoveryReplica::initiate_view_change(uint32_t target) {
  if (target <= cur_view_.load(std::memory_order_acquire)) return;
  if (target <= vc_.view) return;  // already running a round ≥ target
  vc_ = ViewChangeRound{};
  vc_.view = target;
  vc_.started = now();
  vc_.acks[opts_.replica_id] = window_.next_seq();
  BLOG(info, "control") << opts_.replica_id
                        << " sequencer silent: starting view change -> "
                        << target;
  broadcast_view_change(target);
  last_seen_ = now();
}

void DiscoveryReplica::broadcast_view_change(uint32_t view) {
  CtrlViewChangeMsg out;
  out.view = view;
  out.from = opts_.replica_id;
  out.last_contig = window_.next_seq();
  Bytes frame = encode_view_change(out);
  for (const auto& p : opts_.peers) (void)member_->send_to(p, frame);
}

void DiscoveryReplica::maybe_send_view_start() {
  if (vc_.view == 0 || vc_.start_sent) return;
  if (vc_.view <= cur_view_.load(std::memory_order_acquire)) return;
  size_t quorum = (opts_.peers.size() + 1) / 2 + 1;
  if (vc_.acks.size() < quorum) return;
  // Grace past the majority: stragglers may still raise the resume seq.
  if (now() - vc_.started < opts_.view_ack_timeout) return;
  uint64_t start = 0;
  for (const auto& [id, s] : vc_.acks) start = std::max(start, s);
  (void)member_->send_to(sequencer_for(vc_.view),
                         mcast_view_start_frame(vc_.view, start));
  vc_.start_sent = true;
  BLOG(info, "control") << opts_.replica_id << " activating view " << vc_.view
                        << " at seq " << start << " (" << vc_.acks.size()
                        << "/" << opts_.peers.size() + 1 << " acks)";
}

void DiscoveryReplica::adopt_view(uint32_t view, const char* how) {
  uint32_t old = cur_view_.load(std::memory_order_acquire);
  if (view <= old) return;
  cur_view_.store(view, std::memory_order_release);
  vc_ = ViewChangeRound{};
  last_seen_ = now();
  view_changes_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.stats) opts_.stats->view_changes.fetch_add(1);
  if (opts_.tracer) {
    Span span = trace_span(opts_.tracer, "ctrl.view_change");
    span.tag_u64("view", view);
    span.tag_u64("from_view", old);
    span.tag("via", how);
  }
  BLOG(info, "control") << opts_.replica_id << " adopted sequencer view "
                        << view << " (" << how << ")";
  // Re-propose in-flight ops: the old sequencer may have died holding
  // them. The replicated applied-ids make this at-most-once even when
  // the original stamp did land somewhere.
  std::vector<Bytes> inflight;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    inflight.reserve(pending_.size());
    for (auto& [id, w] : pending_) inflight.push_back(w->ctrl_op);
  }
  Addr seq_addr = sequencer_for(view);
  for (auto& f : inflight)
    (void)member_->send_to(seq_addr, mcast_frame(member_addr_, f));
}

bool DiscoveryReplica::do_catchup(const char* reason) {
  if (opts_.peers.empty()) return false;
  struct Stashed {
    uint64_t seq;
    uint32_t view;
    Bytes payload;
  };
  for (size_t i = 0; i < opts_.peers.size(); i++) {
    if (stopping_.load()) return false;
    const Addr& peer = opts_.peers[(catchup_rr_ + i) % opts_.peers.size()];
    CtrlSnapshotReq req;
    req.from = opts_.replica_id;
    req.reply_uri = member_addr_.to_string();
    if (!member_->send_to(peer, encode_snapshot_req(req)).ok()) continue;
    Deadline dl = Deadline::after(opts_.catchup_timeout);
    std::vector<Stashed> stash;  // sequenced traffic racing the snapshot
    while (!dl.expired() && !stopping_.load()) {
      auto pkt_r = member_->recv(dl);
      if (!pkt_r.ok()) {
        if (pkt_r.error().code == Errc::timed_out) break;  // next peer
        return false;                                      // closed
      }
      BytesView payload = pkt_r.value().payload;
      if (auto op_r = parse_sequenced_mcast(payload); op_r.ok()) {
        const McastOp& op = op_r.value();
        stash.push_back({op.seq, op.view,
                         Bytes(op.payload.begin(), op.payload.end())});
        continue;
      }
      auto kind_r = peek_ctrl_frame(payload);
      if (!kind_r.ok()) continue;  // fetch-miss/garbage: moot after install
      if (kind_r.value() == CtrlFrameKind::view_change) {
        if (auto m_r = decode_view_change(payload); m_r.ok())
          handle_view_change(m_r.value());
        continue;
      }
      if (kind_r.value() != CtrlFrameKind::snapshot_rsp) continue;
      auto rsp_r = decode_snapshot_rsp(payload);
      if (!rsp_r.ok()) {
        BLOG(debug, "control") << opts_.replica_id << " bad snapshot: "
                               << rsp_r.error().to_string();
        continue;
      }
      const CtrlSnapshotRsp& rsp = rsp_r.value();
      // A peer behind our own apply point can't help (installing would
      // rewind acked state); try the next one.
      if (rsp.next_seq < window_.next_seq()) break;
      install_peer_snapshot(rsp, reason);
      catchup_rr_ = (catchup_rr_ + i + 1) % opts_.peers.size();
      uint32_t cur = cur_view_.load(std::memory_order_acquire);
      for (auto& s : stash) {
        if (s.view < cur) continue;
        if (s.view > cur) {
          adopt_view(s.view, "stamp");
          cur = s.view;
        }
        auto released = window_.offer(s.seq, std::move(s.payload));
        for (auto& [seq, frame] : released) apply(seq, frame);
      }
      last_seen_ = now();
      return true;
    }
  }
  BLOG(info, "control") << opts_.replica_id
                        << " catch-up found no usable peer (" << reason << ")";
  return false;
}

void DiscoveryReplica::install_peer_snapshot(const CtrlSnapshotRsp& rsp,
                                             const char* reason) {
  // Received-but-gapped items may extend past the snapshot; re-offer
  // them below (offer() drops anything the snapshot already covers).
  auto leftover = window_.take_buffered();
  state_->install_snapshot(rsp.state);
  apply_dedup_.clear();
  apply_dedup_order_.clear();
  for (const auto& [k, v] : rsp.dedup)
    if (apply_dedup_.emplace(k, v).second) apply_dedup_order_.push_back(k);
  applied_ids_.clear();
  applied_ids_order_.clear();
  for (const auto& id : rsp.applied)
    if (applied_ids_.insert(id).second) applied_ids_order_.push_back(id);
  window_ = SequencedApplyWindow(rsp.next_seq);
  {
    std::lock_guard<std::mutex> lk(server_mu_);
    if (server_) {
      server_->install_event_log(rsp.event_log, rsp.state.watch_seq);
    } else {
      boot_log_ = rsp.event_log;
      boot_log_seq_ = rsp.state.watch_seq;
    }
  }
  {
    // Reshard range state is replicated state too: a replica that
    // catches up mid-migration must keep fencing/forwarding like its
    // peers, or a client landing on it would see the moved range as
    // silently empty.
    std::lock_guard<std::mutex> rlk(reshard_mu_);
    reshard_.clear();
    for (const auto& s : rsp.reshard) {
      RangeState rs;
      rs.modulo = s.modulo;
      rs.epoch = s.epoch;
      rs.role = s.role;
      rs.phase = s.phase;
      for (const auto& uri : s.dst_rpc)
        if (auto a = Addr::parse(uri); a.ok())
          rs.dst_rpc.push_back(std::move(a).value());
      rs.migrated.insert(s.migrated_allocs.begin(), s.migrated_allocs.end());
      rs.payload = s.payload;
      if (rs.role == 1 && !rs.payload.empty()) {
        if (auto p = decode_reshard_payload(rs.payload); p.ok()) {
          rs.frozen = std::make_shared<DiscoveryState>();
          rs.frozen->set_manual_sweep(true);
          rs.frozen->install_snapshot(p.value().state);
        }
      }
      reshard_[s.range] = std::move(rs);
    }
  }
  if (rsp.view > cur_view_.load(std::memory_order_acquire))
    adopt_view(rsp.view, "snapshot");
  for (auto& [seq, frame] : leftover) {
    auto released = window_.offer(seq, std::move(frame));
    for (auto& [s, f] : released) apply(s, f);
  }
  catchups_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.stats) opts_.stats->catchups.fetch_add(1);
  if (opts_.tracer) {
    Span span = trace_span(opts_.tracer, "ctrl.catchup");
    span.tag("from", rsp.from);
    span.tag("reason", reason);
    span.tag_u64("next_seq", rsp.next_seq);
    span.tag_u64("view", rsp.view);
  }
  BLOG(info, "control") << opts_.replica_id << " installed snapshot from "
                        << rsp.from << " at seq " << rsp.next_seq << " ("
                        << reason << ")";
}

void DiscoveryReplica::serve_snapshot(const CtrlSnapshotReq& req) {
  if (!ready_.load(std::memory_order_acquire)) return;  // catching up too
  auto to_r = Addr::parse(req.reply_uri);
  if (!to_r.ok()) return;
  CtrlSnapshotRsp rsp;
  rsp.from = opts_.replica_id;
  rsp.view = cur_view_.load(std::memory_order_acquire);
  // Consistent cut: next_seq, state, dedup, and applied-ids all reflect
  // the same apply point because only this (member) thread applies.
  rsp.next_seq = window_.next_seq();
  rsp.state = state_->export_snapshot();
  rsp.dedup.reserve(apply_dedup_order_.size());
  for (const auto& k : apply_dedup_order_) {
    auto it = apply_dedup_.find(k);
    if (it != apply_dedup_.end()) rsp.dedup.emplace_back(k, it->second);
  }
  rsp.applied.assign(applied_ids_order_.begin(), applied_ids_order_.end());
  {
    std::lock_guard<std::mutex> lk(server_mu_);
    if (server_) {
      rsp.event_log =
          server_->export_event_log(rsp.state.watch_seq, Deadline::after(ms(100)));
    } else {
      rsp.event_log.pruned_through = rsp.state.watch_seq;
      rsp.event_log.observed_through = rsp.state.watch_seq;
    }
  }
  {
    std::lock_guard<std::mutex> rlk(reshard_mu_);
    for (const auto& [range, rs] : reshard_) {
      ReshardRangeState s;
      s.range = range;
      s.modulo = rs.modulo;
      s.epoch = rs.epoch;
      s.role = rs.role;
      s.phase = rs.phase;
      for (const auto& a : rs.dst_rpc) s.dst_rpc.push_back(a.to_string());
      s.migrated_allocs.assign(rs.migrated.begin(), rs.migrated.end());
      std::sort(s.migrated_allocs.begin(), s.migrated_allocs.end());
      s.payload = rs.payload;
      rsp.reshard.push_back(std::move(s));
    }
  }
  (void)member_->send_to(to_r.value(), encode_snapshot_rsp(rsp));
  snapshots_served_.fetch_add(1, std::memory_order_relaxed);
  BLOG(info, "control") << opts_.replica_id << " served snapshot to "
                        << req.from << " at seq " << rsp.next_seq;
}

void DiscoveryReplica::record_applied_id(std::string op_id) {
  if (op_id.empty()) return;
  if (!applied_ids_.insert(op_id).second) return;
  applied_ids_order_.push_back(std::move(op_id));
  if (applied_ids_order_.size() > kAppliedIdsCap) {
    applied_ids_.erase(applied_ids_order_.front());
    applied_ids_order_.pop_front();
  }
}

void DiscoveryReplica::apply(uint64_t seq, BytesView ctrl_frame) {
  // The sequencer emits an empty payload to announce a new view (it
  // consumes a seq so the window stays contiguous): nothing to apply.
  if (ctrl_frame.empty()) return;
  auto op_r = decode_ctrl_op(ctrl_frame);
  if (!op_r.ok()) {
    BLOG(debug, "control") << "undecodable ctrl op: "
                           << op_r.error().to_string();
    return;
  }
  CtrlOp op = std::move(op_r).value();
  // Origin-stamped time: every replica computes identical lease expiry.
  // (Single steady-clock domain per deployment; a multi-host cluster
  // would substitute a hybrid clock here.)
  TimePoint at{Duration(op.time_ns)};
  Bytes encoded;

  if (op.kind == CtrlOpKind::sweep) {
    size_t reaped = state_->expire_leases_at(at);
    if (reaped > 0 && opts_.tracer) {
      Span span = trace_span(opts_.tracer, "ctrl.apply");
      span.tag("op", "sweep");
      span.tag_u64("seq", seq);
      span.tag_u64("reaped", reaped);
    }
    applied_.fetch_add(1, std::memory_order_relaxed);
  } else if (op.kind == CtrlOpKind::reshard) {
    auto rop_r = decode_reshard_op(op.req);
    if (!rop_r.ok()) return;
    const ReshardOp& rop = rop_r.value();
    std::string op_id;
    if (op.submit_id != 0 && !op.origin.empty())
      op_id = op.origin + "#" + std::to_string(op.submit_id);
    // apply_reshard is phase-monotonic (duplicates no-op), but the
    // applied-ids guard keeps a double-sequenced coordinator retry from
    // even logging twice.
    if (op_id.empty() || applied_ids_.count(op_id) == 0) {
      apply_reshard(rop, seq);
      record_applied_id(std::move(op_id));
    }
    // Always ack — including duplicates — so coordinator retries
    // converge even when the first ack was lost.
    if (!rop.reply_uri.empty()) {
      if (auto to = Addr::parse(rop.reply_uri); to.ok()) {
        ReshardAck ack;
        ack.cmd_id = rop.cmd_id;
        ack.from = opts_.replica_id;
        (void)member_->send_to(to.value(), encode_reshard_ack(ack));
      }
    }
    applied_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto req_r = decode_request(op.req);
    if (!req_r.ok()) return;
    DiscRequest req = std::move(req_r).value();
    Span span = trace_span(opts_.tracer, "ctrl.apply", req.trace);
    span.tag("op", serve_span_name(req.op));
    span.tag("origin", op.origin);
    span.tag_u64("seq", seq);

    // At-most-once across re-proposal: a view change re-sends in-flight
    // ops, and the original stamp may have landed too. The applied-ids
    // set is replicated state (snapshot-transferred, FIFO-bounded), so
    // every replica skips the same duplicates.
    std::string op_id;
    if (op.submit_id != 0 && !op.origin.empty())
      op_id = op.origin + "#" + std::to_string(op.submit_id);
    bool replayed = !op_id.empty() && applied_ids_.count(op_id) > 0;

    // Replicated idempotency: a client retry that was re-proposed (e.g.
    // it landed on a different replica after failover) must not execute
    // twice. The cache is part of the replicated state — maintained only
    // from sequenced ops, bounded FIFO for deterministic eviction — so
    // every replica agrees on which (client, idem) pairs are spent.
    std::string dedup_key;
    if (is_mutation(req.op) && req.idem_key != 0 && !req.client_id.empty())
      dedup_key = req.client_id + "#" + std::to_string(req.idem_key);
    auto hit = dedup_key.empty() ? apply_dedup_.end()
                                 : apply_dedup_.find(dedup_key);
    if (replayed) {
      // Second sequencing of the same proposal: don't execute. Answer
      // the waiter from the cache when possible; otherwise the client's
      // own retry gets absorbed by it.
      if (hit != apply_dedup_.end()) encoded = hit->second;
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      span.tag("replayed", "1");
    } else if (hit != apply_dedup_.end()) {
      encoded = hit->second;
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      span.tag("dedup", "1");
      record_applied_id(std::move(op_id));
    } else {
      DiscResponse rsp = execute_request(*state_, req, at);
      if (!rsp.success) span.tag("error", rsp.error);
      encoded = encode_response(rsp);
      if (!dedup_key.empty() &&
          apply_dedup_.emplace(dedup_key, encoded).second) {
        apply_dedup_order_.push_back(dedup_key);
        if (apply_dedup_order_.size() > kApplyDedupCap) {
          apply_dedup_.erase(apply_dedup_order_.front());
          apply_dedup_order_.pop_front();
        }
      }
      record_applied_id(std::move(op_id));
    }
    applied_.fetch_add(1, std::memory_order_relaxed);
  }

  // Our own proposal came back out of the sequencer: the mutation is
  // replicated, answer the waiting client RPC. (A replayed op with no
  // cached response leaves the waiter to time out transiently.)
  if (op.submit_id != 0 && op.origin == opts_.replica_id &&
      !encoded.empty()) {
    std::shared_ptr<PendingApply> w;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto it = pending_.find(op.submit_id);
      if (it != pending_.end()) w = it->second;
    }
    if (w) {
      std::lock_guard<std::mutex> wlk(w->mu);
      w->response = std::move(encoded);
      w->done = true;
      w->cv.notify_all();
    }
  }
}

// --- Online repartitioning ---

namespace {
uint64_t bucket_of(const std::string& key, uint64_t modulo) {
  return shard_pick(
      BytesView(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
      static_cast<size_t>(modulo));
}
}  // namespace

void DiscoveryReplica::apply_reshard(const ReshardOp& rop, uint64_t seq) {
  std::vector<Addr> dst;
  for (const auto& uri : rop.dst_rpc)
    if (auto a = Addr::parse(uri); a.ok()) dst.push_back(std::move(a).value());

  std::lock_guard<std::mutex> lk(reshard_mu_);
  // Idempotence across coordinator retries and migrations: within one
  // migration (epoch) phases are monotonic, and a newer migration of the
  // same range supersedes whatever marker an older one left behind.
  auto stale_or_dup = [&](uint64_t range) {
    auto it = reshard_.find(range);
    if (it == reshard_.end() || it->second.phase == 0) return false;
    if (it->second.epoch > rop.epoch) return true;  // op from an older epoch
    if (it->second.epoch == rop.epoch &&
        it->second.phase >= static_cast<uint8_t>(rop.phase))
      return true;  // duplicate of an applied phase
    if (it->second.epoch < rop.epoch) it->second = RangeState{};
    return false;
  };
  const char* phase_name = "?";
  switch (rop.phase) {
    case ReshardPhase::fence: {
      phase_name = "fence";
      if (stale_or_dup(rop.range)) break;
      auto& rs = reshard_[rop.range];
      rs.modulo = rop.modulo;
      rs.epoch = rop.epoch;
      rs.role = 1;
      rs.dst_rpc = dst;
      // The consistent cut happens AT this apply point: nothing later in
      // the op stream (sweeps included) can touch the range or emit
      // events for it, because it is no longer in the live state.
      DiscoverySnapshot cut = state_->extract_range(rop.modulo, rop.range);
      ReshardPayload p;
      p.dedup.reserve(apply_dedup_order_.size());
      for (const auto& k : apply_dedup_order_) {
        auto dit = apply_dedup_.find(k);
        if (dit != apply_dedup_.end()) p.dedup.emplace_back(k, dit->second);
      }
      p.applied.assign(applied_ids_order_.begin(), applied_ids_order_.end());
      {
        std::lock_guard<std::mutex> slk(server_mu_);
        if (server_) {
          p.event_log = server_->export_event_log(cut.watch_seq,
                                                  Deadline::after(ms(100)));
        } else {
          p.event_log.pruned_through = cut.watch_seq;
          p.event_log.observed_through = cut.watch_seq;
        }
      }
      for (const auto& a : cut.allocs) rs.migrated.insert(a.id);
      rs.frozen = std::make_shared<DiscoveryState>();
      rs.frozen->set_manual_sweep(true);
      rs.frozen->install_snapshot(cut);
      p.state = std::move(cut);
      rs.payload = encode_reshard_payload(p);
      rs.phase = static_cast<uint8_t>(ReshardPhase::fence);
      if (opts_.stats) opts_.stats->reshard_fences.fetch_add(1);
      break;
    }
    case ReshardPhase::install: {
      phase_name = "install";
      if (stale_or_dup(rop.range)) break;
      auto pay_r = decode_reshard_payload(rop.payload);
      if (!pay_r.ok()) {
        BLOG(info, "control") << opts_.replica_id << " undecodable reshard "
                              << "payload: " << pay_r.error().to_string();
        break;
      }
      const ReshardPayload& pay = pay_r.value();
      // A brand-new destination (split) has never published an event, so
      // it adopts the source's event log and seq outright — the range's
      // watch domain forks and subscribers seq-resume. An established
      // destination (merge) keeps its own log; the max-seq merge below
      // means re-homed subscribers fall back to a snapshot batch instead
      // of seeing a seq rewind.
      bool fresh = state_->catalogue_snapshot().second == 0;
      state_->ingest_snapshot(pay.state, /*emit_events=*/!fresh);
      for (const auto& [k, v] : pay.dedup) {
        if (apply_dedup_.emplace(k, v).second) {
          apply_dedup_order_.push_back(k);
          if (apply_dedup_order_.size() > kApplyDedupCap) {
            apply_dedup_.erase(apply_dedup_order_.front());
            apply_dedup_order_.pop_front();
          }
        }
      }
      for (const auto& id : pay.applied) record_applied_id(id);
      if (fresh) {
        std::lock_guard<std::mutex> slk(server_mu_);
        if (server_) {
          server_->install_event_log(pay.event_log, pay.state.watch_seq);
        } else {
          boot_log_ = pay.event_log;
          boot_log_seq_ = pay.state.watch_seq;
        }
      }
      auto& rs = reshard_[rop.range];
      rs.modulo = rop.modulo;
      rs.epoch = rop.epoch;
      rs.role = 2;
      rs.phase = static_cast<uint8_t>(ReshardPhase::install);
      if (opts_.stats) opts_.stats->reshard_installs.fetch_add(1);
      break;
    }
    case ReshardPhase::cutover: {
      phase_name = "cutover";
      if (stale_or_dup(rop.range)) break;
      auto& rs = reshard_[rop.range];
      rs.modulo = rop.modulo;
      rs.epoch = rop.epoch;
      rs.role = 1;
      if (!dst.empty()) rs.dst_rpc = dst;
      // Frozen reads end here: every range request — stale-client
      // queries, mutations, releases of migrated allocs — now forwards
      // one hop to the new home.
      rs.frozen.reset();
      rs.payload.clear();
      rs.phase = static_cast<uint8_t>(ReshardPhase::cutover);
      if (opts_.stats) opts_.stats->reshard_cutovers.fetch_add(1);
      break;
    }
    case ReshardPhase::retire: {
      phase_name = "retire";
      auto it = reshard_.find(rop.range);
      if (it != reshard_.end() && it->second.epoch <= rop.epoch)
        reshard_.erase(it);
      break;
    }
  }
  if (opts_.tracer) {
    Span span = trace_span(opts_.tracer, std::string("ctrl.reshard.") +
                                             phase_name);
    span.tag_u64("range", rop.range);
    span.tag_u64("modulo", rop.modulo);
    span.tag_u64("epoch", rop.epoch);
    span.tag_u64("seq", seq);
  }
  BLOG(info, "control") << opts_.replica_id << " reshard " << phase_name
                        << " range " << rop.range << "/" << rop.modulo
                        << " epoch " << rop.epoch;
}

void DiscoveryReplica::handle_reshard_snapshot_req(
    const ReshardSnapshotReq& req) {
  auto to = Addr::parse(req.reply_uri);
  if (!to.ok()) return;
  ReshardSnapshotRsp rsp;
  rsp.range = req.range;
  rsp.from = opts_.replica_id;
  {
    std::lock_guard<std::mutex> lk(reshard_mu_);
    auto it = reshard_.find(req.range);
    if (it == reshard_.end() || it->second.role != 1 ||
        it->second.modulo != req.modulo || it->second.payload.empty())
      return;  // not fenced here (yet): coordinator retries elsewhere
    rsp.payload = it->second.payload;
  }
  (void)member_->send_to(to.value(), encode_reshard_snapshot_rsp(rsp));
}

std::optional<DiscResponse> DiscoveryReplica::intercept(
    const DiscRequest& req) {
  enum class Act { none, unavail, frozen_query, fwd, spans };
  Act act = Act::none;
  std::shared_ptr<DiscoveryState> frozen;
  std::vector<Addr> dst;
  {
    std::lock_guard<std::mutex> lk(reshard_mu_);
    if (reshard_.empty()) return std::nullopt;
    // Source-side range lookup for one scope key.
    auto range_for = [&](const std::string& key) -> RangeState* {
      for (auto& [range, rs] : reshard_) {
        if (rs.role != 1 || rs.phase == 0) continue;
        if (bucket_of(key, rs.modulo) == range) return &rs;
      }
      return nullptr;
    };
    auto classify = [&](RangeState* rs) {
      if (!rs) return;
      if (rs->phase == static_cast<uint8_t>(ReshardPhase::fence)) {
        if (req.op == DiscOp::query && rs->frozen) {
          act = Act::frozen_query;
          frozen = rs->frozen;
        } else {
          act = Act::unavail;
        }
      } else if (rs->phase >= static_cast<uint8_t>(ReshardPhase::cutover)) {
        act = Act::fwd;
        dst = rs->dst_rpc;
      }
    };
    switch (req.op) {
      case DiscOp::register_impl:
        if (req.entry) classify(range_for(req.entry->type));
        break;
      case DiscOp::unregister_impl:
      case DiscOp::query:
      case DiscOp::set_pool:
        classify(range_for(req.type));
        break;
      case DiscOp::acquire: {
        RangeState* first = nullptr;
        bool mixed = false;
        for (const auto& r : req.resources) {
          RangeState* rs = range_for(r.pool);
          if (!first) first = rs;
          if (rs != first) mixed = true;
        }
        if (mixed && first)
          act = Act::spans;  // pools straddle a migration boundary
        else
          classify(first);
        break;
      }
      case DiscOp::release: {
        for (auto& [range, rs] : reshard_) {
          if (rs.role != 1 || rs.migrated.count(req.alloc_id) == 0) continue;
          classify(&rs);
          break;
        }
        break;
      }
      case DiscOp::heartbeat:
        break;  // handled below (mirror + local execution)
    }
  }
  if (req.op == DiscOp::heartbeat) {
    mirror_heartbeat(req);
    return std::nullopt;
  }
  switch (act) {
    case Act::none:
      return std::nullopt;
    case Act::unavail:
      return error_response(
          err(Errc::unavailable, "key range fenced for migration"));
    case Act::spans:
      return error_response(err(
          Errc::invalid_argument,
          "acquire spans partitions: pools split by an in-flight reshard"));
    case Act::frozen_query:
      return execute_request(*frozen, req, now());
    case Act::fwd: {
      auto r = forward(req, dst);
      if (!r.ok()) return error_response(r.error());
      return std::move(r).value();
    }
  }
  return std::nullopt;
}

Result<DiscResponse> DiscoveryReplica::forward(const DiscRequest& req,
                                               const std::vector<Addr>& dst) {
  if (dst.empty())
    return err(Errc::unavailable, "resharded range has no forward target");
  std::lock_guard<std::mutex> lk(fwd_mu_);
  if (!fwd_) {
    if (!opts_.forward_bind)
      return err(Errc::unavailable, "replica has no forward transport");
    auto t = opts_.forward_bind();
    if (!t.ok()) return t.error();
    fwd_ = std::move(t).value();
  }
  // One-shot RPC with the client's own identity: the destination's
  // replicated dedup cache (which migrated with the range) still keys on
  // the original client#idem, so a forwarded retry stays exactly-once.
  uint64_t token = fwd_token_.fetch_add(1) + 1;
  Bytes frame = encode_frame(MsgKind::discovery, token, encode_request(req));
  for (const auto& d : dst) {
    if (stopping_.load()) break;
    if (!fwd_->send_to(d, frame).ok()) continue;
    Deadline dl = Deadline::after(opts_.forward_timeout);
    while (!dl.expired() && !stopping_.load()) {
      auto pkt = fwd_->recv(dl);
      if (!pkt.ok()) break;
      auto fr = decode_frame(pkt.value().payload);
      if (!fr.ok() || fr.value().kind != MsgKind::discovery ||
          fr.value().token != token)
        continue;  // stray mirror response from an earlier forward
      auto rsp = decode_response(fr.value().payload);
      if (!rsp.ok()) break;
      reshard_forwards_.fetch_add(1, std::memory_order_relaxed);
      if (opts_.stats) opts_.stats->reshard_forwards.fetch_add(1);
      return std::move(rsp).value();
    }
  }
  // Transient by design: the client retries, and usually re-steers to
  // the new home from the pushed membership before the next attempt.
  return err(Errc::unavailable, "new range home unreachable (forward)");
}

void DiscoveryReplica::mirror_heartbeat(const DiscRequest& req) {
  std::vector<Addr> dst;
  {
    std::lock_guard<std::mutex> lk(reshard_mu_);
    for (const auto& [range, rs] : reshard_) {
      if (rs.role != 1 ||
          rs.phase < static_cast<uint8_t>(ReshardPhase::cutover))
        continue;
      for (const auto& a : rs.dst_rpc) {
        bool dup = false;
        for (const auto& have : dst) dup = dup || have == a;
        if (!dup) dst.push_back(a);
      }
    }
  }
  if (dst.empty()) return;
  std::lock_guard<std::mutex> lk(fwd_mu_);
  if (!fwd_) {
    if (!opts_.forward_bind) return;
    auto t = opts_.forward_bind();
    if (!t.ok()) return;
    fwd_ = std::move(t).value();
  }
  // Fire-and-forget: responses (if any) are drained and discarded by the
  // next forward's token filter. The migrated lease rows keep their
  // original owners, who still heartbeat *us* — the mirror is what keeps
  // those rows alive on the new home until the owners re-steer.
  uint64_t token = fwd_token_.fetch_add(1) + 1;
  Bytes frame = encode_frame(MsgKind::discovery, token, encode_request(req));
  for (const auto& d : dst) (void)fwd_->send_to(d, frame);
}

void DiscoveryReplica::sweep_loop() {
  std::unique_lock<std::mutex> lk(sweep_mu_);
  while (!stopping_.load()) {
    sweep_cv_.wait_for(lk, opts_.sweep_period);
    if (stopping_.load()) return;
    // Idempotent replicated sweep: every replica proposes one, all
    // replicas apply all of them; expiry happens at a point *in the op
    // stream*, not at a local clock tick. The steady trickle doubles as
    // keepalive traffic that exposes sequence gaps promptly — and as the
    // sequencer liveness signal view-change detection relies on.
    CtrlOp op;
    op.kind = CtrlOpKind::sweep;
    op.origin = opts_.replica_id;
    op.time_ns = now().time_since_epoch().count();
    (void)member_->send_to(
        sequencer_for(cur_view_.load(std::memory_order_acquire)),
        mcast_frame(member_addr_, encode_ctrl_op(op)));
  }
}

}  // namespace bertha
