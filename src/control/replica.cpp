#include "control/replica.hpp"

#include "apps/rsm.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "util/log.hpp"

namespace bertha {

Result<std::unique_ptr<DiscoveryReplica>> DiscoveryReplica::start(
    TransportPtr rpc_transport, TransportPtr member,
    DiscoveryReplicaOptions opts) {
  if (!rpc_transport || !member)
    return err(Errc::invalid_argument, "replica needs rpc + member transports");
  if (opts.replica_id.empty())
    return err(Errc::invalid_argument, "replica needs an id");
  if (!opts.sequencer.valid())
    return err(Errc::invalid_argument, "replica needs a sequencer address");

  std::shared_ptr<Transport> member_shared(std::move(member));
  auto rep = std::unique_ptr<DiscoveryReplica>(
      new DiscoveryReplica(std::move(member_shared), std::move(opts)));

  DiscoveryServer::Options sopts = rep->opts_.server;
  if (!sopts.tracer) sopts.tracer = rep->opts_.tracer;
  // The server routes every mutation here; `rep` outlives the server
  // (stop() tears the server down first).
  DiscoveryReplica* raw = rep.get();
  sopts.mutation_executor = [raw](const DiscRequest& req) {
    return raw->propose(req);
  };
  rep->rpc_addr_ = rpc_transport->local_addr();
  rep->server_ = std::make_unique<DiscoveryServer>(std::move(rpc_transport),
                                                   rep->state_, sopts);
  rep->member_thread_ = std::thread([raw] { raw->member_loop(); });
  if (rep->opts_.sweep_period > Duration::zero())
    rep->sweep_thread_ = std::thread([raw] { raw->sweep_loop(); });
  return rep;
}

DiscoveryReplica::DiscoveryReplica(std::shared_ptr<Transport> member,
                                   DiscoveryReplicaOptions opts)
    : member_(std::move(member)),
      member_addr_(member_->local_addr()),
      opts_(std::move(opts)),
      state_(std::make_shared<DiscoveryState>()) {
  // Replicated state: no local-clock sweeps, partition-namespaced ids.
  state_->set_manual_sweep(true);
  state_->set_alloc_namespace(opts_.partition_index);
  if (opts_.stats) state_->set_fault_stats(opts_.stats);
}

DiscoveryReplica::~DiscoveryReplica() { stop(); }

void DiscoveryReplica::stop() {
  if (stopping_.exchange(true)) return;
  // Wake proposals first so server threads blocked in propose() bail out
  // with unavailable instead of riding out apply_timeout.
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (auto& [id, w] : pending_) {
      std::lock_guard<std::mutex> wlk(w->mu);
      w->cv.notify_all();
    }
  }
  server_.reset();  // closes the rpc transport, joins serve/push threads
  sweep_cv_.notify_all();
  if (sweep_thread_.joinable()) sweep_thread_.join();
  member_->close();
  if (member_thread_.joinable()) member_thread_.join();
}

DiscResponse DiscoveryReplica::propose(const DiscRequest& req) {
  if (stopping_.load())
    return error_response(err(Errc::unavailable, "replica stopping"));
  CtrlOp op;
  op.kind = CtrlOpKind::disc;
  op.origin = opts_.replica_id;
  op.submit_id = next_submit_.fetch_add(1) + 1;
  op.time_ns = now().time_since_epoch().count();
  op.req = encode_request(req);

  auto waiter = std::make_shared<PendingApply>();
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_[op.submit_id] = waiter;
  }
  auto sent =
      member_->send_to(opts_.sequencer, mcast_frame(member_addr_, encode_ctrl_op(op)));
  bool done = false;
  DiscResponse rsp;
  if (sent.ok()) {
    std::unique_lock<std::mutex> lk(waiter->mu);
    waiter->cv.wait_for(lk, opts_.apply_timeout,
                        [&] { return waiter->done || stopping_.load(); });
    done = waiter->done;
    if (done) {
      auto decoded = decode_response(waiter->response);
      rsp = decoded.ok()
                ? std::move(decoded).value()
                : error_response(err(Errc::internal, "bad replicated response"));
    }
  }
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_.erase(op.submit_id);
  }
  if (!done)
    // Transient: the server does not dedup-cache this, so the client's
    // retry (same idem key) re-proposes and the apply-side cache absorbs
    // any duplicate execution.
    return error_response(
        err(Errc::unavailable, "replication timed out (op not sequenced)"));
  return rsp;
}

void DiscoveryReplica::member_loop() {
  SequencedApplyWindow window;
  bool fetch_sent = false;
  TimePoint gap_since{};
  for (;;) {
    Deadline d = window.has_gap() ? Deadline::after(opts_.gap_timeout)
                                  : Deadline::never();
    auto pkt_r = member_->recv(d);
    if (!pkt_r.ok()) {
      if (pkt_r.error().code != Errc::timed_out) return;  // closed
    } else {
      auto op_r = parse_sequenced_mcast(pkt_r.value().payload);
      if (op_r.ok()) {
        const McastOp& op = op_r.value();
        auto released =
            window.offer(op.seq, Bytes(op.payload.begin(), op.payload.end()));
        for (auto& [seq, frame] : released) apply(seq, frame);
      }
    }
    if (!window.has_gap()) {
      fetch_sent = false;
      continue;
    }
    if (!fetch_sent) {
      // First resort: ask the sequencer to re-send the missing range.
      (void)member_->send_to(
          opts_.sequencer,
          mcast_fetch_frame(member_addr_, window.next_seq(), window.gap_end()));
      fetches_.fetch_add(1, std::memory_order_relaxed);
      fetch_sent = true;
      gap_since = now();
    } else if (now() - gap_since >= opts_.gap_timeout) {
      // Retransmission didn't land either; skip like the datapath does.
      auto released = window.skip_to(window.gap_end());
      gaps_skipped_.fetch_add(1, std::memory_order_relaxed);
      BLOG(debug, "control") << opts_.replica_id << " skipped seq gap";
      for (auto& [seq, frame] : released) apply(seq, frame);
      fetch_sent = false;  // a further gap gets its own fetch
    }
  }
}

void DiscoveryReplica::apply(uint64_t seq, BytesView ctrl_frame) {
  auto op_r = decode_ctrl_op(ctrl_frame);
  if (!op_r.ok()) {
    BLOG(debug, "control") << "undecodable ctrl op: "
                           << op_r.error().to_string();
    return;
  }
  CtrlOp op = std::move(op_r).value();
  // Origin-stamped time: every replica computes identical lease expiry.
  // (Single steady-clock domain per deployment; a multi-host cluster
  // would substitute a hybrid clock here.)
  TimePoint at{Duration(op.time_ns)};
  Bytes encoded;

  if (op.kind == CtrlOpKind::sweep) {
    size_t reaped = state_->expire_leases_at(at);
    if (reaped > 0 && opts_.tracer) {
      Span span = trace_span(opts_.tracer, "ctrl.apply");
      span.tag("op", "sweep");
      span.tag_u64("seq", seq);
      span.tag_u64("reaped", reaped);
    }
    applied_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto req_r = decode_request(op.req);
    if (!req_r.ok()) return;
    DiscRequest req = std::move(req_r).value();
    Span span = trace_span(opts_.tracer, "ctrl.apply", req.trace);
    span.tag("op", serve_span_name(req.op));
    span.tag("origin", op.origin);
    span.tag_u64("seq", seq);

    // Replicated idempotency: a client retry that was re-proposed (e.g.
    // it landed on a different replica after failover) must not execute
    // twice. The cache is part of the replicated state — maintained only
    // from sequenced ops, bounded FIFO for deterministic eviction — so
    // every replica agrees on which (client, idem) pairs are spent.
    std::string dedup_key;
    if (is_mutation(req.op) && req.idem_key != 0 && !req.client_id.empty())
      dedup_key = req.client_id + "#" + std::to_string(req.idem_key);
    auto hit = dedup_key.empty() ? apply_dedup_.end()
                                 : apply_dedup_.find(dedup_key);
    if (hit != apply_dedup_.end()) {
      encoded = hit->second;
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      span.tag("dedup", "1");
    } else {
      DiscResponse rsp = execute_request(*state_, req, at);
      if (!rsp.success) span.tag("error", rsp.error);
      encoded = encode_response(rsp);
      if (!dedup_key.empty() &&
          apply_dedup_.emplace(dedup_key, encoded).second) {
        apply_dedup_order_.push_back(dedup_key);
        if (apply_dedup_order_.size() > kApplyDedupCap) {
          apply_dedup_.erase(apply_dedup_order_.front());
          apply_dedup_order_.pop_front();
        }
      }
    }
    applied_.fetch_add(1, std::memory_order_relaxed);
  }

  // Our own proposal came back out of the sequencer: the mutation is
  // replicated, answer the waiting client RPC.
  if (op.submit_id != 0 && op.origin == opts_.replica_id) {
    std::shared_ptr<PendingApply> w;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto it = pending_.find(op.submit_id);
      if (it != pending_.end()) w = it->second;
    }
    if (w) {
      std::lock_guard<std::mutex> wlk(w->mu);
      w->response = std::move(encoded);
      w->done = true;
      w->cv.notify_all();
    }
  }
}

void DiscoveryReplica::sweep_loop() {
  std::unique_lock<std::mutex> lk(sweep_mu_);
  while (!stopping_.load()) {
    sweep_cv_.wait_for(lk, opts_.sweep_period);
    if (stopping_.load()) return;
    // Idempotent replicated sweep: every replica proposes one, all
    // replicas apply all of them; expiry happens at a point *in the op
    // stream*, not at a local clock tick. The steady trickle doubles as
    // keepalive traffic that exposes sequence gaps promptly.
    CtrlOp op;
    op.kind = CtrlOpKind::sweep;
    op.origin = opts_.replica_id;
    op.time_ns = now().time_since_epoch().count();
    (void)member_->send_to(opts_.sequencer,
                           mcast_frame(member_addr_, encode_ctrl_op(op)));
  }
}

}  // namespace bertha
