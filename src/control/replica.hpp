// One replica of one discovery control-plane partition.
//
// A DiscoveryReplica owns a full DiscoveryState copy of its partition's
// catalogue and a DiscoveryServer that serves clients from it. Queries
// and watch streams serve purely locally; every mutation is routed
// through the partition's ordered-multicast sequencer (the NOPaxos
// pattern, chunnels/ordered_mcast.hpp) and applied — in identical global
// order, at the op's origin-stamped time — by every replica of the
// group. Because the apply stream is identical, so is every derived
// artifact: the catalogue, the lease table, the allocation ids, the
// idempotency cache, and crucially the watch-event sequence — which is
// what lets a client fail over to another replica and resume its watch
// stream by seq alone, no snapshot needed.
//
// Self-healing (see DESIGN.md §9):
//
//  * Catch-up. A joining or restarted replica (catch_up = true) fetches
//    a consistent snapshot — catalogue, leases, replicated dedup cache,
//    applied-proposal ids, watch event log, next expected seq — from a
//    live peer over control_wire snapshot frames, installs it, and only
//    then starts its DiscoveryServer. The sequenced suffix past the
//    snapshot replays through the normal gap-fetch path.
//
//  * Gap handling. A replica that sees a sequence gap first asks the
//    sequencer to retransmit from its bounded log (mcast_fetch_frame).
//    If the range was evicted the sequencer answers with a miss frame
//    and the replica catches up from a peer instead of skipping; the
//    bounded skip of the datapath remains only as the last resort when
//    no peer can help.
//
//  * Sequencer view change (the NOPaxos view-change analogue). Every
//    stamp carries a view number. When sequenced traffic goes silent
//    for view_silence_timeout (replicated sweeps double as keepalives),
//    replicas broadcast view-change messages carrying their last
//    contiguous seq; once a majority acks the new view, the next
//    sequencer from the candidate list is activated at the quorum's max
//    seq. In-flight proposals are re-sent to the new sequencer, and the
//    replicated applied-proposal ids make re-proposed ops at-most-once.
//
// Lease expiry is replicated too: each replica proposes an idempotent
// sweep op on a timer (CtrlOpKind::sweep) instead of sweeping from its
// local clock, so all replicas reap the same owners at the same point
// in the op stream. The local DiscoveryState runs with manual sweep and
// a partition-namespaced allocation counter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/rsm.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "control/control_wire.hpp"
#include "core/discovery.hpp"

namespace bertha {

struct DiscoveryReplicaOptions {
  std::string replica_id;      // unique across the cluster (e.g. "p0-r1")
  uint64_t partition_index = 0;  // alloc-id namespace for this partition
  Addr sequencer;              // where proposals go (view-0 sequencer)
  // Sequencer candidate list for view changes: view v is served by
  // sequencers[v % size]. When empty, `sequencer` serves every view
  // (no failover).
  std::vector<Addr> sequencers;
  // Member addresses of the sibling replicas of this partition — the
  // catch-up sources and view-change quorum. Majority is computed over
  // peers.size() + 1.
  std::vector<Addr> peers;
  // Joining/restarting: install a peer snapshot (and only then start
  // serving) instead of assuming the partition starts empty.
  bool catch_up = false;
  // How long a proposal waits for its own op to come back out of the
  // sequencer before the client RPC fails transiently (the client
  // retries; the idempotency cache absorbs duplicates).
  Duration apply_timeout = ms(500);
  // Period of proposed lease-sweep ops; zero disables (tests drive
  // expiry by proposing their own sweeps).
  Duration sweep_period = ms(50);
  // Gap recovery: how long after the retransmit fetch a head-of-line
  // gap may persist before catch-up (then skip) takes over.
  Duration gap_timeout = ms(20);
  // Per-peer wait for a catch-up snapshot response.
  Duration catchup_timeout = ms(250);
  // Sequencer failure detection: sequenced-traffic silence before a
  // view-change round starts. Zero disables; detection also requires
  // at least two sequencer candidates and expected traffic (sweeps on,
  // or proposals in flight).
  Duration view_silence_timeout = Duration::zero();
  // Grace collecting view-change acks past the majority before sending
  // view-start to the new sequencer.
  Duration view_ack_timeout = ms(50);
  // Online repartitioning: factory for the one-shot transport used to
  // forward cut-over range requests to their new home (and mirror
  // heartbeats during the handoff). Bound lazily on first forward, so
  // clusters that never reshard pay nothing. Unset: forwards fail
  // transiently (stale clients retry until they re-steer).
  std::function<Result<TransportPtr>()> forward_bind;
  // Per-destination-replica wait for a forwarded request's response.
  Duration forward_timeout = ms(250);
  DiscoveryServer::Options server;  // serving options (tracer, coalesce…)
  TracerPtr tracer;                 // ctrl.apply / ctrl.catchup / view spans
  FaultStatsPtr stats;
};

class DiscoveryReplica {
 public:
  // `rpc_transport` serves client RPCs (DiscoveryServer); `member`
  // receives the sequenced op stream and sends proposals. Both are
  // owned; tests pass fault-injecting wrappers. With catch_up set the
  // DiscoveryServer starts only after a peer snapshot installs (see
  // wait_ready()).
  static Result<std::unique_ptr<DiscoveryReplica>> start(
      TransportPtr rpc_transport, TransportPtr member,
      DiscoveryReplicaOptions opts);
  ~DiscoveryReplica();

  DiscoveryReplica(const DiscoveryReplica&) = delete;
  DiscoveryReplica& operator=(const DiscoveryReplica&) = delete;

  const std::string& replica_id() const { return opts_.replica_id; }
  const Addr& rpc_addr() const { return rpc_addr_; }
  const Addr& member_addr() const { return member_addr_; }
  // Valid only once ready() (always true for non-catch-up replicas).
  DiscoveryServer& server() { return *server_; }
  const std::shared_ptr<DiscoveryState>& state() const { return state_; }

  // False while a catch-up boot is still installing the peer snapshot.
  bool ready() const { return ready_.load(std::memory_order_acquire); }
  bool wait_ready(Duration timeout);

  // Ops applied from the sequenced stream (including sweeps).
  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }
  // Head-of-line gaps abandoned after retransmission AND catch-up failed.
  uint64_t gaps_skipped() const {
    return gaps_skipped_.load(std::memory_order_relaxed);
  }
  // Retransmit fetches sent to the sequencer.
  uint64_t fetches() const { return fetches_.load(std::memory_order_relaxed); }
  // Mutations answered from the replicated idempotency cache at apply.
  uint64_t replicated_dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }
  // Peer snapshots installed (boot + gap-miss recovery).
  uint64_t catchups() const {
    return catchups_.load(std::memory_order_relaxed);
  }
  // Fetches answered "range evicted" by the sequencer.
  uint64_t gap_misses() const {
    return gap_misses_.load(std::memory_order_relaxed);
  }
  // Sequencer views adopted (from stamps or snapshots).
  uint64_t view_changes() const {
    return view_changes_.load(std::memory_order_relaxed);
  }
  // Snapshots served to catching-up peers.
  uint64_t snapshots_served() const {
    return snapshots_served_.load(std::memory_order_relaxed);
  }
  uint32_t current_view() const {
    return cur_view_.load(std::memory_order_acquire);
  }
  // Key ranges this replica is migrating (fence..cutover as source, or
  // retained dest markers). Zero outside a reshard window.
  size_t reshard_ranges() const;
  // Requests forwarded one-hop to a range's new home after cutover.
  uint64_t reshard_forwards() const {
    return reshard_forwards_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  DiscoveryReplica(std::shared_ptr<Transport> member,
                   DiscoveryReplicaOptions opts);

  struct PendingApply {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Bytes response;  // encoded DiscResponse recorded at apply
    Bytes ctrl_op;   // encoded CtrlOp, re-proposed on view change
  };

  // View-change round in progress (member thread only).
  struct ViewChangeRound {
    uint32_t view = 0;  // 0: no round
    std::map<std::string, uint64_t> acks;  // replica id -> last contig seq
    TimePoint started{};
    bool start_sent = false;
  };

  // The DiscoveryServer mutation hook: encode, sequence, wait for apply.
  DiscResponse propose(const DiscRequest& req);
  void member_loop();
  void sweep_loop();
  // Applies one decoded sequenced op to the local state.
  void apply(uint64_t seq, BytesView ctrl_frame);

  // Member-thread machinery (all run on member_thread_ only).
  Addr sequencer_for(uint32_t view) const;
  bool detection_enabled();
  Deadline next_deadline();
  void check_timers();
  void dispatch(BytesView payload);
  void handle_sequenced(const McastOp& op);
  void handle_fetch_miss(const McastFetchMiss& miss);
  void handle_view_change(const CtrlViewChangeMsg& m);
  void initiate_view_change(uint32_t target);
  void broadcast_view_change(uint32_t view);
  void maybe_send_view_start();
  void adopt_view(uint32_t view, const char* how);
  bool do_catchup(const char* reason);
  void install_peer_snapshot(const CtrlSnapshotRsp& rsp, const char* reason);
  void serve_snapshot(const CtrlSnapshotReq& req);
  void create_server_locked();
  void record_applied_id(std::string op_id);

  // --- Online repartitioning (see control_wire.hpp ReshardOp) ---
  // Per-range migration state. Mutated only at sequenced-op apply points
  // (member thread) or snapshot install; read by the serve thread's
  // interceptor — hence the dedicated mutex.
  struct RangeState {
    uint64_t modulo = 0;
    uint64_t epoch = 0;
    uint8_t role = 1;   // 1 = source, 2 = destination
    uint8_t phase = 0;  // highest ReshardPhase applied
    std::vector<Addr> dst_rpc;
    // Frozen cut of the range (source, fence..cutover): answers range
    // queries while mutations fail transiently.
    std::shared_ptr<DiscoveryState> frozen;
    std::unordered_set<uint64_t> migrated;  // alloc ids that moved
    Bytes payload;  // encoded ReshardPayload (serves snapshot fetches)
  };
  // Applies one sequenced reshard op (member thread / apply path).
  void apply_reshard(const ReshardOp& rop, uint64_t seq);
  void handle_reshard_snapshot_req(const ReshardSnapshotReq& req);
  // Serve-thread hook: fence/forward requests touching migrating ranges.
  std::optional<DiscResponse> intercept(const DiscRequest& req);
  Result<DiscResponse> forward(const DiscRequest& req,
                               const std::vector<Addr>& dst);
  // Fire-and-forget copy of a heartbeat to cut-over destinations, so
  // migrated leases stay refreshed until their owners re-steer.
  void mirror_heartbeat(const DiscRequest& req);

  std::shared_ptr<Transport> member_;
  Addr member_addr_;
  Addr rpc_addr_;
  DiscoveryReplicaOptions opts_;
  std::shared_ptr<DiscoveryState> state_;
  // Guards server_ creation/teardown (catch-up boots create it from the
  // member thread; stop() may race).
  std::mutex server_mu_;
  std::unique_ptr<DiscoveryServer> server_;
  TransportPtr boot_rpc_;  // held until the deferred server is created
  // Event log from a snapshot installed before the server existed
  // (catch-up boot); handed to the server on creation. Under server_mu_.
  std::optional<EventLogSnapshot> boot_log_;
  uint64_t boot_log_seq_ = 0;
  std::atomic<bool> ready_{false};

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> gaps_skipped_{0};
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> dedup_hits_{0};
  std::atomic<uint64_t> catchups_{0};
  std::atomic<uint64_t> gap_misses_{0};
  std::atomic<uint64_t> view_changes_{0};
  std::atomic<uint64_t> snapshots_served_{0};
  std::atomic<uint32_t> cur_view_{0};
  std::atomic<bool> stopping_{false};

  // Proposals awaiting their sequenced apply, by submit_id.
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingApply>> pending_;
  std::atomic<uint64_t> next_submit_{0};

  // Replicated idempotency cache: identical on every replica because it
  // is maintained at apply time, from replicated ops only. Bounded FIFO
  // so eviction is deterministic too.
  static constexpr size_t kApplyDedupCap = 1024;
  std::unordered_map<std::string, Bytes> apply_dedup_;
  std::deque<std::string> apply_dedup_order_;

  // Applied-proposal ids ("<origin>#<submit_id>"): the at-most-once
  // guard for ops re-proposed across a view change (the client-keyed
  // cache above can't cover ops without idem keys). Replicated state —
  // member thread only, snapshot-transferred, bounded FIFO.
  static constexpr size_t kAppliedIdsCap = 4096;
  std::unordered_set<std::string> applied_ids_;
  std::deque<std::string> applied_ids_order_;

  // In-flight range migrations, keyed by range (one migration per range
  // at a time). Guarded by reshard_mu_.
  mutable std::mutex reshard_mu_;
  std::map<uint64_t, RangeState> reshard_;
  std::atomic<uint64_t> reshard_forwards_{0};
  // One-shot forward transport (lazily bound; serialized by fwd_mu_,
  // which is also held across a forward's send/recv round).
  std::mutex fwd_mu_;
  TransportPtr fwd_;
  std::atomic<uint64_t> fwd_token_{0};

  // Ordered-release window + gap/view/catch-up state (member thread).
  SequencedApplyWindow window_;
  bool fetch_sent_ = false;
  bool gap_catchup_tried_ = false;
  TimePoint gap_since_{};
  TimePoint last_seen_{};
  ViewChangeRound vc_;
  size_t catchup_rr_ = 0;  // rotates the first peer tried

  std::condition_variable sweep_cv_;
  std::mutex sweep_mu_;
  std::thread sweep_thread_;
  std::thread member_thread_;
};

}  // namespace bertha
