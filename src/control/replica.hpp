// One replica of one discovery control-plane partition.
//
// A DiscoveryReplica owns a full DiscoveryState copy of its partition's
// catalogue and a DiscoveryServer that serves clients from it. Queries
// and watch streams serve purely locally; every mutation is routed
// through the partition's ordered-multicast sequencer (the NOPaxos
// pattern, chunnels/ordered_mcast.hpp) and applied — in identical global
// order, at the op's origin-stamped time — by every replica of the
// group. Because the apply stream is identical, so is every derived
// artifact: the catalogue, the lease table, the allocation ids, the
// idempotency cache, and crucially the watch-event sequence — which is
// what lets a client fail over to another replica and resume its watch
// stream by seq alone, no snapshot needed.
//
// Gap handling: a replica that sees a sequence gap first asks the
// sequencer to retransmit from its bounded log (mcast_fetch_frame); if
// the gap still hasn't filled after gap_timeout it is skipped and
// counted, like ordered_mcast's datapath replicas.
//
// Lease expiry is replicated too: each replica proposes an idempotent
// sweep op on a timer (CtrlOpKind::sweep) instead of sweeping from its
// local clock, so all replicas reap the same owners at the same point
// in the op stream. The local DiscoveryState runs with manual sweep and
// a partition-namespaced allocation counter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "control/control_wire.hpp"
#include "core/discovery.hpp"

namespace bertha {

struct DiscoveryReplicaOptions {
  std::string replica_id;      // unique across the cluster (e.g. "p0-r1")
  uint64_t partition_index = 0;  // alloc-id namespace for this partition
  Addr sequencer;              // where proposals go
  // How long a proposal waits for its own op to come back out of the
  // sequencer before the client RPC fails transiently (the client
  // retries; the idempotency cache absorbs duplicates).
  Duration apply_timeout = ms(500);
  // Period of proposed lease-sweep ops; zero disables (tests drive
  // expiry by proposing their own sweeps).
  Duration sweep_period = ms(50);
  // Gap recovery: how long after the retransmit fetch a head-of-line
  // gap may persist before it is skipped.
  Duration gap_timeout = ms(20);
  DiscoveryServer::Options server;  // serving options (tracer, coalesce…)
  TracerPtr tracer;                 // ctrl.apply spans
  FaultStatsPtr stats;
};

class DiscoveryReplica {
 public:
  // `rpc_transport` serves client RPCs (DiscoveryServer); `member`
  // receives the sequenced op stream and sends proposals. Both are
  // owned; tests pass fault-injecting wrappers.
  static Result<std::unique_ptr<DiscoveryReplica>> start(
      TransportPtr rpc_transport, TransportPtr member,
      DiscoveryReplicaOptions opts);
  ~DiscoveryReplica();

  DiscoveryReplica(const DiscoveryReplica&) = delete;
  DiscoveryReplica& operator=(const DiscoveryReplica&) = delete;

  const std::string& replica_id() const { return opts_.replica_id; }
  const Addr& rpc_addr() const { return rpc_addr_; }
  const Addr& member_addr() const { return member_addr_; }
  DiscoveryServer& server() { return *server_; }
  const std::shared_ptr<DiscoveryState>& state() const { return state_; }

  // Ops applied from the sequenced stream (including sweeps).
  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }
  // Head-of-line gaps abandoned after retransmission failed.
  uint64_t gaps_skipped() const {
    return gaps_skipped_.load(std::memory_order_relaxed);
  }
  // Retransmit fetches sent to the sequencer.
  uint64_t fetches() const { return fetches_.load(std::memory_order_relaxed); }
  // Mutations answered from the replicated idempotency cache at apply.
  uint64_t replicated_dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  DiscoveryReplica(std::shared_ptr<Transport> member,
                   DiscoveryReplicaOptions opts);

  struct PendingApply {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Bytes response;  // encoded DiscResponse recorded at apply
  };

  // The DiscoveryServer mutation hook: encode, sequence, wait for apply.
  DiscResponse propose(const DiscRequest& req);
  void member_loop();
  void sweep_loop();
  // Applies one decoded sequenced op to the local state.
  void apply(uint64_t seq, BytesView ctrl_frame);

  std::shared_ptr<Transport> member_;
  Addr member_addr_;
  Addr rpc_addr_;
  DiscoveryReplicaOptions opts_;
  std::shared_ptr<DiscoveryState> state_;
  std::unique_ptr<DiscoveryServer> server_;

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> gaps_skipped_{0};
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> dedup_hits_{0};
  std::atomic<bool> stopping_{false};

  // Proposals awaiting their sequenced apply, by submit_id.
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingApply>> pending_;
  std::atomic<uint64_t> next_submit_{0};

  // Replicated idempotency cache: identical on every replica because it
  // is maintained at apply time, from replicated ops only. Bounded FIFO
  // so eviction is deterministic too.
  static constexpr size_t kApplyDedupCap = 1024;
  std::unordered_map<std::string, Bytes> apply_dedup_;
  std::deque<std::string> apply_dedup_order_;

  std::condition_variable sweep_cv_;
  std::mutex sweep_mu_;
  std::thread sweep_thread_;
  std::thread member_thread_;
};

}  // namespace bertha
