// Catalogue partitioning for the sharded discovery control plane.
//
// The catalogue is partitioned by *scope key*: impl entries by their
// chunnel type, resource pools by pool name. Steering reuses the shard
// chunnel's consistent-hash step (shard_pick, src/chunnels/shard.hpp) so
// the client-side router and any future in-network steer agree byte-for-
// byte on where a key lives.
//
// Allocation ids route themselves: each partition mints ids namespaced
// with its own index in the high bits (DiscoveryState::
// set_alloc_namespace), so release() needs no key — the id names its
// partition.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "core/discovery_wire.hpp"
#include "net/addr.hpp"

namespace bertha {

// Versioned cluster configuration: which replicas (RPC addresses) serve
// each partition, stamped with a monotonically increasing epoch so a
// client can never regress onto a stale view. Replicas can be added or
// removed within a partition online; changing the partition *count*
// (repartitioning with catalogue migration) is a separate, future
// protocol — apply() rejects it.
struct ClusterMembership {
  uint64_t epoch = 0;
  std::vector<std::vector<Addr>> partitions;  // [partition] -> replica RPC addrs
};

class PartitionMap {
 public:
  explicit PartitionMap(size_t partitions)
      : partitions_(partitions == 0 ? 1 : partitions) {}

  size_t partitions() const { return partitions_; }

  // Adopt a newer cluster config. Rejects a stale or equal epoch
  // (already applied — callers treat it as a no-op failure) and any
  // config whose partition count differs from the steering hash's.
  Result<void> apply(const ClusterMembership& m);
  uint64_t epoch() const;
  // Replica RPC addresses of partition p under the current config
  // (empty until the first apply()).
  std::vector<Addr> replicas(size_t p) const;

  // Impl entries: partition of a chunnel type.
  size_t index_for_type(const std::string& type) const;
  // Resource pools: partition of a pool name.
  size_t index_for_pool(const std::string& pool) const;

  // Partition encoded in an allocation id minted by this cluster.
  static size_t index_for_alloc(uint64_t alloc_id);

  // Routes a decoded request to its partition. Multi-pool acquires must
  // resolve to one partition (admission is atomic only within a
  // partition); invalid_argument otherwise. release/heartbeat callers
  // should prefer index_for_alloc / fan-out respectively — this routes
  // the single-partition ops.
  Result<size_t> index_for_request(const DiscRequest& req) const;

 private:
  size_t partitions_;
  // Steering (partitions_) is immutable; only the membership view below
  // changes, guarded for concurrent readers.
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::vector<std::vector<Addr>> replicas_;
};

}  // namespace bertha
