// Catalogue partitioning for the sharded discovery control plane.
//
// The catalogue is partitioned by *scope key*: impl entries by their
// chunnel type, resource pools by pool name. Steering reuses the shard
// chunnel's consistent-hash step (shard_pick, src/chunnels/shard.hpp) so
// the client-side router and any future in-network steer agree byte-for-
// byte on where a key lives.
//
// Steering is epoch-stamped and *mutable*: a key hashes to a bucket
// under the steering modulo (shard_pick(key, modulo)), and a home table
// maps buckets to partitions. In the steady state the table is the
// identity (bucket i lives on partition i % count); online
// repartitioning (src/control/reshard.hpp) re-homes individual buckets
// between partitions and pushes the new table with a bumped epoch.
// Because x % N == (x % 2N) % N, the modulo only ever grows — a split
// doubles it, a merge rewrites the home table back to the aliased
// identity — so no key ever changes bucket under the modulo that
// defined a migration.
//
// Allocation ids route themselves: each partition mints ids namespaced
// with its own *bucket* in the high bits (DiscoveryState::
// set_alloc_namespace), so release() needs no key — the id names its
// bucket, and the home table names the bucket's current partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/discovery_wire.hpp"
#include "net/addr.hpp"

namespace bertha {

// Versioned cluster configuration: which replicas (RPC addresses) serve
// each partition, stamped with a monotonically increasing epoch so a
// client can never regress onto a stale view, plus the bucket steering
// (modulo + home table) minted by the reshard coordinator. modulo == 0
// / empty home mean "identity over partitions.size()".
struct ClusterMembership {
  uint64_t epoch = 0;
  std::vector<std::vector<Addr>> partitions;  // [partition] -> replica RPC addrs
  uint64_t modulo = 0;         // steering modulo (0 => partitions.size())
  std::vector<uint32_t> home;  // [bucket] -> partition (empty => identity)
};

class PartitionMap {
 public:
  explicit PartitionMap(size_t partitions);

  size_t partitions() const;
  // Current steering modulo (>= partitions(), grows on split).
  uint64_t modulo() const;

  // Adopt a newer cluster config. Rejects a stale or equal epoch
  // (already applied — callers treat it as a no-op failure), malformed
  // steering, and a modulo regression (buckets must stay stable).
  Result<void> apply(const ClusterMembership& m);
  uint64_t epoch() const;
  // Replica RPC addresses of partition p under the current config
  // (empty until the first apply()).
  std::vector<Addr> replicas(size_t p) const;

  // Impl entries: partition of a chunnel type.
  size_t index_for_type(const std::string& type) const;
  // Resource pools: partition of a pool name.
  size_t index_for_pool(const std::string& pool) const;

  // Bucket encoded in an allocation id minted by this cluster. Under
  // identity steering this IS the partition; under re-homed steering
  // use index_for_alloc_routed.
  static size_t index_for_alloc(uint64_t alloc_id);
  // Partition currently homing an allocation id's bucket.
  Result<size_t> index_for_alloc_routed(uint64_t alloc_id) const;

  // Routes a decoded request to its partition. Multi-pool acquires must
  // resolve to one partition (admission is atomic only within a
  // partition); invalid_argument otherwise. release routes by the id's
  // bucket through the home table; heartbeat callers should fan out —
  // this routes the single-partition ops.
  Result<size_t> index_for_request(const DiscRequest& req) const;

 private:
  size_t home_of_locked(uint64_t bucket) const { return home_[bucket]; }

  mutable std::mutex mu_;
  size_t partitions_;
  uint64_t modulo_;
  std::vector<uint32_t> home_;  // size modulo_, entries < partitions_
  uint64_t epoch_ = 0;
  std::vector<std::vector<Addr>> replicas_;
};

}  // namespace bertha
