// Catalogue partitioning for the sharded discovery control plane.
//
// The catalogue is partitioned by *scope key*: impl entries by their
// chunnel type, resource pools by pool name. Steering reuses the shard
// chunnel's consistent-hash step (shard_pick, src/chunnels/shard.hpp) so
// the client-side router and any future in-network steer agree byte-for-
// byte on where a key lives.
//
// Allocation ids route themselves: each partition mints ids namespaced
// with its own index in the high bits (DiscoveryState::
// set_alloc_namespace), so release() needs no key — the id names its
// partition.
#pragma once

#include <cstddef>
#include <string>

#include "core/discovery_wire.hpp"

namespace bertha {

class PartitionMap {
 public:
  explicit PartitionMap(size_t partitions)
      : partitions_(partitions == 0 ? 1 : partitions) {}

  size_t partitions() const { return partitions_; }

  // Impl entries: partition of a chunnel type.
  size_t index_for_type(const std::string& type) const;
  // Resource pools: partition of a pool name.
  size_t index_for_pool(const std::string& pool) const;

  // Partition encoded in an allocation id minted by this cluster.
  static size_t index_for_alloc(uint64_t alloc_id);

  // Routes a decoded request to its partition. Multi-pool acquires must
  // resolve to one partition (admission is atomic only within a
  // partition); invalid_argument otherwise. release/heartbeat callers
  // should prefer index_for_alloc / fan-out respectively — this routes
  // the single-partition ops.
  Result<size_t> index_for_request(const DiscRequest& req) const;

 private:
  size_t partitions_;
};

}  // namespace bertha
