// Control-plane replication wire format.
//
// A CtrlOp is the unit of replication for the discovery control plane
// (src/control/replica.hpp): one sequenced multicast frame carries one
// CtrlOp, and every replica of a partition applies the same CtrlOp
// stream in the same global order. Two kinds:
//
//   disc   a client discovery mutation (encoded DiscRequest) proposed by
//          the replica that received the RPC,
//   sweep  a lease-expiry tick. Leases must expire at a *replicated*
//          time, never from a replica's local clock, or replicas diverge
//          on which owners were reaped (and on the watch-event seq) —
//          so the sweep itself is an op in the stream, stamped with the
//          origin's clock and applied with expire_leases_at().
//
// `origin` + `submit_id` identify the proposal: the proposing replica
// completes its pending client RPC when it sees its own op come back out
// of the sequencer; every other replica just applies it.
//
// Recovery frames ('C' 'T' magic + kind byte) ride the same member
// transport as the sequenced stream and never pass through the
// sequencer: snapshot request/response implement replica catch-up,
// view-change messages implement the sequencer election round, and a
// membership frame carries the versioned cluster config. Decoding is
// strict — truncation or garbage degrades to a clean protocol_error,
// never a partial apply (fuzz-covered in tests/fuzz_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "control/partition_map.hpp"
#include "core/discovery.hpp"
#include "serialize/codec.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

enum class CtrlOpKind : uint8_t {
  disc = 1,     // req holds an encoded DiscRequest
  sweep = 2,    // expire leases as of time_ns
  reshard = 3,  // req holds an encoded ReshardOp (live split/merge phase)
};

struct CtrlOp {
  CtrlOpKind kind = CtrlOpKind::disc;
  std::string origin;      // proposing replica id
  uint64_t submit_id = 0;  // origin-local proposal counter
  // Origin steady-clock ns at proposal time: the deterministic time
  // basis for lease arithmetic on every replica.
  int64_t time_ns = 0;
  Bytes req;  // disc only
};

Bytes encode_ctrl_op(const CtrlOp& op);
Result<CtrlOp> decode_ctrl_op(BytesView b);

// --- Resharding ops (CtrlOpKind::reshard) ---
//
enum class ReshardPhase : uint8_t {
  fence = 1,
  install = 2,
  cutover = 3,
  retire = 4,
};
//
// One live split/merge migrates key *ranges*: hash buckets under the
// steering modulo (shard_pick(key, modulo)). Because x % N ==
// (x % 2N) % N, a doubling split moves bucket q in [N, 2N) from
// partition q % N to the new partition q, and a halving merge moves it
// back — no key ever changes bucket under the modulo that defines the
// migration. Each phase is a sequenced op in the affected partition's
// own stream, so every replica of the group transitions at the same
// point of the apply order:
//
//   fence    (source) freeze the range at this exact apply point:
//            extract its catalogue/pools/allocs/leases into a frozen
//            side-state, answer range reads from it, fail range
//            mutations transiently (clients retry through cutover).
//   install  (destination) ingest the fenced payload — catalogue,
//            leases, dedup cache, applied ids, watch-event log.
//   cutover  (source) forward every range request one-hop to the
//            destination's replicas (the stale-client fallback).
//   retire   (source) drop the range's reshard state after drain.
struct ReshardOp {
  ReshardPhase phase = ReshardPhase::fence;
  uint64_t epoch = 0;   // steering epoch this migration mints
  uint64_t modulo = 0;  // steering modulo the range lives under (>= 1)
  uint64_t range = 0;   // hash bucket being migrated (< modulo)
  uint32_t from_partition = 0;
  uint32_t to_partition = 0;
  // Destination replica RPC addresses (cutover: the forward targets).
  std::vector<std::string> dst_rpc;
  // Non-empty: every replica acks the applied phase to this member-bus
  // address, echoing cmd_id (coordinator retries are idempotent —
  // phases are monotonic per range).
  std::string reply_uri;
  uint64_t cmd_id = 0;
  Bytes payload;  // install only: an encoded ReshardPayload
};

Bytes encode_reshard_op(const ReshardOp& op);
Result<ReshardOp> decode_reshard_op(BytesView b);

// The fenced consistent cut of one key range: what fence extracts on
// the source and install ingests on the destination. dedup/applied are
// transferred whole (they are not keyed by range; extras are harmless).
struct ReshardPayload {
  DiscoverySnapshot state;
  std::vector<std::pair<std::string, Bytes>> dedup;
  std::vector<std::string> applied;
  EventLogSnapshot event_log;
};

Bytes encode_reshard_payload(const ReshardPayload& p);
Result<ReshardPayload> decode_reshard_payload(BytesView b);

// --- Recovery frames ---

enum class CtrlFrameKind : uint8_t {
  snapshot_req = 1,
  snapshot_rsp = 2,
  view_change = 3,
  membership = 4,
  reshard_ack = 5,           // replica -> coordinator: phase applied
  reshard_snapshot_req = 6,  // coordinator -> source: fenced range cut
  reshard_snapshot_rsp = 7,  // source -> coordinator: the frozen payload
};

// Kind of a recovery frame, or protocol_error if `b` is not one (the
// member-loop demux tries sequenced traffic first, then this).
Result<CtrlFrameKind> peek_ctrl_frame(BytesView b);

// Catch-up: a joining/restarted replica asks a live peer for its full
// state; the peer answers with a consistent cut.
struct CtrlSnapshotReq {
  std::string from;       // requesting replica id
  std::string reply_uri;  // member address to answer on
};

// Per-range reshard state a replica carries between fence and retire —
// replicated (it is mutated only by sequenced reshard ops), so it rides
// the catch-up snapshot like every other piece of replicated state.
struct ReshardRangeState {
  uint64_t range = 0;
  uint64_t modulo = 0;
  uint64_t epoch = 0;
  uint8_t role = 1;   // 1 = source, 2 = destination
  uint8_t phase = 0;  // highest ReshardPhase applied for this range
  std::vector<std::string> dst_rpc;       // forward targets (source)
  std::vector<uint64_t> migrated_allocs;  // ids extracted at fence
  Bytes payload;  // frozen range cut (source, fence..cutover), else empty
};

struct CtrlSnapshotRsp {
  std::string from;       // serving replica id
  uint32_t view = 0;      // serving replica's current sequencer view
  uint64_t next_seq = 0;  // first seq NOT reflected in the snapshot
  DiscoverySnapshot state;
  // Replicated RPC idempotency cache, FIFO order: "<client>#<idem>" ->
  // encoded response.
  std::vector<std::pair<std::string, Bytes>> dedup;
  // Applied-proposal ids ("<origin>#<submit_id>", FIFO order): the
  // at-most-once guard for ops re-proposed across a view change.
  std::vector<std::string> applied;
  EventLogSnapshot event_log;
  // In-flight range migrations (empty outside a reshard window).
  std::vector<ReshardRangeState> reshard;
};

// View change: broadcast by a replica that suspects the sequencer of
// `view - 1`; carries the sender's last contiguous seq so the quorum
// can agree where the next sequencer resumes.
struct CtrlViewChangeMsg {
  uint32_t view = 0;
  std::string from;  // sender replica id
  uint64_t last_contig = 0;
};

Bytes encode_snapshot_req(const CtrlSnapshotReq& m);
Result<CtrlSnapshotReq> decode_snapshot_req(BytesView b);
Bytes encode_snapshot_rsp(const CtrlSnapshotRsp& m);
Result<CtrlSnapshotRsp> decode_snapshot_rsp(BytesView b);
// Reshard coordination frames. The ack closes the loop on a sequenced
// reshard op (each replica acks its apply to op.reply_uri); the
// snapshot pair moves the fenced range cut from a source replica to the
// coordinator, which re-injects it as the install op's payload.
struct ReshardAck {
  uint64_t cmd_id = 0;
  std::string from;  // acking replica id
};

struct ReshardSnapshotReq {
  uint64_t modulo = 0;
  uint64_t range = 0;
  std::string reply_uri;
};

struct ReshardSnapshotRsp {
  uint64_t range = 0;
  std::string from;
  Bytes payload;  // encoded ReshardPayload
};

Bytes encode_view_change(const CtrlViewChangeMsg& m);
Result<CtrlViewChangeMsg> decode_view_change(BytesView b);
Bytes encode_membership(const ClusterMembership& m);
Result<ClusterMembership> decode_membership(BytesView b);
Bytes encode_reshard_ack(const ReshardAck& m);
Result<ReshardAck> decode_reshard_ack(BytesView b);
Bytes encode_reshard_snapshot_req(const ReshardSnapshotReq& m);
Result<ReshardSnapshotReq> decode_reshard_snapshot_req(BytesView b);
Bytes encode_reshard_snapshot_rsp(const ReshardSnapshotRsp& m);
Result<ReshardSnapshotRsp> decode_reshard_snapshot_rsp(BytesView b);

}  // namespace bertha
