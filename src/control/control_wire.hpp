// Control-plane replication wire format.
//
// A CtrlOp is the unit of replication for the discovery control plane
// (src/control/replica.hpp): one sequenced multicast frame carries one
// CtrlOp, and every replica of a partition applies the same CtrlOp
// stream in the same global order. Two kinds:
//
//   disc   a client discovery mutation (encoded DiscRequest) proposed by
//          the replica that received the RPC,
//   sweep  a lease-expiry tick. Leases must expire at a *replicated*
//          time, never from a replica's local clock, or replicas diverge
//          on which owners were reaped (and on the watch-event seq) —
//          so the sweep itself is an op in the stream, stamped with the
//          origin's clock and applied with expire_leases_at().
//
// `origin` + `submit_id` identify the proposal: the proposing replica
// completes its pending client RPC when it sees its own op come back out
// of the sequencer; every other replica just applies it.
#pragma once

#include <cstdint>
#include <string>

#include "serialize/codec.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

enum class CtrlOpKind : uint8_t {
  disc = 1,   // req holds an encoded DiscRequest
  sweep = 2,  // expire leases as of time_ns
};

struct CtrlOp {
  CtrlOpKind kind = CtrlOpKind::disc;
  std::string origin;      // proposing replica id
  uint64_t submit_id = 0;  // origin-local proposal counter
  // Origin steady-clock ns at proposal time: the deterministic time
  // basis for lease arithmetic on every replica.
  int64_t time_ns = 0;
  Bytes req;  // disc only
};

Bytes encode_ctrl_op(const CtrlOp& op);
Result<CtrlOp> decode_ctrl_op(BytesView b);

}  // namespace bertha
