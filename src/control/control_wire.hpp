// Control-plane replication wire format.
//
// A CtrlOp is the unit of replication for the discovery control plane
// (src/control/replica.hpp): one sequenced multicast frame carries one
// CtrlOp, and every replica of a partition applies the same CtrlOp
// stream in the same global order. Two kinds:
//
//   disc   a client discovery mutation (encoded DiscRequest) proposed by
//          the replica that received the RPC,
//   sweep  a lease-expiry tick. Leases must expire at a *replicated*
//          time, never from a replica's local clock, or replicas diverge
//          on which owners were reaped (and on the watch-event seq) —
//          so the sweep itself is an op in the stream, stamped with the
//          origin's clock and applied with expire_leases_at().
//
// `origin` + `submit_id` identify the proposal: the proposing replica
// completes its pending client RPC when it sees its own op come back out
// of the sequencer; every other replica just applies it.
//
// Recovery frames ('C' 'T' magic + kind byte) ride the same member
// transport as the sequenced stream and never pass through the
// sequencer: snapshot request/response implement replica catch-up,
// view-change messages implement the sequencer election round, and a
// membership frame carries the versioned cluster config. Decoding is
// strict — truncation or garbage degrades to a clean protocol_error,
// never a partial apply (fuzz-covered in tests/fuzz_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "control/partition_map.hpp"
#include "core/discovery.hpp"
#include "serialize/codec.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace bertha {

enum class CtrlOpKind : uint8_t {
  disc = 1,   // req holds an encoded DiscRequest
  sweep = 2,  // expire leases as of time_ns
};

struct CtrlOp {
  CtrlOpKind kind = CtrlOpKind::disc;
  std::string origin;      // proposing replica id
  uint64_t submit_id = 0;  // origin-local proposal counter
  // Origin steady-clock ns at proposal time: the deterministic time
  // basis for lease arithmetic on every replica.
  int64_t time_ns = 0;
  Bytes req;  // disc only
};

Bytes encode_ctrl_op(const CtrlOp& op);
Result<CtrlOp> decode_ctrl_op(BytesView b);

// --- Recovery frames ---

enum class CtrlFrameKind : uint8_t {
  snapshot_req = 1,
  snapshot_rsp = 2,
  view_change = 3,
  membership = 4,
};

// Kind of a recovery frame, or protocol_error if `b` is not one (the
// member-loop demux tries sequenced traffic first, then this).
Result<CtrlFrameKind> peek_ctrl_frame(BytesView b);

// Catch-up: a joining/restarted replica asks a live peer for its full
// state; the peer answers with a consistent cut.
struct CtrlSnapshotReq {
  std::string from;       // requesting replica id
  std::string reply_uri;  // member address to answer on
};

struct CtrlSnapshotRsp {
  std::string from;       // serving replica id
  uint32_t view = 0;      // serving replica's current sequencer view
  uint64_t next_seq = 0;  // first seq NOT reflected in the snapshot
  DiscoverySnapshot state;
  // Replicated RPC idempotency cache, FIFO order: "<client>#<idem>" ->
  // encoded response.
  std::vector<std::pair<std::string, Bytes>> dedup;
  // Applied-proposal ids ("<origin>#<submit_id>", FIFO order): the
  // at-most-once guard for ops re-proposed across a view change.
  std::vector<std::string> applied;
  EventLogSnapshot event_log;
};

// View change: broadcast by a replica that suspects the sequencer of
// `view - 1`; carries the sender's last contiguous seq so the quorum
// can agree where the next sequencer resumes.
struct CtrlViewChangeMsg {
  uint32_t view = 0;
  std::string from;  // sender replica id
  uint64_t last_contig = 0;
};

Bytes encode_snapshot_req(const CtrlSnapshotReq& m);
Result<CtrlSnapshotReq> decode_snapshot_req(BytesView b);
Bytes encode_snapshot_rsp(const CtrlSnapshotRsp& m);
Result<CtrlSnapshotRsp> decode_snapshot_rsp(BytesView b);
Bytes encode_view_change(const CtrlViewChangeMsg& m);
Result<CtrlViewChangeMsg> decode_view_change(BytesView b);
Bytes encode_membership(const ClusterMembership& m);
Result<ClusterMembership> decode_membership(BytesView b);

}  // namespace bertha
