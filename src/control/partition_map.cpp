#include "control/partition_map.hpp"

#include "chunnels/shard.hpp"
#include "core/discovery.hpp"

namespace bertha {

namespace {
BytesView key_view(const std::string& s) {
  return BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::vector<uint32_t> identity_home(uint64_t modulo, size_t nparts) {
  std::vector<uint32_t> home(modulo);
  for (uint64_t i = 0; i < modulo; i++)
    home[i] = static_cast<uint32_t>(i % nparts);
  return home;
}
}  // namespace

PartitionMap::PartitionMap(size_t partitions)
    : partitions_(partitions == 0 ? 1 : partitions),
      modulo_(partitions_),
      home_(identity_home(modulo_, partitions_)) {}

size_t PartitionMap::partitions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return partitions_;
}

uint64_t PartitionMap::modulo() const {
  std::lock_guard<std::mutex> lk(mu_);
  return modulo_;
}

size_t PartitionMap::index_for_type(const std::string& type) const {
  std::lock_guard<std::mutex> lk(mu_);
  return home_of_locked(shard_pick(key_view(type), modulo_));
}

size_t PartitionMap::index_for_pool(const std::string& pool) const {
  std::lock_guard<std::mutex> lk(mu_);
  return home_of_locked(shard_pick(key_view(pool), modulo_));
}

size_t PartitionMap::index_for_alloc(uint64_t alloc_id) {
  return static_cast<size_t>(alloc_id >> DiscoveryState::kAllocNamespaceShift);
}

Result<size_t> PartitionMap::index_for_alloc_routed(uint64_t alloc_id) const {
  uint64_t bucket = alloc_id >> DiscoveryState::kAllocNamespaceShift;
  std::lock_guard<std::mutex> lk(mu_);
  if (bucket >= modulo_)
    return err(Errc::invalid_argument, "alloc id names unknown partition");
  return home_of_locked(bucket);
}

Result<void> PartitionMap::apply(const ClusterMembership& m) {
  if (m.partitions.empty())
    return err(Errc::invalid_argument, "membership without partitions");
  for (const auto& replicas : m.partitions)
    if (replicas.empty())
      return err(Errc::invalid_argument, "membership with empty partition");
  uint64_t modulo = m.modulo == 0 ? m.partitions.size() : m.modulo;
  std::vector<uint32_t> home =
      m.home.empty() ? identity_home(modulo, m.partitions.size()) : m.home;
  if (home.size() != modulo)
    return err(Errc::invalid_argument, "membership home table size");
  for (uint32_t h : home)
    if (h >= m.partitions.size())
      return err(Errc::invalid_argument, "membership home names no partition");
  std::lock_guard<std::mutex> lk(mu_);
  if (m.epoch <= epoch_)
    return err(Errc::already_exists, "stale membership epoch");
  // Buckets must stay stable: a split doubles the modulo, a merge keeps
  // it (re-homing buckets instead), so alloc-id namespaces minted under
  // any earlier epoch still name a live bucket.
  if (modulo < modulo_)
    return err(Errc::invalid_argument, "membership modulo regression");
  epoch_ = m.epoch;
  partitions_ = m.partitions.size();
  modulo_ = modulo;
  home_ = std::move(home);
  replicas_ = m.partitions;
  return ok();
}

uint64_t PartitionMap::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::vector<Addr> PartitionMap::replicas(size_t p) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (p >= replicas_.size()) return {};
  return replicas_[p];
}

Result<size_t> PartitionMap::index_for_request(const DiscRequest& req) const {
  switch (req.op) {
    case DiscOp::register_impl:
      if (!req.entry) return err(Errc::invalid_argument, "register without entry");
      return index_for_type(req.entry->type);
    case DiscOp::unregister_impl:
    case DiscOp::query:
      return index_for_type(req.type);
    case DiscOp::set_pool:
      // execute_request carries the pool name in req.type.
      return index_for_pool(req.type);
    case DiscOp::acquire: {
      if (req.resources.empty())
        return err(Errc::invalid_argument, "acquire without resources");
      size_t idx = index_for_pool(req.resources[0].pool);
      for (const auto& r : req.resources)
        if (index_for_pool(r.pool) != idx)
          return err(Errc::invalid_argument,
                     "acquire spans partitions: pools " + req.resources[0].pool +
                         " and " + r.pool + " hash to different partitions");
      return idx;
    }
    case DiscOp::release:
      return index_for_alloc_routed(req.alloc_id);
    case DiscOp::heartbeat:
      return err(Errc::invalid_argument, "heartbeat has no single partition");
  }
  return err(Errc::invalid_argument, "unroutable discovery op");
}

}  // namespace bertha
