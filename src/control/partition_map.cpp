#include "control/partition_map.hpp"

#include "chunnels/shard.hpp"
#include "core/discovery.hpp"

namespace bertha {

namespace {
BytesView key_view(const std::string& s) {
  return BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}
}  // namespace

size_t PartitionMap::index_for_type(const std::string& type) const {
  return shard_pick(key_view(type), partitions_);
}

size_t PartitionMap::index_for_pool(const std::string& pool) const {
  return shard_pick(key_view(pool), partitions_);
}

size_t PartitionMap::index_for_alloc(uint64_t alloc_id) {
  return static_cast<size_t>(alloc_id >> DiscoveryState::kAllocNamespaceShift);
}

Result<void> PartitionMap::apply(const ClusterMembership& m) {
  if (m.partitions.size() != partitions_)
    return err(Errc::invalid_argument,
               "membership partition count mismatch (online repartitioning "
               "is not supported)");
  for (const auto& replicas : m.partitions)
    if (replicas.empty())
      return err(Errc::invalid_argument, "membership with empty partition");
  std::lock_guard<std::mutex> lk(mu_);
  if (m.epoch <= epoch_)
    return err(Errc::already_exists, "stale membership epoch");
  epoch_ = m.epoch;
  replicas_ = m.partitions;
  return ok();
}

uint64_t PartitionMap::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::vector<Addr> PartitionMap::replicas(size_t p) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (p >= replicas_.size()) return {};
  return replicas_[p];
}

Result<size_t> PartitionMap::index_for_request(const DiscRequest& req) const {
  switch (req.op) {
    case DiscOp::register_impl:
      if (!req.entry) return err(Errc::invalid_argument, "register without entry");
      return index_for_type(req.entry->type);
    case DiscOp::unregister_impl:
    case DiscOp::query:
      return index_for_type(req.type);
    case DiscOp::set_pool:
      // execute_request carries the pool name in req.type.
      return index_for_pool(req.type);
    case DiscOp::acquire: {
      if (req.resources.empty())
        return err(Errc::invalid_argument, "acquire without resources");
      size_t idx = index_for_pool(req.resources[0].pool);
      for (const auto& r : req.resources)
        if (index_for_pool(r.pool) != idx)
          return err(Errc::invalid_argument,
                     "acquire spans partitions: pools " + req.resources[0].pool +
                         " and " + r.pool + " hash to different partitions");
      return idx;
    }
    case DiscOp::release: {
      size_t idx = index_for_alloc(req.alloc_id);
      if (idx >= partitions_)
        return err(Errc::invalid_argument, "alloc id names unknown partition");
      return idx;
    }
    case DiscOp::heartbeat:
      return err(Errc::invalid_argument, "heartbeat has no single partition");
  }
  return err(Errc::invalid_argument, "unroutable discovery op");
}

}  // namespace bertha
