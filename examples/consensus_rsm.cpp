// consensus_rsm: network-assisted consensus (paper §3.2, Listing 2).
//
// Three replicas of a KV state machine join an ordered-multicast group.
// With BERTHA_RSM_SEQUENCER=switch (default) a simulated programmable
// switch sequences operations in the network — no extra hop; with
// =software a host sequencer process stamps and re-multicasts (the
// fallback). The client code is identical either way: it connects to
// the replica set and the runtime binds whichever sequencer the
// discovery service advertises.
//
// Run: ./consensus_rsm            (switch sequencer)
//      BERTHA_RSM_SEQUENCER=software ./consensus_rsm
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/rsm.hpp"
#include "chunnels/builtin.hpp"
#include "chunnels/ordered_mcast.hpp"
#include "net/factory.hpp"
#include "sim/simswitch.hpp"

using namespace bertha;

int main() {
  const char* seq_env = std::getenv("BERTHA_RSM_SEQUENCER");
  const bool use_switch = !seq_env || std::strcmp(seq_env, "switch") == 0;

  // The replicas live on distinct simulated machines wired by SimNet
  // (inter-node latency 100us), which also hosts the switch.
  SimNet::Config net_cfg;
  net_cfg.default_latency = us(100);
  auto sim = SimNet::create(net_cfg);
  auto discovery = std::make_shared<DiscoveryState>();
  auto make_runtime = [&](const std::string& node) {
    RuntimeConfig cfg;
    cfg.host_id = node;  // host_id doubles as the SimNet node name
    cfg.transports = std::make_shared<DefaultTransportFactory>(nullptr, sim,
                                                               node);
    cfg.discovery = discovery;
    auto rt = Runtime::create(cfg).value();
    (void)register_builtin_chunnels(*rt);
    return rt;
  };

  std::vector<Addr> members = {Addr::sim("replica0", 7000),
                               Addr::sim("replica1", 7000),
                               Addr::sim("replica2", 7000)};

  std::shared_ptr<SimSwitch> sw;
  std::unique_ptr<SoftwareSequencer> soft;
  std::shared_ptr<Runtime> seq_rt;
  if (use_switch) {
    SimSwitch::Config cfg;
    cfg.sequencer_slots = 1;
    sw = SimSwitch::create(sim, discovery, cfg).value();
    if (!sw->install_sequencer_group("rsm-group", 7100, members).ok()) return 1;
    std::printf("sequencer: tofino-style switch (in-network stamping)\n");
  } else {
    seq_rt = make_runtime("seqhost");
    soft = SoftwareSequencer::start(seq_rt->transports(),
                                    Addr::sim("seqhost", 7100), members)
               .value();
    if (!soft->register_with(*discovery, "rsm-group").ok()) return 1;
    std::printf("sequencer: software process at %s (one extra hop)\n",
                soft->addr().to_string().c_str());
  }

  std::vector<std::unique_ptr<RsmReplica>> replicas;
  std::vector<Addr> control_addrs;
  for (int i = 0; i < 3; i++) {
    RsmReplicaConfig cfg;
    cfg.rt = make_runtime("replica" + std::to_string(i));
    cfg.listen_addr = Addr::sim("replica" + std::to_string(i), 8000);
    cfg.member_addr = members[static_cast<size_t>(i)];
    cfg.group = "rsm-group";
    cfg.replier = i == 0;
    auto rep = RsmReplica::start(std::move(cfg)).value();
    control_addrs.push_back(rep->control_addr());
    replicas.push_back(std::move(rep));
  }

  // Listing 2: connect(endpts) — the argument is the replica list.
  auto client_rt = make_runtime("client0");
  auto client =
      RsmClient::connect(client_rt, control_addrs, Deadline::after(seconds(10)))
          .value();

  for (int i = 0; i < 5; i++) {
    KvRequest op;
    op.op = KvOp::put;
    op.id = static_cast<uint64_t>(i + 1);
    op.key = "ballot";
    op.value = "round-" + std::to_string(i);
    auto rsp = client->execute(op, Deadline::after(seconds(10)));
    std::printf("committed %s=%s -> %s\n", op.key.c_str(), op.value.c_str(),
                rsp.ok() && rsp.value().status == KvStatus::ok ? "ok" : "FAIL");
  }

  sleep_for(ms(300));  // let the non-replier replicas finish applying
  std::printf("replica states:");
  for (size_t i = 0; i < replicas.size(); i++)
    std::printf(" r%zu[applied=%llu ballot=%s]", i,
                static_cast<unsigned long long>(replicas[i]->applied()),
                replicas[i]->store().get("ballot").value_or("?").c_str());
  std::printf("\nconsensus_rsm: ok (all replicas agree)\n");

  client->close();
  for (auto& rep : replicas) rep->stop();
  return 0;
}
