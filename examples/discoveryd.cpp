// discoveryd: the Bertha discovery service as an operator tool — the
// analogue of the prototype's burrito-discovery daemon (paper §4.2:
// offload developers, network operators and system administrators
// register implementations; runtimes query during negotiation).
//
// Usage:
//   discoveryd serve <uds-name>
//       run the daemon on uds://<uds-name> until killed
//   discoveryd query <uds-name> <chunnel-type>
//       list implementations registered for a type
//   discoveryd register <uds-name> <type> <impl-name> <priority> [k=v ...]
//       register an implementation (props from k=v pairs)
//   discoveryd set-pool <uds-name> <pool> <capacity>
//       create/update a resource pool
//   discoveryd demo
//       run a self-contained demo: spawn a daemon, register offloads,
//       query them, exercise pool admission
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/discovery.hpp"
#include "core/runtime.hpp"
#include "net/uds.hpp"

using namespace bertha;

namespace {

int die(const Error& e, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, e.to_string().c_str());
  return 1;
}

Result<std::unique_ptr<RemoteDiscovery>> dial(const std::string& daemon) {
  BERTHA_TRY_ASSIGN(t, UdsTransport::bind(Addr::uds("")));
  return std::make_unique<RemoteDiscovery>(std::move(t), Addr::uds(daemon));
}

void print_entries(const std::vector<ImplInfo>& entries) {
  if (entries.empty()) {
    std::printf("  (none)\n");
    return;
  }
  for (const auto& e : entries) {
    std::printf("  %-40s scope=%-11s endpoints=%-6s priority=%d%s\n",
                e.name.c_str(), std::string(scope_name(e.scope)).c_str(),
                std::string(endpoint_constraint_name(e.endpoints)).c_str(),
                e.priority, e.factory_only ? " [factory-only]" : "");
    for (const auto& [k, v] : e.props)
      std::printf("      %s = %s\n", k.c_str(), v.c_str());
    for (const auto& r : e.resources)
      std::printf("      needs %s x%llu\n", r.pool.c_str(),
                  static_cast<unsigned long long>(r.amount));
  }
}

int cmd_serve(const std::string& name) {
  auto t = UdsTransport::bind(Addr::uds(name));
  if (!t.ok()) return die(t.error(), "bind");
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer server(std::move(t).value(), state);
  std::printf("discoveryd serving on %s (ctrl-c to stop)\n",
              server.addr().to_string().c_str());
  // Sleep until killed; the server thread does the work.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("served %llu requests, shutting down\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

int cmd_query(const std::string& daemon, const std::string& type) {
  auto client = dial(daemon);
  if (!client.ok()) return die(client.error(), "dial");
  auto entries = client.value()->query(type);
  if (!entries.ok()) return die(entries.error(), "query");
  std::printf("implementations of '%s':\n", type.c_str());
  print_entries(entries.value());
  return 0;
}

int cmd_register(const std::string& daemon, int argc, char** argv) {
  // argv: type impl-name priority [k=v ...]
  if (argc < 3) {
    std::fprintf(stderr, "register needs: <type> <impl-name> <priority>\n");
    return 2;
  }
  ImplInfo info;
  info.type = argv[0];
  info.name = argv[1];
  info.priority = std::atoi(argv[2]);
  info.endpoints = EndpointConstraint::server;
  info.scope = Scope::rack;
  for (int i = 3; i < argc; i++) {
    std::string kv = argv[i];
    auto eq = kv.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad prop (want k=v): %s\n", argv[i]);
      return 2;
    }
    info.props[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  auto client = dial(daemon);
  if (!client.ok()) return die(client.error(), "dial");
  auto r = client.value()->register_impl(info);
  if (!r.ok()) return die(r.error(), "register");
  std::printf("registered %s\n", info.name.c_str());
  return 0;
}

int cmd_set_pool(const std::string& daemon, const std::string& pool,
                 uint64_t capacity) {
  auto client = dial(daemon);
  if (!client.ok()) return die(client.error(), "dial");
  auto r = client.value()->set_pool(pool, capacity);
  if (!r.ok()) return die(r.error(), "set-pool");
  std::printf("pool %s capacity=%llu\n", pool.c_str(),
              static_cast<unsigned long long>(capacity));
  return 0;
}

int cmd_demo() {
  std::string name = "discoveryd-demo-" + make_unique_id();
  auto t = UdsTransport::bind(Addr::uds(name));
  if (!t.ok()) return die(t.error(), "bind");
  auto state = std::make_shared<DiscoveryState>();
  DiscoveryServer server(std::move(t).value(), state);
  std::printf("daemon up at uds://%s\n", name.c_str());

  auto client = dial(name);
  if (!client.ok()) return die(client.error(), "dial");

  // The operator provisions a switch pool and registers its offload.
  (void)client.value()->set_pool("tor0.sequencer_slots", 1);
  ImplInfo sw;
  sw.type = "ordered_mcast";
  sw.name = "ordered_mcast/switch:tor0";
  sw.priority = 20;
  sw.scope = Scope::rack;
  sw.endpoints = EndpointConstraint::server;
  sw.props["switch"] = "tor0";
  sw.props["instance"] = "payments-consensus";
  (void)client.value()->register_impl(sw);

  std::printf("\nquery ordered_mcast:\n");
  auto entries = client.value()->query("ordered_mcast");
  if (entries.ok()) print_entries(entries.value());

  std::printf("\npool admission on tor0.sequencer_slots (capacity 1):\n");
  auto first = client.value()->acquire({{"tor0.sequencer_slots", 1}});
  std::printf("  first acquire:  %s\n", first.ok() ? "granted" : "refused");
  auto second = client.value()->acquire({{"tor0.sequencer_slots", 1}});
  std::printf("  second acquire: %s (%s)\n",
              second.ok() ? "granted" : "refused",
              second.ok() ? "-" : second.error().to_string().c_str());
  if (first.ok()) (void)client.value()->release(first.value());
  auto third = client.value()->acquire({{"tor0.sequencer_slots", 1}});
  std::printf("  after release:  %s\n", third.ok() ? "granted" : "refused");
  std::printf("\ndaemon handled %llu requests — demo ok\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    std::string cmd = argv[1];
    if (cmd == "demo") return cmd_demo();
    if (cmd == "serve" && argc == 3) return cmd_serve(argv[2]);
    if (cmd == "query" && argc == 4) return cmd_query(argv[2], argv[3]);
    if (cmd == "register" && argc >= 5)
      return cmd_register(argv[2], argc - 3, argv + 3);
    if (cmd == "set-pool" && argc == 5)
      return cmd_set_pool(argv[2], argv[3],
                          std::strtoull(argv[4], nullptr, 10));
  }
  std::fprintf(stderr,
               "usage: discoveryd serve <uds-name>\n"
               "       discoveryd query <uds-name> <type>\n"
               "       discoveryd register <uds-name> <type> <name> <prio> "
               "[k=v ...]\n"
               "       discoveryd set-pool <uds-name> <pool> <capacity>\n"
               "       discoveryd demo\n");
  return 2;
}
