// kv_sharded: the paper's Listing 4/5 scenario end to end.
//
// A key-value server exposes one canonical address; a shard chunnel
// steers each request to one of three backend shards by hashing the
// fixed shard-key field at payload bytes [10,14). The server registers
// the accelerated dispatcher (our XDP stand-in) and the in-app fallback;
// the client registers the client-push fallback. The default policy
// prefers the client-provided implementation, so requests go *directly*
// to the right shard with no steering hop — re-run with
// BERTHA_KV_NO_CLIENT_PUSH=1 to watch the same binary negotiate the
// server-side dispatcher instead, with zero code changes.
//
// Run: ./kv_sharded
#include <cstdio>
#include <cstdlib>

#include "apps/kvserver.hpp"
#include "chunnels/builtin.hpp"
#include "core/endpoint.hpp"
#include "net/factory.hpp"

using namespace bertha;

int main() {
  const bool client_push = std::getenv("BERTHA_KV_NO_CLIENT_PUSH") == nullptr;

  auto discovery = std::make_shared<DiscoveryState>();
  auto make_runtime = [&](bool with_client_push) {
    RuntimeConfig cfg;
    cfg.transports = std::make_shared<DefaultTransportFactory>();
    cfg.discovery = discovery;
    auto rt = Runtime::create(cfg).value();
    (void)register_shard_chunnels(*rt, with_client_push, /*xdp=*/true,
                                  /*fallback=*/true);
    return rt;
  };
  auto server_rt = make_runtime(false);
  auto client_rt = make_runtime(client_push);

  // The backend: three shard workers, each with its own store + thread.
  auto backend = KvBackend::start(server_rt->transports(),
                                  Addr::udp("127.0.0.1", 0), "local", 3)
                     .value();

  // Listing 4: shard(shard::args(choices: shards), fn: shard_fn).
  ChunnelArgs shard_args;
  shard_args.set("shards", format_addr_list(backend->shard_addrs()));
  shard_args.set_u64("field_offset", kKvShardFieldOffset);  // payload[10..14]
  shard_args.set_u64("field_len", kKvShardFieldLen);
  auto listener = server_rt->endpoint("my-kv-srv",
                                      wrap(ChunnelSpec("shard", shard_args)))
                      .value()
                      .listen(Addr::udp("127.0.0.1", 0))
                      .value();
  std::printf("kv server at %s, shards:\n",
              listener->addr().to_string().c_str());
  for (const auto& a : backend->shard_addrs())
    std::printf("  %s\n", a.to_string().c_str());

  // Listing 5's client: no chunnels specified; the server dictates.
  auto conn = client_rt->endpoint("kv-client", ChunnelDag::empty())
                  .value()
                  .connect(listener->addr(), Deadline::after(seconds(10)))
                  .value();
  std::printf("negotiated with %s implementation\n",
              client_push ? "client-push" : "server-side dispatcher");

  auto rpc = [&](KvRequest req) -> KvResponse {
    Msg m;
    m.payload = encode_kv_request(req);
    if (auto r = conn->send(std::move(m)); !r.ok()) {
      std::fprintf(stderr, "send: %s\n", r.error().to_string().c_str());
      std::exit(1);
    }
    auto reply = conn->recv(Deadline::after(seconds(10)));
    if (!reply.ok()) {
      std::fprintf(stderr, "recv: %s\n", reply.error().to_string().c_str());
      std::exit(1);
    }
    return decode_kv_response(reply.value().payload).value();
  };

  // fn get_key(k) / put
  uint64_t id = 1;
  for (int i = 0; i < 9; i++) {
    KvRequest put;
    put.op = KvOp::put;
    put.id = id++;
    put.key = "user" + std::to_string(1000 + i);
    put.value = "value-" + std::to_string(i);
    KvResponse rsp = rpc(put);
    std::printf("PUT %s -> %s\n", put.key.c_str(),
                rsp.status == KvStatus::ok ? "ok" : "error");
  }
  for (int i = 0; i < 9; i++) {
    KvRequest get;
    get.op = KvOp::get;
    get.id = id++;
    get.key = "user" + std::to_string(1000 + i);
    KvResponse rsp = rpc(get);
    std::printf("GET %s -> %s\n", get.key.c_str(), rsp.value.c_str());
  }

  std::printf("per-shard key counts:");
  for (size_t s = 0; s < backend->size(); s++)
    std::printf(" shard%zu=%zu", s, backend->shard(s).store().size());
  std::printf("\nkv_sharded: ok (%llu requests served by the backend)\n",
              static_cast<unsigned long long>(backend->total_served()));
  conn->close();
  backend->stop();
  return 0;
}
