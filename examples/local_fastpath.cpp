// local_fastpath: the paper's Listing 1 — container-to-container
// communication that transparently uses unix-socket IPC when both ends
// share a host, and the UDP network path otherwise.
//
// The program runs the same ping exchange twice: once between two
// "containers" on one host (the connection silently rebases onto a unix
// socket after negotiation) and once across "hosts" (stays on UDP), and
// prints the measured round-trip latencies so the fast path's advantage
// is visible.
//
// Run: ./local_fastpath
#include <cstdio>

#include "apps/ping.hpp"
#include "chunnels/builtin.hpp"
#include "net/factory.hpp"
#include "util/stats.hpp"

using namespace bertha;

namespace {

Summary measure(const std::string& server_host, const std::string& client_host,
                std::shared_ptr<DiscoveryState> discovery) {
  auto make_runtime = [&](const std::string& host) {
    RuntimeConfig cfg;
    cfg.host_id = host;
    cfg.transports = std::make_shared<DefaultTransportFactory>();
    cfg.discovery = discovery;
    auto rt = Runtime::create(cfg).value();
    (void)register_builtin_chunnels(*rt);
    return rt;
  };
  auto server_rt = make_runtime(server_host);
  auto client_rt = make_runtime(client_host);

  // Listing 1: bertha::new("container-app", wrap!(local_or_remote()))
  auto server = PingServer::start(server_rt,
                                  wrap(ChunnelSpec("local_or_remote")),
                                  Addr::udp("127.0.0.1", 0))
                    .value();
  auto ep = client_rt->endpoint("container-client", ChunnelDag::empty())
                .value();
  auto conn =
      ep.connect(server->addr(), Deadline::after(seconds(10))).value();

  SampleSet rtts;
  for (int i = 0; i < 2000; i++) {
    auto rtt = ping_once(*conn, 64, Deadline::after(seconds(10)));
    if (rtt.ok()) rtts.add_duration_us(rtt.value());
  }
  conn->close();
  server->stop();
  return rtts.summarize();
}

}  // namespace

int main() {
  auto discovery = std::make_shared<DiscoveryState>();

  std::printf("same host (connection rebased onto a unix socket):\n");
  Summary local = measure("host-a", "host-a", discovery);
  std::printf("  %s us\n", local.to_string().c_str());

  std::printf("different hosts (stays on the UDP network path):\n");
  Summary remote = measure("host-a", "host-b", discovery);
  std::printf("  %s us\n", remote.to_string().c_str());

  std::printf(
      "local fast path is %.2fx faster at the median — with identical "
      "application code on both runs\n",
      remote.p50 / local.p50);
  return 0;
}
