// quickstart: the smallest complete Bertha program.
//
// A server endpoint declares its connection pipeline as a Chunnel DAG
// (serialize |> reliable); a client connects with an *empty* DAG and
// adopts the server's (the paper's Listing 5 pattern). Negotiation binds
// each chunnel type to an implementation both sides can run; then the
// client sends typed objects over the negotiated stack.
//
// Run: ./quickstart
#include <cstdio>
#include <thread>

#include "chunnels/builtin.hpp"
#include "chunnels/serialize_chunnel.hpp"
#include "core/endpoint.hpp"
#include "net/factory.hpp"

using namespace bertha;

// The application's message type: hook into the Serde framework and the
// serialization chunnel does the rest.
struct Greeting {
  std::string who;
  uint64_t n = 0;
};

namespace bertha {
template <>
struct Serde<Greeting> {
  static void put(Writer& w, const Greeting& g) {
    w.put_string(g.who);
    w.put_varint(g.n);
  }
  static Result<Greeting> get(Reader& r) {
    Greeting g;
    BERTHA_TRY_ASSIGN(who, r.get_string());
    BERTHA_TRY_ASSIGN(n, r.get_varint());
    g.who = std::move(who);
    g.n = n;
    return g;
  }
};
}  // namespace bertha

int main() {
  // One runtime per process in real deployments; two here for clarity.
  auto make_runtime = [] {
    RuntimeConfig cfg;
    cfg.transports = std::make_shared<DefaultTransportFactory>();
    auto rt = Runtime::create(cfg).value();
    // Link the stock fallback implementations (Listing 5 line 2's
    // bertha::register_chunnel, in bulk).
    if (auto r = register_builtin_chunnels(*rt); !r.ok()) {
      std::fprintf(stderr, "register: %s\n", r.error().to_string().c_str());
      std::exit(1);
    }
    return rt;
  };
  auto server_rt = make_runtime();
  auto client_rt = make_runtime();

  // bertha::new("greeter", wrap!(serialize() |> reliable())).listen(...)
  auto server_ep =
      server_rt->endpoint("greeter", wrap(ChunnelSpec("serialize"),
                                          ChunnelSpec("reliable")))
          .value();
  auto listener = server_ep.listen(Addr::udp("127.0.0.1", 0)).value();
  std::printf("server listening at %s\n", listener->addr().to_string().c_str());

  std::thread server([&] {
    auto conn = listener->accept(Deadline::after(seconds(10))).value();
    ObjectConnection<Greeting> typed(conn);
    for (;;) {
      auto msg = typed.recv_from(Deadline::after(seconds(10)));
      if (!msg.ok()) return;
      auto [greeting, from] = std::move(msg).value();
      std::printf("server got: hello from %s (#%llu)\n", greeting.who.c_str(),
                  static_cast<unsigned long long>(greeting.n));
      Greeting reply{"server", greeting.n};
      if (!typed.send(reply).ok()) return;
      if (greeting.n == 2) return;  // last one
    }
  });

  // Client side: empty DAG, the server's pipeline governs.
  auto client_ep = client_rt->endpoint("greeter-client", ChunnelDag::empty())
                       .value();
  auto conn = client_ep.connect(listener->addr(), Deadline::after(seconds(10)))
                  .value();
  ObjectConnection<Greeting> typed(conn);
  for (uint64_t i = 0; i < 3; i++) {
    if (auto r = typed.send(Greeting{"quickstart", i}); !r.ok()) {
      std::fprintf(stderr, "send: %s\n", r.error().to_string().c_str());
      return 1;
    }
    auto echo = typed.recv(Deadline::after(seconds(10)));
    if (!echo.ok()) {
      std::fprintf(stderr, "recv: %s\n", echo.error().to_string().c_str());
      return 1;
    }
    std::printf("client got reply #%llu from %s\n",
                static_cast<unsigned long long>(echo.value().n),
                echo.value().who.c_str());
  }
  typed.close();
  server.join();
  std::printf("quickstart: ok\n");
  return 0;
}
